"""Ablation: the Allocation-Optimization GPC threshold (SIII-E2).

The paper sets the drain threshold heuristically to 4.  This bench sweeps
it over 0..7 on the fragmentation-prone S3/S5 mixes and regenerates the
evidence: 4 minimizes GPU count without churning healthy GPUs.
"""

from repro.core.parvagpu import ParvaGPU
from repro.experiments.registry import ExperimentResult
from repro.metrics import external_fragmentation
from repro.scenarios import scenario_services

THRESHOLDS = (0, 1, 2, 3, 4, 5, 6, 7)


def _sweep(profiles) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation-threshold",
        title="Allocation Optimization drain threshold sweep (GPUs / frag %)",
        columns=("threshold", "S3 gpus", "S3 frag", "S5 gpus", "S5 frag"),
    )
    for threshold in THRESHOLDS:
        row: list[object] = [threshold]
        for scenario in ("S3", "S5"):
            scheduler = ParvaGPU(profiles, threshold=threshold)
            placement = scheduler.schedule(scenario_services(scenario))
            row.append(placement.num_gpus)
            row.append(100.0 * external_fragmentation(placement))
        result.add(*row)
    result.notes.append("paper SIII-E2: threshold heuristically set to 4")
    return result


def test_threshold_ablation(benchmark, archive, profiles):
    result = benchmark.pedantic(lambda: _sweep(profiles), rounds=1, iterations=1)
    archive(result)

    rows = {r[0]: r for r in result.rows}
    # the paper's threshold of 4 is on the Pareto frontier: no other
    # threshold yields strictly fewer GPUs in either scenario
    for t, row in rows.items():
        assert rows[4][1] <= row[1]  # S3 gpus
        assert rows[4][3] <= row[3]  # S5 gpus
    # and disabling the optimization entirely (threshold 0) never fragments
    # less than the paper's setting
    assert rows[4][2] <= rows[0][2] + 1e-9
    assert rows[4][4] <= rows[0][4] + 1e-9
