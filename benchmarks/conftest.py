"""Benchmark fixtures: cached profiles and result archiving.

Every benchmark regenerates one paper artifact (table or figure), times it
with pytest-benchmark, prints the rows the paper reports, and archives the
rendered table under ``benchmarks/out/`` so EXPERIMENTS.md can cite it.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.registry import ExperimentResult

OUT_DIR = pathlib.Path(__file__).parent / "out"

# Artifacts whose rows include wall-clock scheduling delays
# (metrics/delay.py::timed_call).  Those jitter with machine speed and
# load, so re-runs land in a gitignored ``<id>.local.txt`` sidecar
# instead of overwriting the committed golden.
WALL_CLOCK_IDS = frozenset({"fig9", "fig11", "table1x"})


@pytest.fixture(scope="session")
def profiles():
    from repro.profiler import profile_workloads

    return profile_workloads()


@pytest.fixture(scope="session")
def archive():
    """Persist a rendered experiment table and echo it to the log."""
    OUT_DIR.mkdir(exist_ok=True)

    def _archive(result: ExperimentResult) -> ExperimentResult:
        text = result.render()
        suffix = ".local.txt" if result.experiment_id in WALL_CLOCK_IDS else ".txt"
        (OUT_DIR / f"{result.experiment_id}{suffix}").write_text(text + "\n")
        print()
        print(text)
        return result

    return _archive
