"""Benchmark fixtures: cached profiles and result archiving.

Every benchmark regenerates one paper artifact (table or figure), times it
with pytest-benchmark, prints the rows the paper reports, and archives the
rendered table under ``benchmarks/out/`` so EXPERIMENTS.md can cite it.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.registry import ExperimentResult

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def profiles():
    from repro.profiler import profile_workloads

    return profile_workloads()


@pytest.fixture(scope="session")
def archive():
    """Persist a rendered experiment table and echo it to the log."""
    OUT_DIR.mkdir(exist_ok=True)

    def _archive(result: ExperimentResult) -> ExperimentResult:
        text = result.render()
        (OUT_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
        print()
        print(text)
        return result

    return _archive
