"""Figure 9 — scheduling delay (log10 ms) per framework across S1-S6.

Wall-clock assertions are inherently noisy on loaded machines, so every
check here is a *relative ordering with tolerance*: the paper's claims
are about ratios between frameworks timed in the same run.  The
historically flaky assertion was the near-equality single-vs-parvagpu
bound (+0.1 log10 on sub-millisecond medians); it now carries a factor-2
tolerance.  The order-of-magnitude MIG-serving gap keeps its original
0.5 floor, which is noise-proof at that margin.

Even with those tolerances a loaded CI box can swing a sub-millisecond
median, so both bounds go through :func:`wall_clock_assert`: violations
warn (``WallClockWarning``) by default and only fail the run when
``REPRO_STRICT_WALL_CLOCK`` is set (a quiet benchmarking machine).
"""

import math

from repro.experiments import run_experiment
from repro.experiments.wallclock import wall_clock_assert

#: log10 tolerance for same-run framework comparisons: a factor of two,
#: far above timer jitter but far below the orders-of-magnitude gaps the
#: figure asserts.
LOG10_TOL = math.log10(2.0)


def test_fig9(benchmark, archive, profiles):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9", repeats=3), rounds=1, iterations=1
    )
    archive(result)

    cols = result.columns
    mig_i = cols.index("mig-serving")
    parva_i = cols.index("parvagpu")
    single_i = cols.index("parvagpu-single")

    for row in result.rows:
        # MIG-serving's joint search is 1+ orders of magnitude slower
        # (committed goldens: 0.94-1.81 log10).  The 0.5 floor (>3x) has
        # never flaked — it keeps most of the claim's power while
        # leaving ~0.4 log10 of headroom below the smallest real gap.
        wall_clock_assert(
            row[mig_i] - row[parva_i] > 0.5,
            f"{row[0]}: mig-serving delay gap "
            f"{row[mig_i] - row[parva_i]:.3f} log10 <= 0.5",
        )
    # The single-process ablation skips the process-count exploration, so
    # at small scale (S1-S2, where allocation work is equal) it schedules
    # about as fast as full ParvaGPU (paper: ~1.1 ms gap).  Machine load
    # can swing either median, so assert the ratio with the same factor-2
    # tolerance rather than near-equality.
    small = [r for r in result.rows if r[0] in ("S1", "S2")]
    for row in small:
        wall_clock_assert(
            row[single_i] - row[parva_i] <= LOG10_TOL,
            f"{row[0]}: single-vs-parvagpu delay gap "
            f"{row[single_i] - row[parva_i]:.3f} log10 > {LOG10_TOL:.3f}",
        )
