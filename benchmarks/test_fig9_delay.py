"""Figure 9 — scheduling delay (log10 ms) per framework across S1-S6."""

from repro.experiments import run_experiment


def test_fig9(benchmark, archive, profiles):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9", repeats=3), rounds=1, iterations=1
    )
    archive(result)

    cols = result.columns
    mig_i = cols.index("mig-serving")
    parva_i = cols.index("parvagpu")
    single_i = cols.index("parvagpu-single")

    for row in result.rows:
        # MIG-serving's joint search is 1+ orders of magnitude slower.
        assert row[mig_i] - row[parva_i] > 0.5  # log10 scale
    # The single-process ablation skips the process-count exploration, so
    # at small scale (S1-S2, where allocation work is equal) it schedules
    # at least as fast as full ParvaGPU (paper: ~1.1 ms gap).
    small = [r for r in result.rows if r[0] in ("S1", "S2")]
    for row in small:
        assert row[single_i] <= row[parva_i] + 0.1
