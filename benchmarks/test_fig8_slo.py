"""Figure 8 — SLO compliance per framework across S1-S6 (discrete-event sim)."""

from repro.experiments import run_experiment


def test_fig8(benchmark, archive, profiles):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8", duration_s=1.5), rounds=1, iterations=1
    )
    archive(result)

    cols = result.columns
    # every MIG-based framework serves without violations
    for fw in ("mig-serving", "parvagpu-single", "parvagpu"):
        vals = [v for v in result.column(fw) if v is not None]
        assert all(v > 99.0 for v in vals), fw
    # gpulet is the only violator (paper: 3.5% violations in S2)
    gpulet = result.column("gpulet")
    s2 = next(r for r in result.rows if r[0] == "S2")
    assert s2[cols.index("gpulet")] < 99.5
    assert min(v for v in gpulet if v is not None) > 80.0  # degraded, not dead
