"""Ablation: the SIII-E1 slot-preference rules.

Compares the paper's preference-ordered allocation against a naive
first-legal-slot allocator on adversarial segment mixes (3-heavy and
mixed), regenerating the design argument: the slot rules avoid blocking
slice 3 and keep room for size-3 segments, which saves whole GPUs.
"""

from repro.core.allocator import SegmentAllocator, _GPUState
from repro.core.segments import Segment
from repro.experiments.registry import ExperimentResult
from repro.gpu.mig import PlacedInstance, legal_starts


def seg(size: int, i: int) -> Segment:
    return Segment(
        service_id=f"svc{i}",
        model="resnet-50",
        instance_size=size,
        batch_size=8,
        num_processes=1,
        throughput=100.0,
        latency_ms=10.0,
        sm_activity=0.9,
    )


MIXES = {
    "3-heavy": [3, 3, 3, 3, 2, 2, 1, 1, 1, 1],
    "paper-fig2": [7, 4, 3, 3, 2, 2, 2, 1, 1, 1],
    "threes-plus-ones": [3, 3, 1, 1],  # naive 3@0 blocks slice 3
    "one-three-many-ones": [3, 1, 1, 1, 1],
    "ones-tail": [4, 4, 3, 1, 1, 1, 1, 1, 1, 1, 1],
}


def _paper_allocation(sizes: list[int]) -> int:
    gpus: list[_GPUState] = []
    queues = SegmentAllocator._new_queues()
    for i, size in enumerate(sorted(sizes, reverse=True)):
        SegmentAllocator._enqueue(queues, seg(size, i))
    SegmentAllocator._allocation(queues, gpus)
    return sum(1 for g in gpus if not g.is_empty)


def _naive_allocation(sizes: list[int]) -> int:
    """First legal start slot (ascending), first GPU with room."""
    layouts: list = []
    for i, size in enumerate(sorted(sizes, reverse=True)):
        placed = False
        for layout in layouts:
            for start in legal_starts(size):
                if layout.can_add(size, start):
                    layout.add(PlacedInstance(size, start))
                    placed = True
                    break
            if placed:
                break
        if not placed:
            from repro.gpu.mig import MigLayout

            layout = MigLayout()
            layout.add(PlacedInstance(size, legal_starts(size)[0]))
            layouts.append(layout)
    return len(layouts)


def _sweep() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="ablation-slots",
        title="Slot-preference rules vs naive first-legal-slot placement",
        columns=("mix", "paper rules (GPUs)", "naive (GPUs)"),
    )
    for name, sizes in MIXES.items():
        result.add(name, _paper_allocation(sizes), _naive_allocation(sizes))
    result.notes.append(
        "SIII-E1: 3s prefer slot 4, 2s avoid the upper half, 1s fill 0-3 first"
    )
    return result


def test_slot_rules_ablation(benchmark, archive):
    result = benchmark(_sweep)
    archive(result)
    for name, paper, naive in result.rows:
        assert paper <= naive, name
    # at least one adversarial mix shows a strict win
    assert any(paper < naive for _, paper, naive in result.rows)
