"""Figure 5 — total GPU counts per framework across S1-S6."""

from repro.experiments import run_experiment


def test_fig5(benchmark, archive, profiles):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5"), rounds=1, iterations=1
    )
    archive(result)

    cols = result.columns
    parva = result.column("parvagpu")
    gpulet = result.column("gpulet")
    single = result.column("parvagpu-single")
    by_scenario = {r[0]: r for r in result.rows}

    # ParvaGPU wins or ties everywhere.
    for row in result.rows:
        rivals = [v for v in row[1:] if v is not None]
        assert row[cols.index("parvagpu")] == min(rivals)

    # Substantial aggregate savings vs gpulet (paper: 46.5%).
    assert sum(parva) < 0.75 * sum(gpulet)

    # MPS ablation: ties at small scale, wins at S4-S6 (paper: 12.5/7.1/11.1%).
    assert sum(
        s - p for s, p in zip(single[3:], parva[3:])
    ) >= 1

    # iGniter cannot execute the high-rate scenarios.
    assert by_scenario["S5"][cols.index("igniter")] is None
    assert by_scenario["S6"][cols.index("igniter")] is None
