"""Benches for the paper's static artifacts: Table I, Figure 1, Table IV,
and the Figure 3/4 profiling surfaces."""

from repro.experiments import run_experiment


def test_table1(benchmark, archive):
    result = benchmark(lambda: run_experiment("table1"))
    archive(result)
    assert len(result.rows) == 6


def test_fig1(benchmark, archive):
    result = benchmark(lambda: run_experiment("fig1"))
    archive(result)
    assert len(result.rows) == 19


def test_table4(benchmark, archive):
    result = benchmark(lambda: run_experiment("table4"))
    archive(result)
    assert len(result.rows) == 12


def test_fig3(benchmark, archive, profiles):
    result = benchmark(lambda: run_experiment("fig3"))
    archive(result)
    # paper shape: on a size-4 instance at batch 8, 2 processes nearly
    # double throughput over 1 (1695 vs 786 in the paper)
    rows = {(r[0], r[1]): r for r in result.rows}
    b8 = result.columns.index("b8")
    assert rows[(2, 4)][b8] > 1.6 * rows[(1, 4)][b8]


def test_fig4(benchmark, archive, profiles):
    result = benchmark(lambda: run_experiment("fig4"))
    archive(result)
    rows = {(r[0], r[1]): r for r in result.rows}
    b4 = result.columns.index("b4")
    # paper shape: latency rises ~2.45x with 3 procs on the size-1 instance
    assert rows[(3, 1)][b4] > 2.0 * rows[(1, 1)][b4]
