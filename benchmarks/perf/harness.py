#!/usr/bin/env python
"""Fleet-scale perf harness (opt-in — not part of tier-1).

Two suites, selected with ``--suite``:

- ``schedule`` (default): schedules deterministic synthetic fleets (see
  ``repro.scenarios.fleet``) of 100/1000/5000 services on the MIG,
  MI300X, and mixed geometries with the fast-path scheduler (indexed
  allocator + memoized configurator) and, up to ``--naive-cap``
  services, with the naive reference path.  Every fast/naive pair is
  checked for byte-identical placements; wall-clocks, GPU counts, and
  speedups land in ``BENCH_schedule.json``.  The S10 pass drives a
  phase-shifted diurnal fleet through the autoscaler's SIII-F
  incremental path.

- ``simulate``: *serves* high-rate fleets of 100/1000 services on each
  geometry through the batch-granularity simulation fast path and, up
  to ``--naive-cap`` services, through the per-request event-driven
  reference engine — every recorded fast/reference pair must pass the
  stats-fingerprint identity check (exact integer statistics + float
  sums within 1e-9).  The S10 pass measures per-epoch SLO compliance
  through the autoscaler's trace run; the S11 pass replays the
  million-request fleet, which only the fast path can execute in
  reasonable time.  Results land in ``BENCH_simulate.json``.

- ``ops``: drives 100/1000-service fleets through one simulated day of
  fleet operations (MTBF failures + repairs, spot preemption/restore
  waves, tenant churn, SLO renegotiations — see
  ``repro.scenarios.ops.bench_ops_run``) with the closed-loop
  FleetController, measuring per-interval SLO compliance.  Up to
  ``--naive-cap`` services the identical timeline is replayed on the
  naive reference machinery (unindexed allocator, unmemoized
  configurator, event-driven simulator) and every interval's placement
  *and* simulation fingerprints must match.  Results — including the
  full per-interval report — land in ``BENCH_ops.json``.

- ``serve``: the live-serving gateway tier.  Replays an S12 slice and
  the full S16 flash-crowd session through the virtual-clock
  ``ServeGateway`` at workers 0/1/2, asserting per-interval fingerprint
  identity against the offline FleetController (any divergence is
  fatal), then streams S16 live — 100 services through the scripted
  driver on a scaled monotonic clock — recording per-event reaction
  latency (p50/p95/p99) and verifying the recorded session's virtual
  replay.  Results land in ``BENCH_serve.json``.

- ``resilience``: the crash-resilience tier.  For each ops tier the
  run is (a) checkpointed every ``RESILIENCE_CKPT_EVERY`` intervals
  and compared against the uncheckpointed wall-clock (write overhead),
  (b) killed at an interval boundary and resumed from the checkpoint —
  the resumed report must be **bit-identical** to the uninterrupted
  one — and (c) replayed on the sharded control plane while a seeded
  ``FaultPlan`` kills worker processes mid-measurement, asserting the
  recovered parallel replay still matches the serial reference
  interval-for-interval.  Two scenario specials ride along: the full
  S13 degraded week killed/resumed *twice* (chained resume), and an
  S15 chaos-week prefix with worker crashes at 10k services.  Results
  land in ``BENCH_resilience.json``.

- ``obs``: the observability-overhead tier.  Each ops tier is replayed
  twice — once with the observability plane on (the default
  ``ObsHub``: metrics registry, trace spans, flight recorder) and once
  with a disabled hub — best-of-``OBS_REPEATS`` walls each.  The two
  reports must be **bit-identical** (recording is sidecar-only; the
  obs plane may cost wall-clock but can never move a fingerprint) and
  the overhead percentage is the committed evidence that the cost
  stays marginal.  ``--obs-budget`` turns the overhead into a gate
  (non-zero exit past the budget).  Results — including span counts
  and the Prometheus scrape size — land in ``BENCH_obs.json``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/harness.py
    PYTHONPATH=src python benchmarks/perf/harness.py --suite simulate
    PYTHONPATH=src python benchmarks/perf/harness.py --suite ops
    PYTHONPATH=src python benchmarks/perf/harness.py \
        --tiers 100 --baseline benchmarks/perf/baseline.json

With ``--baseline``, fast-path wall-clocks are compared against the
committed reference; the exit code is non-zero when any matched tier
regresses by more than ``--max-regress`` (the CI perf-smoke gate).
File names here deliberately avoid the ``test_`` prefix so pytest never
collects the harness into the tier-1 run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.autoscaler import Autoscaler  # noqa: E402
from repro.core.hetero import make_mixed_scheduler  # noqa: E402
from repro.core.parvagpu import ParvaGPU  # noqa: E402
from repro.gpu.geometry import get_geometry  # noqa: E402
from repro.profiler import profile_workloads  # noqa: E402
from repro.scenarios.fleet import (  # noqa: E402
    FLEET_TIERS,
    S10_EPOCHS,
    S10_FLEET_SIZE,
    S11_DURATION_S,
    S11_FLEET_SIZE,
    S11_RATE_SCALE,
    fleet_services,
    fleet_traces,
)
from repro.sim import simulate_placement  # noqa: E402

# Defaults are gitignored sidecars (the repo's wall-clock convention, cf.
# benchmarks/out/*.local.txt): casual runs must never clobber the
# committed BENCH_*.json reproduction evidence.  Pass e.g. --out
# benchmarks/perf/BENCH_schedule.json to regenerate one deliberately.
DEFAULT_OUTS = {
    "schedule": pathlib.Path(__file__).parent / "BENCH_schedule.local.json",
    "simulate": pathlib.Path(__file__).parent / "BENCH_simulate.local.json",
    "ops": pathlib.Path(__file__).parent / "BENCH_ops.local.json",
    "serve": pathlib.Path(__file__).parent / "BENCH_serve.local.json",
    "resilience": (
        pathlib.Path(__file__).parent / "BENCH_resilience.local.json"
    ),
    "obs": pathlib.Path(__file__).parent / "BENCH_obs.local.json",
}
GEOMETRIES = ("mig", "mi300x", "mixed")

#: The simulate suite's sweep: service tiers (the event-driven reference
#: at 5000 services would take minutes per geometry), rate scale (the
#: high-rate regime S11 formalizes), and the simulated window.
SIM_TIERS = (100, 1000)
SIM_RATE_SCALE = S11_RATE_SCALE
SIM_DURATION_S = 1.0
SIM_WARMUP_S = 0.25

#: The ops suite's sweep: the FleetController is MIG-only here (one
#: geometry per controller), so tiers vary the fleet size only; every
#: interval is served for OPS_MEASURE_S simulated seconds.  The 10_000
#: tier replays the S15 chaos week (``ops_run("S15")``) instead of the
#: synthetic one-day bench and serves each interval for OPS_MEASURE_10K
#: simulated seconds — long enough that serving measurement (the stage
#: the sharded control plane accelerates) dominates the replay, which is
#: exactly the regime the 10k fleet operates in.
OPS_TIERS = (100, 1000, 10_000)
OPS_MEASURE_S = 0.25
OPS_MEASURE_10K = 6.0
OPS_WARMUP_S = 0.1
OPS_WORKERS = 2

#: The serve suite: (scenario, horizon cap) slices for the virtual-clock
#: identity replays, the shard counts the gateway is checked at, and the
#: live S16 session's clock compression / deadline budget.
SERVE_SLICES = (("S12", 3 * 3600.0), ("S16", None))
SERVE_MEASURE_S = 0.25
SERVE_WORKERS = (1, 2)
SERVE_TIME_SCALE = 600.0
SERVE_DEADLINE_S = 0.25

#: The resilience suite: ops tiers run with checkpoint/kill/resume and
#: with seeded worker-crash injection on the sharded control plane.
#: Checkpoints land every RESILIENCE_CKPT_EVERY intervals (the overhead
#: the committed BENCH holds under 5% at the 1000-service tier); the
#: S15 special replays a chaos-week *prefix* (the full week is a
#: 17-minute serial run) at a lighter measurement than the ops suite's
#: 10k tier — crash recovery, not throughput, is what it checks.
RESILIENCE_TIERS = (100, 1000)
RESILIENCE_CKPT_EVERY = 5
#: Base and checkpointed walls are best-of-N: replays are deterministic,
#: so wall-clock spread between repeats is pure scheduler/container
#: noise, and at sub-10 s scales that noise dwarfs the real checkpoint
#: overhead being measured.
RESILIENCE_REPEATS = 3
RESILIENCE_CRASHES = 3
RESILIENCE_S15_HORIZON = 86_400.0
RESILIENCE_S15_MEASURE = 1.0

#: The obs suite: ops tiers replayed with the observability plane on
#: vs off.  Best-of-N for the same reason as the resilience suite —
#: replays are deterministic, so wall-clock spread is pure scheduler
#: noise, and the overhead being measured is small by design.
OBS_TIERS = (100, 1000)
OBS_REPEATS = 3


def _make_scheduler(geometry: str, fast_path: bool):
    """A fresh scheduler for one fleet run (profiles cached per process)."""
    if geometry == "mixed":
        return make_mixed_scheduler(fast_path=fast_path)
    geo = get_geometry(geometry)
    profiles = (
        profile_workloads()
        if geo.name == "mig"
        else profile_workloads(geometry=geo)
    )
    return ParvaGPU(profiles, geometry=geo, fast_path=fast_path)


def _timed_schedule(scheduler, services):
    t0 = time.perf_counter()
    placement = scheduler.schedule(services)
    return placement, time.perf_counter() - t0


def run_fleet_sweep(tiers, geometries, naive_cap):
    """The S9 sweep: schedule each tier on each geometry, fast vs naive."""
    rows = []
    for tier in tiers:
        for geometry in geometries:
            services = fleet_services(tier)
            fast, fast_wall = _timed_schedule(
                _make_scheduler(geometry, fast_path=True), services
            )
            row = {
                "scenario": "S9",
                "tier": tier,
                "geometry": geometry,
                "services": len(services),
                "segments": sum(1 for _ in fast.iter_segments()),
                "gpus": fast.num_gpus,
                "indexed_wall_s": round(fast_wall, 6),
                "naive_wall_s": None,
                "speedup": None,
                "identical": None,
            }
            if tier <= naive_cap:
                naive, naive_wall = _timed_schedule(
                    _make_scheduler(geometry, fast_path=False), services
                )
                row["naive_wall_s"] = round(naive_wall, 6)
                row["speedup"] = round(naive_wall / fast_wall, 2)
                row["identical"] = naive.fingerprint() == fast.fingerprint()
                if not row["identical"]:
                    raise SystemExit(
                        f"FATAL: indexed and naive placements differ for "
                        f"{tier} services on {geometry}"
                    )
            rows.append(row)
            speedup = (
                f"{row['speedup']}x vs naive" if row["speedup"] else "naive skipped"
            )
            print(
                f"  S9 {geometry:>6} n={tier:<5} "
                f"{row['indexed_wall_s']*1e3:8.1f} ms  "
                f"{row['gpus']:>5} GPUs  ({speedup})"
            )
    return rows


def run_autoscaler_trace(num_services, epochs, measure_s=0.0):
    """The S10 pass: a diurnal fleet through the SIII-F incremental path.

    With ``measure_s > 0`` every epoch's deployment is additionally
    served for that long in the simulation fast path and the mean
    measured SLO compliance is recorded.
    """
    services = fleet_services(num_services)
    traces = fleet_traces(services, epochs=epochs)
    scaler = Autoscaler(profile_workloads())
    t0 = time.perf_counter()
    report = scaler.run(services, traces, measure_s=measure_s)
    wall = time.perf_counter() - t0
    row = {
        "scenario": "S10",
        "services": num_services,
        "trace_epochs": epochs,
        "steps": len(report.steps),
        "wall_s": round(wall, 6),
        "peak_gpus": report.peak_gpus,
        "mean_gpus": round(report.mean_gpus, 2),
        "reconfig_ops": report.total_reconfig_ops,
        "measure_s": measure_s,
        "mean_compliance": (
            None
            if report.mean_compliance is None
            else round(report.mean_compliance, 6)
        ),
    }
    compliance = (
        f", compliance {100 * report.mean_compliance:.2f}%"
        if report.mean_compliance is not None
        else ""
    )
    print(
        f"  S10 {num_services} services x {epochs} epochs: "
        f"{wall:.2f} s, {len(report.steps)} steps, "
        f"peak {report.peak_gpus} GPUs{compliance}"
    )
    return row


def _timed_simulate(placement, services, fast_path, seed=0):
    t0 = time.perf_counter()
    report = simulate_placement(
        placement,
        services,
        duration_s=SIM_DURATION_S,
        warmup_s=SIM_WARMUP_S,
        seed=seed,
        fast_path=fast_path,
    )
    return report, time.perf_counter() - t0


def run_simulate_sweep(tiers, geometries, naive_cap):
    """The simulate tiers: serve each high-rate fleet, fast vs reference.

    Every recorded fast/reference pair must pass the stats-fingerprint
    identity check: exact integer statistics (batches, violations,
    requests, completions, worst latencies) plus order-sensitive float
    sums within 1e-9 relative.
    """
    rows = []
    for tier in tiers:
        for geometry in geometries:
            services = fleet_services(tier, rate_scale=SIM_RATE_SCALE)
            placement = _make_scheduler(geometry, fast_path=True).schedule(
                services
            )
            offered = sum(
                seg.served_rate for _, seg in placement.iter_segments()
            )
            fast, fast_wall = _timed_simulate(placement, services, True)
            row = {
                "scenario": "SIM",
                "tier": tier,
                "geometry": geometry,
                "rate_scale": SIM_RATE_SCALE,
                "duration_s": SIM_DURATION_S,
                "offered_rate": round(offered, 1),
                "requests_measured": sum(
                    st.requests for st in fast.services.values()
                ),
                "compliance": round(fast.overall_compliance, 6),
                "fast_wall_s": round(fast_wall, 6),
                "reference_wall_s": None,
                "speedup": None,
                "identical": None,
            }
            if tier <= naive_cap:
                ref, ref_wall = _timed_simulate(placement, services, False)
                row["reference_wall_s"] = round(ref_wall, 6)
                row["speedup"] = round(ref_wall / fast_wall, 2)
                row["identical"] = (
                    fast.fingerprint() == ref.fingerprint()
                    and fast.close_to(ref)
                )
                if not row["identical"]:
                    raise SystemExit(
                        f"FATAL: fast-path and event-driven reports differ "
                        f"for {tier} services on {geometry}"
                    )
            rows.append(row)
            speedup = (
                f"{row['speedup']}x vs reference"
                if row["speedup"]
                else "reference skipped"
            )
            print(
                f"  SIM {geometry:>6} n={tier:<5} "
                f"{row['fast_wall_s']*1e3:8.1f} ms  "
                f"{row['requests_measured']:>9} reqs  ({speedup})"
            )
    return rows


def run_million_request_replay():
    """The S11 pass: the million-request fleet, fast path only."""
    services = fleet_services(S11_FLEET_SIZE, rate_scale=S11_RATE_SCALE)
    placement = ParvaGPU(profile_workloads(), fast_path=True).schedule(
        services
    )
    t0 = time.perf_counter()
    report = simulate_placement(
        placement,
        services,
        duration_s=S11_DURATION_S,
        warmup_s=SIM_WARMUP_S,
        fast_path=True,
    )
    wall = time.perf_counter() - t0
    offered = sum(seg.served_rate for _, seg in placement.iter_segments())
    row = {
        "scenario": "S11",
        "services": S11_FLEET_SIZE,
        "rate_scale": S11_RATE_SCALE,
        "duration_s": S11_DURATION_S,
        "offered_requests": round(offered * S11_DURATION_S),
        "requests_measured": sum(
            st.requests for st in report.services.values()
        ),
        "compliance": round(report.overall_compliance, 6),
        "wall_s": round(wall, 6),
    }
    print(
        f"  S11 {S11_FLEET_SIZE} services: ~{row['offered_requests']} "
        f"requests offered, {row['requests_measured']} measured in "
        f"{wall:.2f} s (compliance {100 * report.overall_compliance:.2f}%)"
    )
    return row


def run_ops_sweep(tiers, naive_cap, measure_s=None, workers=OPS_WORKERS):
    """The ops tiers: a simulated day of fleet operations per fleet size
    (the 10_000 tier replays the S15 chaos week instead).

    Every recorded fast/naive pair must agree on *every* interval's
    placement fingerprint and simulation stats fingerprint — the
    closed-loop analogue of the schedule and simulate identity checks.
    With ``workers > 0`` every tier is additionally replayed through the
    sharded parallel control plane and checked interval-for-interval
    against the serial fast replay; any divergence is fatal.  At tiers
    past ``naive_cap`` (where the naive replay is skipped) this
    parallel-vs-serial identity is the recorded correctness check.
    """
    from repro.ops import FleetController, OpsIdentityError
    from repro.ops.controller import assert_reports_identical
    from repro.scenarios.ops import OPS_SEED, bench_ops_run, ops_run

    def tier_run(tier):
        if tier >= 10_000:
            return ops_run("S15")
        return bench_ops_run(tier)

    def replay(run, fast_path, measure, workers=0):
        ctrl = FleetController(
            fast_path=fast_path, seed=OPS_SEED, workers=workers
        )
        t0 = time.perf_counter()
        report = ctrl.run(
            run.services,
            run.timeline,
            run.horizon_s,
            measure_s=measure,
            warmup_s=OPS_WARMUP_S,
            sim_seed=OPS_SEED,
        )
        return report, time.perf_counter() - t0

    rows = []
    for tier in tiers:
        run = tier_run(tier)
        measure = measure_s
        if measure is None:
            measure = OPS_MEASURE_10K if tier >= 10_000 else OPS_MEASURE_S
        fast, fast_wall = replay(run, fast_path=True, measure=measure)
        attainment = fast.slo_attainment(target=0.99)
        row = {
            "scenario": "OPS",
            "tier": tier,
            "geometry": "mig",
            "run": run.name,
            "measure_s": measure,
            "services": len(run.services),
            "timeline_events": run.num_events,
            "intervals": len(fast.intervals),
            "failures": len(fast.failures),
            "preemptions": sum(
                1 for f in fast.failures if f.kind == "preemption"
            ),
            "restored": fast.restored_count,
            "peak_gpus": fast.peak_gpus,
            "gpu_hours": round(fast.gpu_hours, 1),
            "reconfig_ops": fast.total_reconfig_ops,
            # None when --ops-measure 0 disabled serving measurement
            "mean_compliance": (
                None
                if fast.mean_compliance is None
                else round(fast.mean_compliance, 6)
            ),
            "min_compliance": (
                None
                if fast.min_compliance is None
                else round(fast.min_compliance, 6)
            ),
            "tenants_measured": len(attainment),
            "tenants_99pct": sum(
                1 for v in attainment.values() if v >= 1.0 - 1e-12
            ),
            "fast_wall_s": round(fast_wall, 6),
            "naive_wall_s": None,
            "speedup": None,
            "identical": None,
            "parallel_wall_s": None,
            "parallel_workers": None,
            "parallel_speedup": None,
            "parallel_identical": None,
            "report": fast.to_doc(),
        }
        if workers > 0:
            par, par_wall = replay(
                run, fast_path=True, measure=measure, workers=workers
            )
            row["parallel_wall_s"] = round(par_wall, 6)
            row["parallel_workers"] = workers
            row["parallel_speedup"] = round(fast_wall / par_wall, 2)
            try:
                assert_reports_identical(par, fast)
            except OpsIdentityError as exc:
                raise SystemExit(
                    f"FATAL: sharded (x{workers}) and serial ops replays "
                    f"differ for {tier} services: {exc}"
                )
            row["parallel_identical"] = True
        if tier <= naive_cap:
            naive, naive_wall = replay(run, fast_path=False, measure=measure)
            row["naive_wall_s"] = round(naive_wall, 6)
            row["speedup"] = round(naive_wall / fast_wall, 2)
            try:
                assert_reports_identical(fast, naive)
            except OpsIdentityError as exc:
                raise SystemExit(
                    f"FATAL: fast and naive ops replays differ for "
                    f"{tier} services: {exc}"
                )
            row["identical"] = True
        rows.append(row)
        speedup = (
            f"{row['speedup']}x vs naive" if row["speedup"] else "naive skipped"
        )
        parallel = (
            f"sharded x{workers} {row['parallel_wall_s']:.2f} s, "
            f"{row['parallel_speedup']}x, identical;  "
            if row["parallel_identical"]
            else ""
        )
        compliance = (
            f"compliance {100 * row['mean_compliance']:6.2f}%  "
            if row["mean_compliance"] is not None
            else ""
        )
        print(
            f"  OPS n={tier:<5} {row['fast_wall_s']:8.2f} s  "
            f"{row['intervals']:>3} intervals  {row['failures']:>3} failures "
            f"({row['restored']} restored)  {compliance}({parallel}{speedup})"
        )
    return rows


def run_serve_sweep(workers_list=SERVE_WORKERS):
    """The serve identity tier: virtual-clock gateway vs offline replay.

    For each slice (an S12 prefix and the full S16 flash-crowd session)
    the offline ``FleetController.run`` report is the reference; the
    ``ServeGateway`` then replays the identical timeline under the
    deterministic virtual clock — serial and at every shard count in
    ``workers_list`` — and every interval's placement and simulation
    fingerprints must match.  Any divergence is fatal: the gateway's
    whole claim is that going live costs zero reproducibility.
    """
    from repro.ops import FleetController, OpsIdentityError
    from repro.ops.controller import assert_reports_identical
    from repro.scenarios.ops import OPS_SEED, ops_run
    from repro.serve import replay_gateway

    rows = []
    for scenario, cap in SERVE_SLICES:
        run = ops_run(scenario)
        horizon = run.horizon_s if cap is None else min(cap, run.horizon_s)
        events = sum(1 for e in run.timeline if e.time_s < horizon)
        ctrl = FleetController(seed=OPS_SEED)
        t0 = time.perf_counter()
        offline = ctrl.run(
            run.services,
            run.timeline,
            horizon,
            measure_s=SERVE_MEASURE_S,
            warmup_s=OPS_WARMUP_S,
            sim_seed=OPS_SEED,
        )
        offline_wall = time.perf_counter() - t0
        row = {
            "scenario": "SERVE",
            "tier": run.name,
            "geometry": "mig",
            "services": len(run.services),
            "horizon_s": horizon,
            "measure_s": SERVE_MEASURE_S,
            "timeline_events": events,
            "intervals": len(offline.intervals),
            "mean_compliance": (
                None
                if offline.mean_compliance is None
                else round(offline.mean_compliance, 6)
            ),
            "offline_wall_s": round(offline_wall, 6),
            "replays": [],
        }
        for w in (0, *workers_list):
            t0 = time.perf_counter()
            report = replay_gateway(
                run.services,
                run.timeline,
                horizon,
                measure_s=SERVE_MEASURE_S,
                warmup_s=OPS_WARMUP_S,
                sim_seed=OPS_SEED,
                deadline_budget_s=SERVE_DEADLINE_S,
                seed=OPS_SEED,
                workers=w,
            )
            wall = time.perf_counter() - t0
            try:
                assert_reports_identical(report, offline)
            except OpsIdentityError as exc:
                raise SystemExit(
                    f"FATAL: virtual-clock gateway replay (workers={w}) "
                    f"diverges from the offline controller on {run.name}: "
                    f"{exc}"
                )
            row["replays"].append(
                {"workers": w, "wall_s": round(wall, 6), "identical": True}
            )
        # the serial gateway replay is the baseline-checked wall-clock
        row["gateway_wall_s"] = row["replays"][0]["wall_s"]
        rows.append(row)
        walls = "  ".join(
            f"x{r['workers']} {r['wall_s']:.2f}s" for r in row["replays"]
        )
        compliance = (
            f"compliance {100 * row['mean_compliance']:6.2f}%  "
            if row["mean_compliance"] is not None
            else ""
        )
        print(
            f"  SERVE {run.name:<4} {row['intervals']:>3} intervals "
            f"{events:>4} events  {compliance}offline "
            f"{offline_wall:6.2f}s  gateway {walls}  (all identical)"
        )
    return rows


def run_serve_live(time_scale=SERVE_TIME_SCALE):
    """The live pass: stream S16 through a real-clock gateway session.

    100 services, two simulated hours compressed by ``time_scale``,
    steered by the scripted driver.  Records the gateway's health
    counters and per-event reaction latency percentiles, then replays
    the *recorded* session under the virtual clock against the offline
    controller — live sessions must leave reproducible evidence behind.
    """
    import asyncio

    from repro.ops import FleetController, OpsIdentityError
    from repro.scenarios.ops import OPS_SEED, ops_run
    from repro.serve import (
        MonotonicClock,
        ScriptedDriver,
        ServeGateway,
        replay_identity_checked,
    )

    run = ops_run("S16")
    clock = MonotonicClock(time_scale=time_scale)
    gateway = ServeGateway(
        FleetController(seed=OPS_SEED),
        run.services,
        run.horizon_s,
        clock,
        measure_s=SERVE_MEASURE_S,
        warmup_s=OPS_WARMUP_S,
        sim_seed=OPS_SEED,
        deadline_budget_s=SERVE_DEADLINE_S,
    )
    driver = ScriptedDriver(run.timeline)
    t0 = time.perf_counter()
    report = asyncio.run(gateway.run(driver.source(clock)))
    wall = time.perf_counter() - t0
    health = gateway.health
    pct = health.reaction_percentiles()
    try:
        replay_identity_checked(
            run.services,
            tuple(driver.sent),
            run.horizon_s,
            measure_s=SERVE_MEASURE_S,
            warmup_s=OPS_WARMUP_S,
            sim_seed=OPS_SEED,
            seed=OPS_SEED,
        )
    except OpsIdentityError as exc:
        raise SystemExit(
            f"FATAL: the recorded live S16 session does not replay "
            f"identically offline: {exc}"
        )
    doc = {
        "scenario": "S16",
        "services": len(run.services),
        "time_scale": time_scale,
        "horizon_s": run.horizon_s,
        "events_streamed": len(driver.sent),
        "wall_s": round(wall, 6),
        "mean_compliance": (
            None
            if report.mean_compliance is None
            else round(report.mean_compliance, 6)
        ),
        "reaction_p50_ms": round(pct["p50_ms"], 3) if pct else None,
        "reaction_p95_ms": round(pct["p95_ms"], 3) if pct else None,
        "reaction_p99_ms": round(pct["p99_ms"], 3) if pct else None,
        "recorded_replay_identical": True,
        "health": health.to_doc(),
    }
    compliance = (
        f"compliance {100 * doc['mean_compliance']:6.2f}%  "
        if doc["mean_compliance"] is not None
        else ""
    )
    print(
        f"  LIVE  S16  {doc['events_streamed']} events in {wall:6.2f}s "
        f"(x{time_scale:g} time)  {health.steps} steps  {compliance}"
        f"reaction p50 {doc['reaction_p50_ms']} ms  "
        f"p99 {doc['reaction_p99_ms']} ms  (recording replays identically)"
    )
    return doc


def _resilience_replay(run, *, measure, workers=0, fault_injector=None,
                       horizon=None, **run_kwargs):
    """One timed FleetController replay for the resilience suite."""
    from repro.ops import FleetController
    from repro.scenarios.ops import OPS_SEED

    ctrl = FleetController(
        fast_path=True, seed=OPS_SEED, workers=workers,
        fault_injector=fault_injector,
    )
    t0 = time.perf_counter()
    report = ctrl.run(
        run.services,
        run.timeline,
        run.horizon_s if horizon is None else horizon,
        measure_s=measure,
        warmup_s=OPS_WARMUP_S,
        sim_seed=OPS_SEED,
        **run_kwargs,
    )
    return ctrl, report, time.perf_counter() - t0


def _crash_plan(workers, crashes=RESILIENCE_CRASHES):
    """A seeded worker-crash plan whose sites can actually fire.

    ``max_index`` is pinned to the shard count so every sampled site
    names a job position a ``workers``-wide batch really dispatches.
    """
    from repro.resilience import FaultPlan
    from repro.scenarios.ops import OPS_SEED

    return FaultPlan(
        seed=OPS_SEED, worker_crashes=crashes,
        max_batch=6, max_index=max(1, workers),
    ).injector()


def _kill_resume(run, base, *, measure, kill_at, ckpt_path, resume_from=None,
                 horizon=None):
    """Kill a (possibly already-resumed) run at an interval boundary,
    resume it from the flushed checkpoint, and demand bit-identity.

    Returns ``(resumed_report, kill_wall_s, resume_wall_s)``; the caller
    chains by passing ``resume_from=ckpt_path`` with a later
    ``kill_at`` (or ``None`` to run to completion).
    """
    _, _, kill_wall = _resilience_replay(
        run, measure=measure, horizon=horizon,
        checkpoint_every=1, checkpoint_path=ckpt_path,
        resume=resume_from, max_steps=kill_at,
    )
    _, resumed, resume_wall = _resilience_replay(
        run, measure=measure, horizon=horizon, resume=ckpt_path,
    )
    if resumed.to_doc() != base.to_doc():
        raise SystemExit(
            f"FATAL: resume after kill@{kill_at} diverged from the "
            f"uninterrupted {run.name} replay"
        )
    return resumed, kill_wall, resume_wall


def run_resilience_sweep(tiers, workers=OPS_WORKERS):
    """Per-tier checkpoint overhead, kill/resume identity, and seeded
    worker-crash recovery on the sharded control plane."""
    import os
    import tempfile

    from repro.ops import OpsIdentityError
    from repro.ops.controller import assert_reports_identical
    from repro.scenarios.ops import bench_ops_run

    rows = []
    for tier in tiers:
        run = bench_ops_run(tier)
        measure = OPS_MEASURE_S
        _, base, base_wall = _resilience_replay(run, measure=measure)
        for _ in range(RESILIENCE_REPEATS - 1):
            _, _, wall = _resilience_replay(run, measure=measure)
            base_wall = min(base_wall, wall)
        with tempfile.TemporaryDirectory() as td:
            ck = os.path.join(td, "checkpoint.json")
            # (a) checkpoint write overhead on the full run
            _, ckpted, ckpt_wall = _resilience_replay(
                run, measure=measure,
                checkpoint_every=RESILIENCE_CKPT_EVERY, checkpoint_path=ck,
            )
            assert_reports_identical(ckpted, base)
            for _ in range(RESILIENCE_REPEATS - 1):
                _, _, wall = _resilience_replay(
                    run, measure=measure,
                    checkpoint_every=RESILIENCE_CKPT_EVERY,
                    checkpoint_path=ck,
                )
                ckpt_wall = min(ckpt_wall, wall)
            ckpt_bytes = os.path.getsize(ck)
            # (b) kill at the middle interval boundary, resume, compare
            kill_at = max(1, len(base.intervals) // 2)
            _, kill_wall, resume_wall = _kill_resume(
                run, base, measure=measure, kill_at=kill_at, ckpt_path=ck,
            )
        # (c) worker crashes mid-measurement on the sharded replay
        wctrl, crashed, crash_wall = _resilience_replay(
            run, measure=measure, workers=workers,
            fault_injector=_crash_plan(workers),
        )
        try:
            assert_reports_identical(crashed, base)
        except OpsIdentityError as exc:
            raise SystemExit(
                f"FATAL: crash-recovered sharded replay diverged at "
                f"{tier} services: {exc}"
            )
        health = wctrl.shard_health()
        if health is None or health.worker_crashes == 0:
            raise SystemExit(
                f"FATAL: the fault plan injected no worker crash at "
                f"{tier} services — the recovery path went unexercised"
            )
        _, parallel_clean, clean_wall = _resilience_replay(
            run, measure=measure, workers=workers,
        )
        assert_reports_identical(parallel_clean, base)
        overhead = (ckpt_wall - base_wall) / base_wall
        row = {
            "scenario": "RESILIENCE",
            "tier": tier,
            "geometry": "mig",
            "run": run.name,
            "measure_s": measure,
            "intervals": len(base.intervals),
            "checkpoint_every": RESILIENCE_CKPT_EVERY,
            "checkpoint_bytes": ckpt_bytes,
            "timing_repeats": RESILIENCE_REPEATS,
            "base_wall_s": round(base_wall, 6),
            "checkpointed_wall_s": round(ckpt_wall, 6),
            "checkpoint_overhead_pct": round(100 * overhead, 2),
            "kill_at_step": kill_at,
            "killed_wall_s": round(kill_wall, 6),
            "resume_wall_s": round(resume_wall, 6),
            "resume_identical": True,
            "crash_workers": workers,
            "crashed_wall_s": round(crash_wall, 6),
            "parallel_clean_wall_s": round(clean_wall, 6),
            "degraded_slowdown": round(crash_wall / clean_wall, 2),
            "parallel_identical": True,
            "shard_health": health.to_doc(),
        }
        rows.append(row)
        print(
            f"  RES n={tier:<5} base {base_wall:7.2f} s  ckpt overhead "
            f"{row['checkpoint_overhead_pct']:+5.2f}%  kill@{kill_at} "
            f"resume {resume_wall:6.2f} s identical;  "
            f"{health.worker_crashes} worker crashes "
            f"({health.pool_rebuilds} rebuilds, "
            f"{health.degradations} degradations) recovered identical "
            f"x{row['degraded_slowdown']:.2f}"
        )
    return rows


def run_resilience_s13():
    """The S13 degraded week, killed and resumed *twice* (chained)."""
    import os
    import tempfile

    from repro.scenarios.ops import ops_run

    run = ops_run("S13")
    measure = OPS_MEASURE_S
    _, base, base_wall = _resilience_replay(run, measure=measure)
    n = len(base.intervals)
    first, second = max(1, n // 3), max(2, (2 * n) // 3)
    with tempfile.TemporaryDirectory() as td:
        ck = os.path.join(td, "checkpoint.json")
        walls = []
        _, k1, r1 = _kill_resume(
            run, base, measure=measure, kill_at=first, ckpt_path=ck,
        )
        walls.append((first, k1, r1))
        # chain: resume from the first checkpoint, die again, resume again
        _, _, kill2_wall = _resilience_replay(
            run, measure=measure, checkpoint_every=1, checkpoint_path=ck,
            resume=ck, max_steps=second,
        )
        _, resumed2, r2 = _resilience_replay(
            run, measure=measure, resume=ck,
        )
        if resumed2.to_doc() != base.to_doc():
            raise SystemExit(
                "FATAL: S13 chained kill/resume diverged from the "
                "uninterrupted replay"
            )
        walls.append((second, kill2_wall, r2))
    print(
        f"  RES S13   base {base_wall:7.2f} s  kills at steps "
        f"{first} and {second} of {n}, chained resume identical"
    )
    return {
        "run": run.name,
        "measure_s": measure,
        "intervals": n,
        "base_wall_s": round(base_wall, 6),
        "kills": [
            {
                "kill_at_step": at,
                "killed_wall_s": round(kw, 6),
                "resume_wall_s": round(rw, 6),
            }
            for at, kw, rw in walls
        ],
        "chained_resume_identical": True,
    }


def run_resilience_s15(horizon_s=RESILIENCE_S15_HORIZON, workers=OPS_WORKERS):
    """Worker crashes mid-chaos-week at 10k services (truncated prefix)."""
    from repro.ops import OpsIdentityError
    from repro.ops.controller import assert_reports_identical
    from repro.scenarios.ops import ops_run

    run = ops_run("S15")
    horizon = min(horizon_s, run.horizon_s)
    measure = RESILIENCE_S15_MEASURE
    _, base, base_wall = _resilience_replay(
        run, measure=measure, horizon=horizon,
    )
    wctrl, crashed, crash_wall = _resilience_replay(
        run, measure=measure, horizon=horizon, workers=workers,
        fault_injector=_crash_plan(workers),
    )
    try:
        assert_reports_identical(crashed, base)
    except OpsIdentityError as exc:
        raise SystemExit(
            f"FATAL: S15 crash-recovered sharded replay diverged: {exc}"
        )
    health = wctrl.shard_health()
    if health is None or health.worker_crashes == 0:
        raise SystemExit(
            "FATAL: the S15 fault plan injected no worker crash — the "
            "recovery path went unexercised"
        )
    print(
        f"  RES S15   prefix {horizon / 3600:g} h of "
        f"{run.horizon_s / 3600:g} h, {len(base.intervals)} intervals: "
        f"{health.worker_crashes} worker crashes recovered, "
        f"parallel identical (serial {base_wall:.2f} s, crashed "
        f"x{workers} {crash_wall:.2f} s)"
    )
    return {
        "run": run.name,
        "horizon_s": horizon,
        "measure_s": measure,
        "intervals": len(base.intervals),
        "services": len(run.services),
        "crash_workers": workers,
        "serial_wall_s": round(base_wall, 6),
        "crashed_wall_s": round(crash_wall, 6),
        "parallel_identical": True,
        "shard_health": health.to_doc(),
    }


def run_obs_sweep(tiers, repeats=OBS_REPEATS):
    """Observability overhead: identical ops replays, obs on vs off.

    Each tier's one-day bench run is replayed with the default
    ``ObsHub`` (metrics + spans + flight recorder all recording) and
    with a disabled hub, best-of-``repeats`` walls each.  The two
    reports must be bit-identical — recording is sidecar-only, so the
    obs plane may cost wall-clock but can never move a fingerprint; any
    divergence is fatal.  The recorded overhead percentage is the
    committed evidence that full observability stays marginal.
    """
    from repro.obs import ObsHub, render_prometheus
    from repro.ops import FleetController, OpsIdentityError
    from repro.ops.controller import assert_reports_identical
    from repro.scenarios.ops import OPS_SEED, bench_ops_run

    def replay(run, enabled):
        hub = ObsHub(enabled=enabled)
        ctrl = FleetController(fast_path=True, seed=OPS_SEED, obs=hub)
        t0 = time.perf_counter()
        report = ctrl.run(
            run.services,
            run.timeline,
            run.horizon_s,
            measure_s=OPS_MEASURE_S,
            warmup_s=OPS_WARMUP_S,
            sim_seed=OPS_SEED,
        )
        return ctrl, report, time.perf_counter() - t0

    rows = []
    for tier in tiers:
        run = bench_ops_run(tier)
        ctrl_on, on_report, on_wall = replay(run, enabled=True)
        for _ in range(repeats - 1):
            _, _, wall = replay(run, enabled=True)
            on_wall = min(on_wall, wall)
        _, off_report, off_wall = replay(run, enabled=False)
        for _ in range(repeats - 1):
            _, _, wall = replay(run, enabled=False)
            off_wall = min(off_wall, wall)
        try:
            assert_reports_identical(on_report, off_report)
        except OpsIdentityError as exc:
            raise SystemExit(
                f"FATAL: the observability plane changed the {tier}-service "
                f"replay — recording leaked into fingerprinted state: {exc}"
            )
        overhead = (on_wall - off_wall) / off_wall
        scrape = render_prometheus(ctrl_on.obs.registry)
        row = {
            "scenario": "OBS",
            "tier": tier,
            "geometry": "mig",
            "run": run.name,
            "measure_s": OPS_MEASURE_S,
            "intervals": len(on_report.intervals),
            "timing_repeats": repeats,
            "enabled_wall_s": round(on_wall, 6),
            "disabled_wall_s": round(off_wall, 6),
            "overhead_pct": round(100 * overhead, 2),
            "identical": True,
            "spans": len(ctrl_on.obs.tracer.spans),
            "metric_families": sum(
                1 for _ in ctrl_on.obs.registry.collect()
            ),
            "scrape_bytes": len(scrape.encode("utf-8")),
        }
        rows.append(row)
        print(
            f"  OBS n={tier:<5} on {on_wall:7.2f} s  off {off_wall:7.2f} s  "
            f"overhead {row['overhead_pct']:+5.2f}%  "
            f"{row['spans']} spans  {row['metric_families']} families  "
            f"scrape {row['scrape_bytes']} B  (reports identical)"
        )
    return rows


def check_baseline(rows, baseline_path, max_regress, section, field):
    """Compare fast-path wall-clocks to the committed baseline (>Nx fails).

    ``section``/``field`` select the baseline list and the wall-clock
    key: ``("fleets", "indexed_wall_s")`` for the schedule suite,
    ``("simulate", "fast_wall_s")`` for the simulate suite.
    """
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    reference = {
        (r["tier"], r["geometry"]): r[field]
        for r in baseline.get(section, [])
    }
    regressions = []
    for row in rows:
        ref = reference.get((row["tier"], row["geometry"]))
        if ref is None:
            continue
        ratio = row[field] / ref
        marker = "REGRESSION" if ratio > max_regress else "ok"
        print(
            f"  baseline {row['geometry']:>6} n={row['tier']:<5} "
            f"{ratio:5.2f}x of reference ({marker})"
        )
        if ratio > max_regress:
            regressions.append((row["tier"], row["geometry"], ratio))
    return regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=("schedule", "simulate", "ops", "serve", "resilience", "obs"),
        default="schedule",
        help="schedule: time the scheduler's fleet sweep (S9/S10); "
        "simulate: serve high-rate fleets through the simulation fast "
        "path (SIM tiers, S10 measured, S11); ops: drive fleets through "
        "a simulated day of failures/preemptions/churn with the "
        "closed-loop FleetController; serve: virtual-clock gateway "
        "identity replays plus a live S16 session with reaction-latency "
        "percentiles; resilience: checkpoint/kill/resume bit-identity, "
        "checkpoint overhead, and seeded worker-crash recovery; obs: "
        "observability-plane overhead, obs-on vs obs-off replays with "
        "bit-identity (default: %(default)s)",
    )
    parser.add_argument(
        "--tiers",
        default=None,
        help="comma-separated fleet sizes (default: "
        f"{','.join(str(t) for t in FLEET_TIERS)} for schedule, "
        f"{','.join(str(t) for t in SIM_TIERS)} for simulate, "
        f"{','.join(str(t) for t in OPS_TIERS)} for ops)",
    )
    parser.add_argument(
        "--geometries",
        default=None,
        help="comma-separated geometries (default: "
        f"{','.join(GEOMETRIES)}; the ops suite is MIG-only and rejects "
        "this flag)",
    )
    parser.add_argument(
        "--naive-cap",
        type=int,
        default=1000,
        help="largest tier also run on the naive/event-driven reference "
        "path (default: %(default)s)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="result JSON path (default: a gitignored "
        "BENCH_<suite>.local.json sidecar)",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="committed baseline JSON to regress against",
    )
    parser.add_argument(
        "--max-regress", type=float, default=2.0,
        help="fail when a fast-path wall-clock exceeds baseline by this "
        "factor",
    )
    parser.add_argument(
        "--skip-autoscaler", action="store_true",
        help="skip the S10 autoscaler trace pass",
    )
    parser.add_argument(
        "--skip-s11", action="store_true",
        help="skip the S11 million-request replay (simulate suite)",
    )
    parser.add_argument(
        "--autoscaler-services", type=int, default=S10_FLEET_SIZE,
    )
    parser.add_argument(
        "--autoscaler-epochs", type=int, default=S10_EPOCHS,
    )
    parser.add_argument(
        "--autoscaler-measure", type=float, default=0.5,
        help="seconds of serving simulated per autoscaler epoch in the "
        "simulate suite (default: %(default)s)",
    )
    parser.add_argument(
        "--ops-measure", type=float, default=None,
        help="seconds of serving simulated per ops interval (default: "
        f"{OPS_MEASURE_S} per tier, {OPS_MEASURE_10K} at the 10k tier)",
    )
    parser.add_argument(
        "--workers", type=int, default=OPS_WORKERS,
        help="shard count for the parallel ops replay recorded next to "
        "the serial one (0 disables it; default: %(default)s)",
    )
    parser.add_argument(
        "--skip-live", action="store_true",
        help="serve suite: skip the wall-clock live S16 session and "
        "record only the virtual-clock identity replays",
    )
    parser.add_argument(
        "--serve-time-scale", type=float, default=SERVE_TIME_SCALE,
        help="serve suite: scenario seconds per wall second for the live "
        "S16 session (default: %(default)s)",
    )
    parser.add_argument(
        "--skip-s13", action="store_true",
        help="resilience suite: skip the S13 chained kill/resume special "
        "(the CI smoke runs the tier rows only)",
    )
    parser.add_argument(
        "--obs-budget", type=float, default=None,
        help="obs suite: fail when any tier's observability overhead "
        "exceeds this percentage (default: record only)",
    )
    parser.add_argument(
        "--s15-horizon", type=float, default=RESILIENCE_S15_HORIZON,
        help="resilience suite: chaos-week prefix replayed for the 10k "
        "worker-crash special, in scenario seconds (0 skips it; "
        "default: %(default)s)",
    )
    args = parser.parse_args(argv)

    default_tiers = {
        "schedule": FLEET_TIERS,
        "simulate": SIM_TIERS,
        "ops": OPS_TIERS,
        "serve": (),
        "resilience": RESILIENCE_TIERS,
        "obs": OBS_TIERS,
    }[args.suite]
    tiers = (
        [int(t) for t in args.tiers.split(",") if t]
        if args.tiers
        else list(default_tiers)
    )
    if (
        args.suite in ("ops", "serve", "resilience", "obs")
        and args.geometries is not None
    ):
        # The FleetController runs one geometry per fleet and the ops
        # tiers are MIG-only; silently ignoring the flag would let a
        # user believe they benchmarked MI300X ops behavior.
        parser.error(f"--geometries is not supported by the {args.suite} "
                     "suite (MIG-only)")
    geometries = [
        g.strip()
        for g in (args.geometries or ",".join(GEOMETRIES)).split(",")
        if g.strip()
    ]
    out = args.out if args.out is not None else DEFAULT_OUTS[args.suite]

    doc = {
        "version": 2,
        "suite": args.suite,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    }
    if args.suite == "schedule":
        print(f"fleet sweep: tiers={tiers} geometries={geometries}")
        rows = run_fleet_sweep(tiers, geometries, args.naive_cap)
        doc["fleets"] = rows
        doc["autoscaler"] = (
            None
            if args.skip_autoscaler
            else run_autoscaler_trace(
                args.autoscaler_services, args.autoscaler_epochs
            )
        )
        section, field = "fleets", "indexed_wall_s"
    elif args.suite == "ops":
        measure = (
            f"{args.ops_measure}s"
            if args.ops_measure is not None
            else f"{OPS_MEASURE_S}s ({OPS_MEASURE_10K}s at 10k)"
        )
        print(
            f"ops sweep: tiers={tiers} measure={measure} "
            f"workers={args.workers} (a simulated day of failures + "
            f"preemptions + churn each; the 10k tier replays the S15 "
            f"chaos week)"
        )
        rows = run_ops_sweep(
            tiers,
            args.naive_cap,
            measure_s=args.ops_measure,
            workers=args.workers,
        )
        doc["ops"] = rows
        section, field = "ops", "fast_wall_s"
    elif args.suite == "serve":
        slices = ", ".join(
            name if cap is None else f"{name}[:{cap / 3600:g}h]"
            for name, cap in SERVE_SLICES
        )
        print(
            f"serve sweep: slices=({slices}) workers={SERVE_WORKERS} "
            f"deadline={SERVE_DEADLINE_S}s (virtual-clock identity vs the "
            f"offline FleetController, then a live S16 session)"
        )
        rows = run_serve_sweep()
        doc["serve"] = rows
        doc["live"] = (
            None
            if args.skip_live
            else run_serve_live(time_scale=args.serve_time_scale)
        )
        section, field = "serve", "gateway_wall_s"
    elif args.suite == "resilience":
        print(
            f"resilience sweep: tiers={tiers} workers={args.workers} "
            f"ckpt_every={RESILIENCE_CKPT_EVERY} (checkpoint overhead + "
            f"kill/resume bit-identity + seeded worker-crash recovery)"
        )
        rows = run_resilience_sweep(tiers, workers=args.workers)
        doc["resilience"] = rows
        doc["s13_kill_resume"] = None if args.skip_s13 else run_resilience_s13()
        doc["s15_worker_crash"] = (
            None
            if args.s15_horizon <= 0
            else run_resilience_s15(
                horizon_s=args.s15_horizon, workers=args.workers
            )
        )
        section, field = "resilience", "base_wall_s"
    elif args.suite == "obs":
        print(
            f"obs sweep: tiers={tiers} repeats={OBS_REPEATS} "
            f"(identical ops replays with the observability plane "
            f"enabled vs disabled; sidecar-only recording must not move "
            f"a fingerprint)"
        )
        rows = run_obs_sweep(tiers)
        doc["obs"] = rows
        section, field = "obs", "enabled_wall_s"
    else:
        print(
            f"simulate sweep: tiers={tiers} geometries={geometries} "
            f"rate_scale={SIM_RATE_SCALE} duration={SIM_DURATION_S}s"
        )
        rows = run_simulate_sweep(tiers, geometries, args.naive_cap)
        doc["simulate"] = rows
        doc["autoscaler"] = (
            None
            if args.skip_autoscaler
            else run_autoscaler_trace(
                args.autoscaler_services,
                args.autoscaler_epochs,
                measure_s=args.autoscaler_measure,
            )
        )
        doc["s11"] = None if args.skip_s11 else run_million_request_replay()
        section, field = "simulate", "fast_wall_s"

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")

    if args.suite == "obs" and args.obs_budget is not None:
        over = [r for r in rows if r["overhead_pct"] > args.obs_budget]
        if over:
            tiers_over = ", ".join(
                f"n={r['tier']} {r['overhead_pct']:+.2f}%" for r in over
            )
            print(
                f"FAIL: observability overhead exceeds the "
                f"{args.obs_budget}% budget ({tiers_over})"
            )
            return 1

    if args.baseline is not None:
        regressions = check_baseline(
            rows, args.baseline, args.max_regress, section, field
        )
        if regressions:
            print(f"FAIL: {len(regressions)} tier(s) regressed "
                  f">{args.max_regress}x against {args.baseline}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
