#!/usr/bin/env python
"""Fleet-scale scheduling perf harness (opt-in — not part of tier-1).

Schedules deterministic synthetic fleets (see ``repro.scenarios.fleet``)
of 100/1000/5000 services on the MIG, MI300X, and mixed geometries with
the fast-path scheduler (indexed allocator + memoized configurator) and,
up to ``--naive-cap`` services, with the naive reference path.  Every
fast/naive pair is checked for byte-identical placements; wall-clocks,
GPU counts, and speedups land in ``BENCH_schedule.json``.  The S10 pass
drives a phase-shifted diurnal fleet through the autoscaler's SIII-F
incremental path.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/harness.py
    PYTHONPATH=src python benchmarks/perf/harness.py \
        --tiers 100 --baseline benchmarks/perf/baseline.json

With ``--baseline``, indexed wall-clocks are compared against the
committed reference; the exit code is non-zero when any matched tier
regresses by more than ``--max-regress`` (the CI perf-smoke gate).
File names here deliberately avoid the ``test_`` prefix so pytest never
collects the harness into the tier-1 run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.autoscaler import Autoscaler  # noqa: E402
from repro.core.hetero import make_mixed_scheduler  # noqa: E402
from repro.core.parvagpu import ParvaGPU  # noqa: E402
from repro.gpu.geometry import get_geometry  # noqa: E402
from repro.profiler import profile_workloads  # noqa: E402
from repro.scenarios.fleet import (  # noqa: E402
    FLEET_TIERS,
    S10_EPOCHS,
    S10_FLEET_SIZE,
    fleet_services,
    fleet_traces,
)

# Default to a gitignored sidecar (the repo's wall-clock convention, cf.
# benchmarks/out/*.local.txt): casual runs must never clobber the
# committed BENCH_schedule.json reproduction evidence.  Pass --out
# benchmarks/perf/BENCH_schedule.json to regenerate it deliberately.
DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_schedule.local.json"
GEOMETRIES = ("mig", "mi300x", "mixed")


def _make_scheduler(geometry: str, fast_path: bool):
    """A fresh scheduler for one fleet run (profiles cached per process)."""
    if geometry == "mixed":
        return make_mixed_scheduler(fast_path=fast_path)
    geo = get_geometry(geometry)
    profiles = (
        profile_workloads()
        if geo.name == "mig"
        else profile_workloads(geometry=geo)
    )
    return ParvaGPU(profiles, geometry=geo, fast_path=fast_path)


def _timed_schedule(scheduler, services):
    t0 = time.perf_counter()
    placement = scheduler.schedule(services)
    return placement, time.perf_counter() - t0


def run_fleet_sweep(tiers, geometries, naive_cap):
    """The S9 sweep: schedule each tier on each geometry, fast vs naive."""
    rows = []
    for tier in tiers:
        for geometry in geometries:
            services = fleet_services(tier)
            fast, fast_wall = _timed_schedule(
                _make_scheduler(geometry, fast_path=True), services
            )
            row = {
                "scenario": "S9",
                "tier": tier,
                "geometry": geometry,
                "services": len(services),
                "segments": sum(1 for _ in fast.iter_segments()),
                "gpus": fast.num_gpus,
                "indexed_wall_s": round(fast_wall, 6),
                "naive_wall_s": None,
                "speedup": None,
                "identical": None,
            }
            if tier <= naive_cap:
                naive, naive_wall = _timed_schedule(
                    _make_scheduler(geometry, fast_path=False), services
                )
                row["naive_wall_s"] = round(naive_wall, 6)
                row["speedup"] = round(naive_wall / fast_wall, 2)
                row["identical"] = naive.fingerprint() == fast.fingerprint()
                if not row["identical"]:
                    raise SystemExit(
                        f"FATAL: indexed and naive placements differ for "
                        f"{tier} services on {geometry}"
                    )
            rows.append(row)
            speedup = (
                f"{row['speedup']}x vs naive" if row["speedup"] else "naive skipped"
            )
            print(
                f"  S9 {geometry:>6} n={tier:<5} "
                f"{row['indexed_wall_s']*1e3:8.1f} ms  "
                f"{row['gpus']:>5} GPUs  ({speedup})"
            )
    return rows


def run_autoscaler_trace(num_services, epochs):
    """The S10 pass: a diurnal fleet through the SIII-F incremental path."""
    services = fleet_services(num_services)
    traces = fleet_traces(services, epochs=epochs)
    scaler = Autoscaler(profile_workloads())
    t0 = time.perf_counter()
    report = scaler.run(services, traces)
    wall = time.perf_counter() - t0
    row = {
        "scenario": "S10",
        "services": num_services,
        "trace_epochs": epochs,
        "steps": len(report.steps),
        "wall_s": round(wall, 6),
        "peak_gpus": report.peak_gpus,
        "mean_gpus": round(report.mean_gpus, 2),
        "reconfig_ops": report.total_reconfig_ops,
    }
    print(
        f"  S10 {num_services} services x {epochs} epochs: "
        f"{wall:.2f} s, {len(report.steps)} steps, "
        f"peak {report.peak_gpus} GPUs"
    )
    return row


def check_baseline(rows, baseline_path, max_regress):
    """Compare indexed wall-clocks to the committed baseline (>Nx fails)."""
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    reference = {
        (r["tier"], r["geometry"]): r["indexed_wall_s"]
        for r in baseline.get("fleets", [])
    }
    regressions = []
    for row in rows:
        ref = reference.get((row["tier"], row["geometry"]))
        if ref is None:
            continue
        ratio = row["indexed_wall_s"] / ref
        marker = "REGRESSION" if ratio > max_regress else "ok"
        print(
            f"  baseline {row['geometry']:>6} n={row['tier']:<5} "
            f"{ratio:5.2f}x of reference ({marker})"
        )
        if ratio > max_regress:
            regressions.append((row["tier"], row["geometry"], ratio))
    return regressions


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiers",
        default=",".join(str(t) for t in FLEET_TIERS),
        help="comma-separated fleet sizes (default: %(default)s)",
    )
    parser.add_argument(
        "--geometries",
        default=",".join(GEOMETRIES),
        help="comma-separated geometries (default: %(default)s)",
    )
    parser.add_argument(
        "--naive-cap",
        type=int,
        default=1000,
        help="largest tier also timed on the O(n^2) naive path "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUT,
        help="result JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="committed baseline JSON to regress against",
    )
    parser.add_argument(
        "--max-regress", type=float, default=2.0,
        help="fail when indexed wall-clock exceeds baseline by this factor",
    )
    parser.add_argument(
        "--skip-autoscaler", action="store_true",
        help="skip the S10 autoscaler trace pass",
    )
    parser.add_argument(
        "--autoscaler-services", type=int, default=S10_FLEET_SIZE,
    )
    parser.add_argument(
        "--autoscaler-epochs", type=int, default=S10_EPOCHS,
    )
    args = parser.parse_args(argv)

    tiers = [int(t) for t in args.tiers.split(",") if t]
    geometries = [g.strip() for g in args.geometries.split(",") if g.strip()]

    print(f"fleet sweep: tiers={tiers} geometries={geometries}")
    fleets = run_fleet_sweep(tiers, geometries, args.naive_cap)
    autoscaler = None
    if not args.skip_autoscaler:
        autoscaler = run_autoscaler_trace(
            args.autoscaler_services, args.autoscaler_epochs
        )

    doc = {
        "version": 1,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "fleets": fleets,
        "autoscaler": autoscaler,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.baseline is not None:
        regressions = check_baseline(fleets, args.baseline, args.max_regress)
        if regressions:
            print(f"FAIL: {len(regressions)} tier(s) regressed "
                  f">{args.max_regress}x against {args.baseline}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
