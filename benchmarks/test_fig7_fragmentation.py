"""Figure 7 — external fragmentation per framework across S1-S6."""

from repro.experiments import run_experiment


def test_fig7(benchmark, archive, profiles):
    result = benchmark.pedantic(
        lambda: run_experiment("fig7"), rounds=1, iterations=1
    )
    archive(result)

    cols = result.columns
    parva = result.column("parvagpu")
    igniter = [v for v in result.column("igniter") if v is not None]

    # the headline: ParvaGPU eliminates external fragmentation everywhere
    assert all(v < 0.5 for v in parva)
    # iGniter, lacking any mechanism, fragments heavily somewhere
    assert max(igniter) > 10.0
    # gpulet avoids fragmentation by construction (second partition takes all)
    gpulet = [v for v in result.column("gpulet") if v is not None]
    assert sum(gpulet) / len(gpulet) < 10.0
    # the unoptimized ablation never beats full ParvaGPU
    unopt = result.column("parvagpu-unoptimized")
    assert all(u >= p - 1e-9 for u, p in zip(unopt, parva))
