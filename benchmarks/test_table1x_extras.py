"""Beyond-the-paper bench: all seven Table-I frameworks, measured."""

from repro.experiments import run_experiment


def test_table1x(benchmark, archive, profiles):
    result = benchmark.pedantic(
        lambda: run_experiment("table1x"), rounds=1, iterations=1
    )
    archive(result)

    rows = {r[0]: r for r in result.rows}
    # every framework produced a schedule for S1
    assert all(r[1] is not None for r in result.rows)
    # ParvaGPU has the lowest slack among multi-GPU-capable frameworks
    multi = ("gpulet", "igniter", "paris-elsa", "mig-serving", "parvagpu-single")
    for name in multi:
        assert rows["parvagpu"][2] <= rows[name][2] + 1e-9, name
    # GSLICE's self-tuning also controls slack — the Table-I "yes" cell
    assert rows["gslice"][2] < rows["gpulet"][2]
