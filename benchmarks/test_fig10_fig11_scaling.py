"""Figures 10/11 — the predictor scalability study (S5 x 1..10)."""

from repro.experiments import run_experiment


def test_fig10(benchmark, archive, profiles):
    result = benchmark.pedantic(
        lambda: run_experiment("fig10"), rounds=1, iterations=1
    )
    archive(result)

    parva = result.column("parvagpu")
    gpulet = result.column("gpulet")
    mig = result.column("mig-serving")
    single = result.column("parvagpu-single")

    # paper: 45.2% / 30% / 7.4% average savings
    assert sum(parva) < 0.70 * sum(gpulet)
    assert sum(parva) < 0.85 * sum(mig)
    assert sum(parva) <= sum(single)
    # growth stays linear-ish in the factor for ParvaGPU
    assert parva[-1] <= 11 * parva[0]


def test_fig11(benchmark, archive, profiles):
    result = benchmark.pedantic(
        lambda: run_experiment("fig11"), rounds=1, iterations=1
    )
    archive(result)

    parva = result.column("parvagpu")
    mig = result.column("mig-serving")
    # MIG-serving's delay explodes with service count (paper: -99.9% for
    # ParvaGPU at scale) — at x10 the gap exceeds 1.5 orders of magnitude.
    assert mig[-1] - parva[-1] > 1.5
    # and the gap widens monotonically-ish with scale
    assert (mig[-1] - parva[-1]) > (mig[0] - parva[0])
