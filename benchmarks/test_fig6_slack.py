"""Figure 6 — internal slack per framework across S1-S6 (simulated)."""

from repro.experiments import run_experiment


def test_fig6(benchmark, archive, profiles):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", simulate=True, duration_s=1.5),
        rounds=1,
        iterations=1,
    )
    archive(result)

    cols = result.columns
    parva_i = cols.index("parvagpu")
    for row in result.rows:
        # ParvaGPU beats every non-ablation baseline in every scenario
        # (the ablation may tie within segment-granularity noise).
        for fw in ("gpulet", "igniter", "mig-serving"):
            rival = row[cols.index(fw)]
            if rival is not None:
                assert row[parva_i] < rival, row
        single = row[cols.index("parvagpu-single")]
        assert row[parva_i] <= single + 3.0, row
    # ... and hits the paper's 3-10% band at the high-load scenarios.
    s6 = next(r for r in result.rows if r[0] == "S6")
    assert s6[parva_i] < 12.0

    # the ablation ordering of the paper: single-process costs extra slack
    # on average (paper: +4.7 points).
    single_i = cols.index("parvagpu-single")
    avg_gap = sum(r[single_i] - r[parva_i] for r in result.rows) / len(result.rows)
    assert avg_gap > 2.0
