"""MPS (Multi-Process Service) control daemon model.

ParvaGPU enables MPS *inside* each MIG instance and launches several
processes of the *same* workload there (a "GPU segment").  Because the
co-located processes are homogeneous, no cross-workload interference model
is needed — only process bookkeeping and the active-thread-percentage quota
MPS exposes since Volta.

The MPS-only baselines (gpulet, iGniter) instead run *heterogeneous*
workloads under one MPS daemon on a whole GPU; for those, the quota is a
fraction of the full GPU and interference comes from
:mod:`repro.models.interference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class MPSError(RuntimeError):
    """Raised on invalid MPS daemon operations."""


#: ParvaGPU's profiler caps process count at three (SIII-C), chiefly to bound
#: framebuffer pressure; we keep the cap in the daemon model so that property
#: tests can assert the profiler never requests more.
MAX_PROCESSES_PER_SEGMENT = 3


@dataclass
class MPSProcess:
    """One CUDA client process registered with the daemon."""

    pid: int
    workload: str
    active_thread_pct: float = 100.0

    def __post_init__(self) -> None:
        if not 0.0 < self.active_thread_pct <= 100.0:
            raise MPSError(
                f"active thread percentage must be in (0, 100], got "
                f"{self.active_thread_pct}"
            )


@dataclass
class MPSContext:
    """An MPS daemon bound to one MIG instance (or a whole GPU).

    Tracks registered client processes and enforces the homogeneity rule
    when ``homogeneous_only`` is set (ParvaGPU segments) as well as the
    aggregate active-thread quota when one is configured (MPS-percentage
    baselines).
    """

    homogeneous_only: bool = True
    max_processes: int = MAX_PROCESSES_PER_SEGMENT
    _processes: list[MPSProcess] = field(default_factory=list)
    _next_pid: int = 1

    @property
    def processes(self) -> tuple[MPSProcess, ...]:
        return tuple(self._processes)

    @property
    def num_processes(self) -> int:
        return len(self._processes)

    @property
    def workloads(self) -> tuple[str, ...]:
        """Distinct workload names currently registered, sorted."""
        return tuple(sorted({p.workload for p in self._processes}))

    def launch(self, workload: str, active_thread_pct: float = 100.0) -> MPSProcess:
        """Register a new client process for ``workload``."""
        if len(self._processes) >= self.max_processes:
            raise MPSError(
                f"MPS daemon already hosts {self.max_processes} processes"
            )
        if (
            self.homogeneous_only
            and self._processes
            and any(p.workload != workload for p in self._processes)
        ):
            raise MPSError(
                "this daemon only accepts homogeneous workloads "
                f"({self._processes[0].workload!r}), got {workload!r}"
            )
        proc = MPSProcess(self._next_pid, workload, active_thread_pct)
        self._next_pid += 1
        self._processes.append(proc)
        return proc

    def terminate(self, pid: int) -> None:
        """Deregister the process with ``pid``."""
        for i, p in enumerate(self._processes):
            if p.pid == pid:
                del self._processes[i]
                return
        raise MPSError(f"no MPS client with pid {pid}")

    def terminate_all(self) -> None:
        self._processes.clear()

    def total_active_thread_pct(self) -> float:
        """Sum of client quotas (may legitimately exceed 100)."""
        return sum(p.active_thread_pct for p in self._processes)
