"""Framebuffer capacity model and out-of-memory checks.

MIG statically partitions the A100's HBM alongside its GPCs; each instance
size owns a fixed framebuffer (SII-B of the paper).  The profiler uses
:func:`fits_in_memory` to drop (batch, procs) points that would OOM on real
hardware — those points are absent from Figure 3/4 for the same reason.
"""

from __future__ import annotations

from repro.gpu.mig import MEMORY_GB, INSTANCE_SIZES


class MemoryError_(RuntimeError):
    """Raised when a workload cannot fit in an instance's framebuffer.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


def instance_memory_gb(size: int) -> int:
    """Framebuffer capacity (GB) of an instance of ``size`` GPCs."""
    try:
        return MEMORY_GB[size]
    except KeyError:
        raise ValueError(
            f"no MIG profile of size {size}; sizes are {INSTANCE_SIZES}"
        ) from None


def fits_in_memory(required_gb: float, size: int) -> bool:
    """Whether ``required_gb`` of workload state fits an instance of ``size``."""
    if required_gb < 0:
        raise ValueError("memory requirement must be non-negative")
    return required_gb <= instance_memory_gb(size)


def check_fits(required_gb: float, size: int) -> None:
    """Raise :class:`MemoryError_` when the workload would OOM."""
    if not fits_in_memory(required_gb, size):
        raise MemoryError_(
            f"workload needs {required_gb:.1f} GB but a "
            f"{instance_memory_gb(size)} GB (size-{size}) instance was given"
        )
