"""Framebuffer capacity model and out-of-memory checks.

Partitioning statically splits a device's HBM alongside its compute
slices; each instance size owns a fixed framebuffer (SII-B of the paper
for MIG; the proportional NPS split for MI300X).  The profiler uses
:func:`fits_in_memory` to drop (batch, procs) points that would OOM on
real hardware — those points are absent from Figure 3/4 for the same
reason.  Every helper defaults to the A100-80GB MIG map and accepts any
:class:`~repro.gpu.geometry.PartitionGeometry` for other backends.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.geometry import PartitionGeometry
from repro.gpu.mig import MEMORY_GB, INSTANCE_SIZES


class MemoryError_(RuntimeError):
    """Raised when a workload cannot fit in an instance's framebuffer.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


def instance_memory_gb(
    size: int, geometry: Optional[PartitionGeometry] = None
) -> float:
    """Framebuffer capacity (GB) of an instance of ``size`` slices."""
    if geometry is not None:
        return geometry.instance_memory_gb(size)
    try:
        return MEMORY_GB[size]
    except KeyError:
        raise ValueError(
            f"no MIG profile of size {size}; sizes are {INSTANCE_SIZES}"
        ) from None


def fits_in_memory(
    required_gb: float, size: int, geometry: Optional[PartitionGeometry] = None
) -> bool:
    """Whether ``required_gb`` of workload state fits an instance of ``size``."""
    if required_gb < 0:
        raise ValueError("memory requirement must be non-negative")
    return required_gb <= instance_memory_gb(size, geometry)


def check_fits(
    required_gb: float, size: int, geometry: Optional[PartitionGeometry] = None
) -> None:
    """Raise :class:`MemoryError_` when the workload would OOM."""
    if not fits_in_memory(required_gb, size, geometry):
        raise MemoryError_(
            f"workload needs {required_gb:.1f} GB but a "
            f"{instance_memory_gb(size, geometry)} GB (size-{size}) "
            f"instance was given"
        )
