"""AMD Instinct MI300X XCD partitioning as a :class:`PartitionGeometry`.

An MI300X is built from 8 XCDs (Accelerator Complex Dies) stacked on 4
IODs, with 192 GB of HBM3 in 8 stacks (2 per IOD).  Unlike MIG — which
carves one die into per-instance slices with free size mixing — AMD's
compute partitioning (Modular Chiplet Platform) is a *device-wide mode*
set through ``amd-smi set --compute-partition``:

====  ==============================  =========  ==================
mode  meaning                         instances  XCDs per instance
====  ==============================  =========  ==================
SPX   Single Partition X-celerator    1          8 (whole device)
DPX   Dual Partition X-celerator      2          4
QPX   Quad Partition X-celerator      4          2
CPX   Core Partitioned X-celerator    8          1
====  ==============================  =========  ==================

Memory partitioning (NPS, NUMA-per-socket) is orthogonal but constrained:
the number of memory partitions may not exceed the number of compute
partitions, so NPS4 (one 48 GB HBM quadrant per IOD) requires CPX, while
NPS1 interleaves the full 192 GB for every mode.  The framebuffer behind an
instance is therefore its proportional share of HBM: 192/96/48/24 GB for
SPX/DPX/QPX/CPX instances respectively (a CPX instance shares its NPS4
quadrant with the quadrant's other XCD).

Two structural consequences for the scheduler:

- **uniform sizes** — all instances on one MI300X have the same size, so a
  layout like MIG's ``4+2+1`` is illegal; reconfiguring between modes
  drains the whole device (modeled by
  ``PartitionGeometry.uniform_instance_sizes``);
- **no blocked slices** — partition sizes tile the 8 XCDs exactly, so the
  MI300X has no analogue of MIG's 3g-at-slot-0 blocking rule and no
  external fragmentation *within* a device.

Compute calibration: one XCD (38 CUs of CDNA3) is modeled as
:data:`GPC_EQUIV_PER_XCD` A100-GPC equivalents, making a whole MI300X
worth ~1.6 A100s for the dense inference workloads of Table IV — a
deliberately conservative serving-throughput ratio rather than a peak
TFLOPS ratio.
"""

from __future__ import annotations

from repro.gpu.geometry import (
    PartitionGeometry,
    PartitionLayout,
    enumerate_layouts,
    register_geometry,
)

#: XCDs (Accelerator Complex Dies) on one MI300X.
NUM_XCDS = 8

#: CDNA3 compute units per XCD (304 CUs / 8 XCDs).
CUS_PER_XCD = 38

#: Total HBM3 capacity of one MI300X (GB).
MI300X_MEMORY_GB = 192.0

#: Serving-throughput compute of one XCD in A100-GPC equivalents.
GPC_EQUIV_PER_XCD = 1.4

#: Compute-partition modes: mode name -> XCDs per instance.
COMPUTE_MODES: dict[str, int] = {"SPX": 8, "DPX": 4, "QPX": 2, "CPX": 1}

#: Instance size -> compute-partition mode name.
MODE_FOR_SIZE: dict[int, str] = {v: k for k, v in COMPUTE_MODES.items()}

#: Memory (NPS) modes and the compute modes they are legal with.  The
#: partitioning guide's rule: #memory partitions <= #compute partitions.
MEMORY_MODES: dict[str, tuple[str, ...]] = {
    "NPS1": ("SPX", "DPX", "QPX", "CPX"),
    "NPS4": ("CPX",),
}

#: Framebuffer share of each instance size (proportional HBM split).
_MEMORY_MAP: dict[int, float] = {
    8: MI300X_MEMORY_GB,  # SPX: whole board
    4: MI300X_MEMORY_GB / 2,  # DPX: 96 GB
    2: MI300X_MEMORY_GB / 4,  # QPX: 48 GB (one NPS4 quadrant)
    1: MI300X_MEMORY_GB / 8,  # CPX: 24 GB (half a quadrant)
}

#: ``amd-smi``-style partition labels, size -> name.
_PROFILE_NAMES: dict[int, str] = {
    8: "spx.192gb",
    4: "dpx.96gb",
    2: "qpx.48gb",
    1: "cpx.24gb",
}

#: Partition sizes tile the device, so starts are simply every multiple of
#: the size.  AMD has no "extended" rule set; both tables coincide.
_STARTS: dict[int, tuple[int, ...]] = {
    size: tuple(range(0, NUM_XCDS, size)) for size in (1, 2, 4, 8)
}

MI300X_GEOMETRY: PartitionGeometry = register_geometry(
    PartitionGeometry(
        name="mi300x",
        vendor="amd",
        kind="xcd",
        slice_label="XCD",
        num_slices=NUM_XCDS,
        instance_sizes=(1, 2, 4, 8),
        memory_map=_MEMORY_MAP,
        profile_names=_PROFILE_NAMES,
        canonical_starts=_STARTS,
        extended_starts=_STARTS,
        blocked_extra={},
        # Uniform tiling means there are no "bad" slots to avoid; the
        # defaults (prefer every legal start in order, no fallbacks) keep
        # partially-filled devices contiguous from low XCD indices.
        sms_per_slice=CUS_PER_XCD,
        gpc_equiv_per_slice=GPC_EQUIV_PER_XCD,
        uniform_instance_sizes=True,
        small_sizes=(1, 2),
        compact_max_size=4,
    ),
    aliases=("amd", "instinct", "mi300"),
)


def compute_mode_for(size: int) -> str:
    """The ``amd-smi`` compute-partition mode an instance size implies."""
    try:
        return MODE_FOR_SIZE[size]
    except KeyError:
        raise ValueError(
            f"mi300x: no partition profile of size {size}; "
            f"sizes are {MI300X_GEOMETRY.instance_sizes}"
        ) from None


def legal_memory_modes(size: int) -> tuple[str, ...]:
    """NPS modes legal for a device partitioned at ``size`` XCDs."""
    mode = compute_mode_for(size)
    return tuple(
        nps for nps, compat in MEMORY_MODES.items() if mode in compat
    )


def enumerate_modes() -> list[PartitionLayout]:
    """Every maximal MI300X layout — exactly the four device-wide modes.

    The AMD analogue of MIG's 19-configuration Figure 1: the uniform-size
    rule collapses the combinatorics to SPX, DPX (4+4), QPX (2+2+2+2) and
    CPX (eight CPX instances).
    """
    return enumerate_layouts(MI300X_GEOMETRY, extended=False)
