"""MIG instance profiles, placement legality, and the 19 A100 configurations.

The paper's Figure 1 lists the 19 instance combinations an A100/H100 admits
when MIG is enabled.  The combinatorial structure behind that table is:

* instances come in sizes 1, 2, 3, 4 and 7 GPCs (5 and 6 do not exist);
* each size may only *start* at certain slices (its "slots"):

  ====  ==================  =============================================
  size  legal start slots    note
  ====  ==================  =============================================
  7     0                   whole GPU
  4     0                   occupies slices 0-3
  3     0 or 4              a size-3 at slot 0 additionally *blocks*
                            slice 3 (paper SIII-E1: "placing a size 3
                            segment in slot 0 prevents the allocation of
                            a size 1 segment in slot 3")
  2     0, 2, 4 (and 5)     slot 5 is the paper's extension; the
                            canonical Figure-1 enumeration uses 0/2/4
  1     0-6                 any slice
  ====  ==================  =============================================

``enumerate_configurations()`` regenerates Figure 1 exactly: the 18 maximal
layouts composed from the lower region (slices 0-3) and the upper region
(slices 4-6), plus the full-GPU size-7 layout, i.e. 19 configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.gpu.slices import NUM_SLICES, popcount, range_mask, slice_indices

#: Instance sizes that exist on A100/H100-class hardware, ascending.
INSTANCE_SIZES: tuple[int, ...] = (1, 2, 3, 4, 7)

#: Framebuffer capacity (GB) of each instance size on an 80 GB A100
#: (paper SII-B: "instances with 10, 20, 40, 40, 80GB of GPU memory").
MEMORY_GB: dict[int, int] = {1: 10, 2: 20, 3: 40, 4: 40, 7: 80}

#: MIG profile names as ``nvidia-smi`` would print them for an A100-80GB.
PROFILE_NAMES: dict[int, str] = {
    1: "1g.10gb",
    2: "2g.20gb",
    3: "3g.40gb",
    4: "4g.40gb",
    7: "7g.80gb",
}

#: Start slots allowed by the canonical (NVIDIA-documented) placement rules.
_CANONICAL_STARTS: dict[int, tuple[int, ...]] = {
    7: (0,),
    4: (0,),
    3: (0, 4),
    2: (0, 2, 4),
    1: (0, 1, 2, 3, 4, 5, 6),
}

#: Start slots under the paper's extended rule set (size 2 may also start at
#: slot 5, occupying slices 5-6).  The Segment Allocator uses these.
_EXTENDED_STARTS: dict[int, tuple[int, ...]] = {
    7: (0,),
    4: (0,),
    3: (0, 4),
    2: (0, 2, 4, 5),
    1: (0, 1, 2, 3, 4, 5, 6),
}


@dataclass(frozen=True)
class InstanceProfile:
    """Immutable description of one MIG instance size."""

    size: int  #: number of GPC slices of compute
    memory_gb: int  #: framebuffer capacity
    name: str  #: ``nvidia-smi`` style profile name

    def __post_init__(self) -> None:
        if self.size not in INSTANCE_SIZES:
            raise ValueError(f"no MIG profile of size {self.size}")


#: Profile lookup by size.
PROFILES: dict[int, InstanceProfile] = {
    s: InstanceProfile(size=s, memory_gb=MEMORY_GB[s], name=PROFILE_NAMES[s])
    for s in INSTANCE_SIZES
}


def legal_starts(size: int, extended: bool = True) -> tuple[int, ...]:
    """Start slots where an instance of ``size`` GPCs may be created.

    ``extended=True`` (default) applies the paper's allocator rules, which
    additionally allow a size-2 instance at slot 5.  ``extended=False`` gives
    the canonical rule set used to enumerate Figure 1.
    """
    table = _EXTENDED_STARTS if extended else _CANONICAL_STARTS
    try:
        return table[size]
    except KeyError:
        raise ValueError(f"no MIG profile of size {size}") from None


def occupied_mask(size: int, start: int) -> int:
    """Slice bitmask an instance *occupies plus blocks* at ``start``.

    A size-3 instance at slot 0 occupies slices 0-2 **and blocks slice 3**
    (configurations 5-7 of Figure 1 make slice 3 unusable in that case), so
    its mask covers slices 0-3.  Everything else occupies exactly
    ``[start, start+size)``.
    """
    if size == 3 and start == 0:
        return range_mask(0, 4)
    return range_mask(start, size)


@dataclass(frozen=True)
class PlacedInstance:
    """An instance size pinned to a start slot."""

    size: int
    start: int

    def __post_init__(self) -> None:
        if self.size not in INSTANCE_SIZES:
            raise ValueError(f"no MIG profile of size {self.size}")
        if self.start not in legal_starts(self.size, extended=True):
            raise ValueError(
                f"size-{self.size} instance may not start at slot {self.start}"
            )

    @property
    def mask(self) -> int:
        """Occupied+blocked slice bitmask."""
        return occupied_mask(self.size, self.start)

    @property
    def profile(self) -> InstanceProfile:
        return PROFILES[self.size]

    @property
    def slices(self) -> tuple[int, ...]:
        return slice_indices(self.mask)


class MigLayout:
    """A set of non-overlapping placed instances on one GPU.

    The layout is the *shape* of a MIG partitioning; it knows nothing about
    which service runs where (that is :class:`repro.gpu.gpu.GPU`'s job).
    """

    __slots__ = ("_instances", "_mask")

    def __init__(self, instances: Iterable[PlacedInstance] = ()) -> None:
        self._instances: list[PlacedInstance] = []
        self._mask = 0
        for inst in instances:
            self.add(inst)

    @property
    def instances(self) -> tuple[PlacedInstance, ...]:
        return tuple(self._instances)

    @property
    def mask(self) -> int:
        """Union of occupied+blocked slices."""
        return self._mask

    @property
    def used_gpcs(self) -> int:
        """Total GPCs of *compute* allocated (blocked slices don't count)."""
        return sum(i.size for i in self._instances)

    def can_add(self, size: int, start: int, extended: bool = True) -> bool:
        """Whether an instance of ``size`` can be created at ``start``."""
        if size not in INSTANCE_SIZES:
            return False
        if start not in legal_starts(size, extended=extended):
            return False
        return not self._mask & occupied_mask(size, start)

    def add(self, inst: PlacedInstance) -> None:
        if self._mask & inst.mask:
            raise ValueError(f"{inst} overlaps existing instances")
        self._instances.append(inst)
        self._mask |= inst.mask

    def remove(self, inst: PlacedInstance) -> None:
        self._instances.remove(inst)
        self._mask = 0
        for other in self._instances:
            self._mask |= other.mask

    def sizes(self) -> tuple[int, ...]:
        """Instance sizes in this layout, descending (Figure-1 row style)."""
        return tuple(sorted((i.size for i in self._instances), reverse=True))

    def signature(self) -> tuple[tuple[int, int], ...]:
        """Canonical ``(start, size)`` tuple — hashable layout identity."""
        return tuple(sorted((i.start, i.size) for i in self._instances))

    def is_maximal(self, extended: bool = False) -> bool:
        """True when no further instance of any size can be added."""
        for size in INSTANCE_SIZES:
            for start in legal_starts(size, extended=extended):
                if self.can_add(size, start, extended=extended):
                    return False
        return True

    def __len__(self) -> int:
        return len(self._instances)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = "+".join(str(s) for s in self.sizes()) or "empty"
        return f"MigLayout({parts})"


def enumerate_configurations() -> list[MigLayout]:
    """Regenerate the 19 legal A100 MIG configurations of Figure 1.

    Enumerates every maximal layout under the canonical placement rules via
    depth-first search over start slots, deduplicated by signature.  The
    result is sorted largest-instance-first to match the paper's ordering
    (config 1 = one size-7 instance ... config 19 = seven size-1 instances).
    """
    seen: set[tuple[tuple[int, int], ...]] = set()
    results: list[MigLayout] = []

    def dfs(layout: MigLayout) -> None:
        extended = False
        if layout.is_maximal(extended=extended):
            sig = layout.signature()
            if sig not in seen:
                seen.add(sig)
                results.append(MigLayout(layout.instances))
            return
        for size in sorted(INSTANCE_SIZES, reverse=True):
            for start in legal_starts(size, extended=extended):
                if layout.can_add(size, start, extended=extended):
                    inst = PlacedInstance(size, start)
                    layout.add(inst)
                    dfs(layout)
                    layout.remove(inst)

    dfs(MigLayout())
    results.sort(key=lambda l: tuple(-s for s in l.sizes()))
    return results
