"""MIG instance profiles, placement legality, and the 19 A100 configurations.

The paper's Figure 1 lists the 19 instance combinations an A100/H100 admits
when MIG is enabled.  The combinatorial structure behind that table is:

* instances come in sizes 1, 2, 3, 4 and 7 GPCs (5 and 6 do not exist);
* each size may only *start* at certain slices (its "slots"):

  ====  ==================  =============================================
  size  legal start slots    note
  ====  ==================  =============================================
  7     0                   whole GPU
  4     0                   occupies slices 0-3
  3     0 or 4              a size-3 at slot 0 additionally *blocks*
                            slice 3 (paper SIII-E1: "placing a size 3
                            segment in slot 0 prevents the allocation of
                            a size 1 segment in slot 3")
  2     0, 2, 4 (and 5)     slot 5 is the paper's extension; the
                            canonical Figure-1 enumeration uses 0/2/4
  1     0-6                 any slice
  ====  ==================  =============================================

Since the pluggable-geometry refactor these rules are packaged as
:data:`MIG_GEOMETRY` — the NVIDIA instantiation of
:class:`repro.gpu.geometry.PartitionGeometry` — and everything below
(``legal_starts``, ``occupied_mask``, :class:`MigLayout`) delegates to it.
The AMD counterpart lives in :mod:`repro.gpu.amd`.

``enumerate_configurations()`` regenerates Figure 1 exactly: the 18 maximal
layouts composed from the lower region (slices 0-3) and the upper region
(slices 4-6), plus the full-GPU size-7 layout, i.e. 19 configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.gpu.geometry import (
    PartitionGeometry,
    PartitionLayout,
    PlacedPartition,
    enumerate_layouts,
    register_geometry,
)
from repro.gpu.slices import NUM_SLICES, mask_of

#: Instance sizes that exist on A100/H100-class hardware, ascending.
INSTANCE_SIZES: tuple[int, ...] = (1, 2, 3, 4, 7)

#: Framebuffer capacity (GB) of each instance size on an 80 GB A100
#: (paper SII-B: "instances with 10, 20, 40, 40, 80GB of GPU memory").
MEMORY_GB: dict[int, int] = {1: 10, 2: 20, 3: 40, 4: 40, 7: 80}

#: MIG profile names as ``nvidia-smi`` would print them for an A100-80GB.
PROFILE_NAMES: dict[int, str] = {
    1: "1g.10gb",
    2: "2g.20gb",
    3: "3g.40gb",
    4: "4g.40gb",
    7: "7g.80gb",
}

#: Start slots allowed by the canonical (NVIDIA-documented) placement rules.
_CANONICAL_STARTS: dict[int, tuple[int, ...]] = {
    7: (0,),
    4: (0,),
    3: (0, 4),
    2: (0, 2, 4),
    1: (0, 1, 2, 3, 4, 5, 6),
}

#: Start slots under the paper's extended rule set (size 2 may also start at
#: slot 5, occupying slices 5-6).  The Segment Allocator uses these.
_EXTENDED_STARTS: dict[int, tuple[int, ...]] = {
    7: (0,),
    4: (0,),
    3: (0, 4),
    2: (0, 2, 4, 5),
    1: (0, 1, 2, 3, 4, 5, 6),
}

#: SMs per GPC on GA100 (the A100 exposes 98 usable SMs under MIG = 14 per
#: GPC slice, which is the number DCGM-style accounting needs).
SMS_PER_GPC = 14

#: The NVIDIA MIG geometry: seven GPC slices, five instance sizes, free
#: mixing of sizes on one GPU.  Slot preferences implement SIII-E1: sizes
#: 7/4 only fit slot 0; size 3 prefers slot 4 (slot 0 would block slice 3);
#: size 2 prefers the lower half; size 1 fills slots 0-3 before 4-6.
MIG_GEOMETRY: PartitionGeometry = register_geometry(
    PartitionGeometry(
        name="mig",
        vendor="nvidia",
        kind="mig",
        slice_label="GPC",
        num_slices=NUM_SLICES,
        instance_sizes=INSTANCE_SIZES,
        memory_map=dict(MEMORY_GB),
        profile_names=dict(PROFILE_NAMES),
        canonical_starts=_CANONICAL_STARTS,
        extended_starts=_EXTENDED_STARTS,
        blocked_extra={(3, 0): mask_of([3])},
        slot_preferences={7: (0,), 4: (0,), 3: (4,), 2: (0, 2), 1: (0, 1, 2, 3)},
        slot_fallbacks={7: (), 4: (), 3: (), 2: (4, 5), 1: (4, 5, 6)},
        sms_per_slice=SMS_PER_GPC,
        gpc_equiv_per_slice=1.0,
        uniform_instance_sizes=False,
        small_sizes=(1, 2),
        compact_max_size=3,
    ),
    aliases=("nvidia", "a100", "a100-80gb", "h100", "h100-80gb"),
)


@dataclass(frozen=True)
class InstanceProfile:
    """Immutable description of one MIG instance size."""

    size: int  #: number of GPC slices of compute
    memory_gb: int  #: framebuffer capacity
    name: str  #: ``nvidia-smi`` style profile name

    def __post_init__(self) -> None:
        if self.size not in INSTANCE_SIZES:
            raise ValueError(f"no MIG profile of size {self.size}")


#: Profile lookup by size.
PROFILES: dict[int, InstanceProfile] = {
    s: InstanceProfile(size=s, memory_gb=MEMORY_GB[s], name=PROFILE_NAMES[s])
    for s in INSTANCE_SIZES
}


def legal_starts(size: int, extended: bool = True) -> tuple[int, ...]:
    """Start slots where an instance of ``size`` GPCs may be created.

    ``extended=True`` (default) applies the paper's allocator rules, which
    additionally allow a size-2 instance at slot 5.  ``extended=False`` gives
    the canonical rule set used to enumerate Figure 1.
    """
    try:
        return MIG_GEOMETRY.legal_starts(size, extended=extended)
    except ValueError:
        raise ValueError(f"no MIG profile of size {size}") from None


def occupied_mask(size: int, start: int) -> int:
    """Slice bitmask an instance *occupies plus blocks* at ``start``.

    A size-3 instance at slot 0 occupies slices 0-2 **and blocks slice 3**
    (configurations 5-7 of Figure 1 make slice 3 unusable in that case), so
    its mask covers slices 0-3.  Everything else occupies exactly
    ``[start, start+size)``.
    """
    return MIG_GEOMETRY.occupied_mask(size, start)


@dataclass(frozen=True, eq=False)
class PlacedInstance(PlacedPartition):
    """A MIG instance size pinned to a start slot (NVIDIA geometry)."""

    geometry: PartitionGeometry = field(
        default=MIG_GEOMETRY, repr=False
    )

    def __post_init__(self) -> None:
        if self.size not in INSTANCE_SIZES:
            raise ValueError(f"no MIG profile of size {self.size}")
        if self.start not in legal_starts(self.size, extended=True):
            raise ValueError(
                f"size-{self.size} instance may not start at slot {self.start}"
            )

    @property
    def profile(self) -> InstanceProfile:
        return PROFILES[self.size]


class MigLayout(PartitionLayout):
    """A set of non-overlapping placed instances on one MIG-capable GPU.

    The layout is the *shape* of a MIG partitioning; it knows nothing about
    which service runs where (that is :class:`repro.gpu.gpu.GPU`'s job).
    All legality logic lives in :class:`~repro.gpu.geometry.PartitionLayout`
    parameterized by :data:`MIG_GEOMETRY`.
    """

    __slots__ = ()

    def __init__(self, instances: Iterable[PlacedInstance] = ()) -> None:
        super().__init__(MIG_GEOMETRY, tuple(instances))


def enumerate_configurations() -> list[MigLayout]:
    """Regenerate the 19 legal A100 MIG configurations of Figure 1.

    Enumerates every maximal layout under the canonical placement rules via
    depth-first search over start slots, deduplicated by signature.  The
    result is sorted largest-instance-first to match the paper's ordering
    (config 1 = one size-7 instance ... config 19 = seven size-1 instances).
    """
    return [
        MigLayout(
            PlacedInstance(size=i.size, start=i.start)
            for i in layout.instances
        )
        for layout in enumerate_layouts(MIG_GEOMETRY, extended=False)
    ]
