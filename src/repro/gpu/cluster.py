"""Multi-GPU cluster with reconfiguration planning.

A :class:`Cluster` is an elastic pool of :class:`~repro.gpu.gpu.GPU` objects
(the evaluation uses multiples of 8-GPU ``p4de.24xlarge`` instances, but the
scheduling algorithms are agnostic to node boundaries).  Pools may be
heterogeneous: each GPU carries its own
:class:`~repro.gpu.geometry.PartitionGeometry`, so one cluster can mix
MIG-partitioned A100s with XCD-partitioned MI300Xs.  It also implements
the SIII-F deployment path: given a new target allocation map, compute the
minimal set of instance creations/destructions so that services whose
placement is unchanged are not disturbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.gpu.geometry import PartitionGeometry
from repro.gpu.gpu import GPU, GPUError, Instance
from repro.gpu.mig import MIG_GEOMETRY


@dataclass(frozen=True)
class InstanceSpec:
    """Target description of one instance: where, how big, who owns it."""

    gpu_id: int
    size: int
    start: int
    owner: str
    num_processes: int = 1
    batch_size: int = 1
    geometry: str = "mig"  #: partition-geometry registry name of the device


@dataclass
class ReconfigurationPlan:
    """Diff between the running state and a target allocation map."""

    destroy: list[tuple[int, tuple[int, int, str]]] = field(default_factory=list)
    create: list[InstanceSpec] = field(default_factory=list)
    unchanged: list[InstanceSpec] = field(default_factory=list)

    @property
    def num_operations(self) -> int:
        return len(self.destroy) + len(self.create)

    @property
    def is_noop(self) -> bool:
        return self.num_operations == 0


class Cluster:
    """An elastic pool of partitionable GPUs (MIG-capable by default)."""

    def __init__(
        self, num_gpus: int = 0, geometry: PartitionGeometry = MIG_GEOMETRY
    ) -> None:
        self.default_geometry = geometry
        self._gpus: list[GPU] = [
            GPU(i, geometry=geometry) for i in range(num_gpus)
        ]

    # ------------------------------------------------------------------ #
    # pool management
    # ------------------------------------------------------------------ #

    @property
    def gpus(self) -> tuple[GPU, ...]:
        return tuple(self._gpus)

    def __len__(self) -> int:
        return len(self._gpus)

    def gpu(self, gpu_id: int) -> GPU:
        try:
            return self._gpus[gpu_id]
        except IndexError:
            raise GPUError(f"no GPU with id {gpu_id}") from None

    def add_gpu(self, geometry: Optional[PartitionGeometry] = None) -> GPU:
        """Grow the pool by one GPU (cloud elasticity).

        ``geometry`` defaults to the cluster's default; passing another
        geometry builds a heterogeneous pool.
        """
        g = GPU(len(self._gpus), geometry=geometry or self.default_geometry)
        self._gpus.append(g)
        return g

    def ensure_capacity(self, num_gpus: int) -> None:
        while len(self._gpus) < num_gpus:
            self.add_gpu()

    def geometries(self) -> tuple[str, ...]:
        """Distinct geometry names present in the pool, sorted."""
        return tuple(sorted({g.geometry.name for g in self._gpus}))

    def used_gpu_count(self) -> int:
        """GPUs hosting at least one instance — the paper's Fig. 5 metric."""
        return sum(1 for g in self._gpus if not g.is_empty)

    def instances(self) -> Iterable[tuple[GPU, Instance]]:
        for g in self._gpus:
            for inst in g.instances:
                yield g, inst

    def instances_of(self, owner: str) -> list[tuple[GPU, Instance]]:
        return [(g, i) for g, i in self.instances() if i.owner == owner]

    # ------------------------------------------------------------------ #
    # deployment
    # ------------------------------------------------------------------ #

    def apply_specs(self, specs: Iterable[InstanceSpec]) -> list[Instance]:
        """Instantiate a full allocation map onto an empty cluster.

        GPUs created to host a spec take the spec's geometry, so a
        heterogeneous placement materializes a heterogeneous pool; a spec
        targeting an existing GPU of another geometry is an error.
        """
        from repro.gpu.geometry import get_geometry

        created: list[Instance] = []
        for spec in specs:
            self.ensure_capacity(spec.gpu_id)  # default-geometry gap fill
            if len(self._gpus) == spec.gpu_id:
                self.add_gpu(geometry=get_geometry(spec.geometry))
            g = self.gpu(spec.gpu_id)
            if g.geometry.name != get_geometry(spec.geometry).name:
                raise GPUError(
                    f"GPU {spec.gpu_id} is {g.geometry.name}; spec wants "
                    f"{spec.geometry}"
                )
            inst = g.create_instance(spec.size, spec.start, owner=spec.owner)
            for _ in range(spec.num_processes):
                inst.mps.launch(spec.owner)
            created.append(inst)
        return created

    def plan_reconfiguration(
        self, target: Iterable[InstanceSpec]
    ) -> ReconfigurationPlan:
        """Diff running instances against ``target`` (SIII-F update path).

        Instances matching a target spec exactly (gpu, start, size, owner)
        stay untouched; everything else is destroyed/created.  The paper
        keeps unchanged services live during reconfiguration, so minimizing
        the diff minimizes service disruption.
        """
        plan = ReconfigurationPlan()
        target = list(target)
        running: dict[tuple[int, int, int, str], InstanceSpec] = {}
        matched: set[tuple[int, int, int, str]] = set()
        for spec in target:
            running[(spec.gpu_id, spec.start, spec.size, spec.owner)] = spec

        for g in self._gpus:
            for inst in g.instances:
                key = (g.gpu_id, inst.start, inst.size, inst.owner or "")
                if key in running and key not in matched:
                    matched.add(key)
                    plan.unchanged.append(running[key])
                else:
                    plan.destroy.append(
                        (g.gpu_id, (inst.start, inst.size, inst.owner or ""))
                    )
        for spec in target:
            key = (spec.gpu_id, spec.start, spec.size, spec.owner)
            if key not in matched:
                plan.create.append(spec)
        return plan

    def execute(self, plan: ReconfigurationPlan) -> None:
        """Apply a reconfiguration plan to the live cluster."""
        for gpu_id, (start, size, owner) in plan.destroy:
            g = self.gpu(gpu_id)
            for inst in g.instances:
                if (inst.start, inst.size, inst.owner or "") == (start, size, owner):
                    g.destroy_instance(inst)
                    break
            else:  # pragma: no cover - defensive
                raise GPUError(
                    f"plan refers to missing instance {size}@{start} on GPU {gpu_id}"
                )
        self.apply_specs(plan.create)

    def clear(self) -> None:
        for g in self._gpus:
            g.destroy_all()

    def snapshot(self) -> tuple[tuple[int, tuple[tuple[int, int, Optional[str]], ...]], ...]:
        return tuple((g.gpu_id, g.snapshot()) for g in self._gpus)
