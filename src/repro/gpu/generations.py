"""MIG-capable NVIDIA GPU generations (the paper's Discussion section).

"All NVIDIA GPUs adopting MIG across the Ampere, Hopper, and latest
Blackwell architectures maintain identical MIG configurations" — *within
the NVIDIA line*, the 19 layouts and slot rules of :mod:`repro.gpu.mig`
are generation-invariant; what changes is the framebuffer behind each
instance size.  (The invariance does **not** extend across vendors: AMD's
MI300X partitions by device-wide XCD modes instead — see
:mod:`repro.gpu.amd` — which is exactly why the scheduling layers consume
a :class:`~repro.gpu.geometry.PartitionGeometry` rather than the MIG
tables directly.)  This module captures the NVIDIA memory maps so the
feasibility of spatial sharing (notably the Discussion's LLM argument: a
7 GB LLaMA fits a 1g slice of an H200 but not of an A100-40GB) can be
studied quantitatively, and derives a per-generation geometry via
:func:`geometry_for_generation`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.gpu.geometry import PartitionGeometry, register_geometry
from repro.gpu.mig import INSTANCE_SIZES, MIG_GEOMETRY


@dataclass(frozen=True)
class GPUGeneration:
    """One MIG-capable GPU model."""

    name: str
    architecture: str
    total_memory_gb: int
    memory_map: dict[int, float]  #: instance size -> framebuffer GB

    def __post_init__(self) -> None:
        if set(self.memory_map) != set(INSTANCE_SIZES):
            raise ValueError(f"{self.name}: memory map must cover {INSTANCE_SIZES}")
        if self.memory_map[7] != self.total_memory_gb:
            raise ValueError(f"{self.name}: 7-GPC instance owns the whole board")

    def instance_memory_gb(self, size: int) -> float:
        try:
            return self.memory_map[size]
        except KeyError:
            raise ValueError(f"no MIG profile of size {size}") from None

    def feasible_sizes(self, required_gb: float) -> tuple[int, ...]:
        """Instance sizes whose framebuffer fits ``required_gb``."""
        return tuple(
            s for s in INSTANCE_SIZES if self.memory_map[s] >= required_gb
        )


def _gen(name: str, arch: str, total: int, per_slice: float) -> GPUGeneration:
    return GPUGeneration(
        name=name,
        architecture=arch,
        total_memory_gb=total,
        memory_map={
            1: per_slice,
            2: 2 * per_slice,
            3: 4 * per_slice,  # 3-GPC instances own 4 memory slices
            4: 4 * per_slice,
            7: float(total),
        },
    )


#: The MIG-capable generations named in the paper (SII-B + Discussion).
GENERATIONS: dict[str, GPUGeneration] = {
    g.name: g
    for g in (
        _gen("a100-40gb", "ampere", 40, 5.0),
        _gen("a100-80gb", "ampere", 80, 10.0),
        _gen("h100-80gb", "hopper", 80, 10.0),
        _gen("h200-141gb", "hopper", 141, 141 / 8),
        _gen("b200-192gb", "blackwell", 192, 24.0),
    )
}

#: The evaluation's hardware (p4de.24xlarge => A100-80GB).
DEFAULT_GENERATION = "a100-80gb"


def get_generation(name: str) -> GPUGeneration:
    try:
        return GENERATIONS[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(GENERATIONS))
        raise KeyError(f"unknown GPU generation {name!r}; known: {known}") from None


#: Derived per-generation geometries, built (and registered) on demand.
_GENERATION_GEOMETRIES: dict[str, PartitionGeometry] = {}


def geometry_for_generation(name: str) -> PartitionGeometry:
    """A MIG-rules :class:`PartitionGeometry` with ``name``'s memory map.

    Placement rules, slot preferences and slice count are identical across
    NVIDIA generations; only the framebuffer per instance size moves.  The
    derived geometry is registered in the geometry registry (as e.g.
    ``"mig-h200-141gb"``) so geometry-tagged placements can resolve it.
    """
    gen = get_generation(name)
    if gen.name == DEFAULT_GENERATION:
        return MIG_GEOMETRY
    if gen.name not in _GENERATION_GEOMETRIES:
        # Registered under "mig-<generation>" only — no aliases, so the
        # pre-existing generation-name aliases keep resolving to the
        # default MIG geometry regardless of call order.
        _GENERATION_GEOMETRIES[gen.name] = register_geometry(
            replace(
                MIG_GEOMETRY,
                name=f"mig-{gen.name}",
                memory_map=dict(gen.memory_map),
                profile_names={
                    s: f"{s}g.{gen.memory_map[s]:.0f}gb" for s in INSTANCE_SIZES
                },
            )
        )
    return _GENERATION_GEOMETRIES[gen.name]
