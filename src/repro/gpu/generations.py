"""MIG-capable GPU generations (the paper's Discussion section).

"All NVIDIA GPUs adopting MIG across the Ampere, Hopper, and latest
Blackwell architectures maintain identical MIG configurations" — the 19
layouts and slot rules of :mod:`repro.gpu.mig` are generation-invariant;
what changes is the framebuffer behind each instance size.  This module
captures those memory maps so the feasibility of spatial sharing (notably
the Discussion's LLM argument: a 7 GB LLaMA fits a 1g slice of an H200 but
not of an A100-40GB) can be studied quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.mig import INSTANCE_SIZES


@dataclass(frozen=True)
class GPUGeneration:
    """One MIG-capable GPU model."""

    name: str
    architecture: str
    total_memory_gb: int
    memory_map: dict[int, float]  #: instance size -> framebuffer GB

    def __post_init__(self) -> None:
        if set(self.memory_map) != set(INSTANCE_SIZES):
            raise ValueError(f"{self.name}: memory map must cover {INSTANCE_SIZES}")
        if self.memory_map[7] != self.total_memory_gb:
            raise ValueError(f"{self.name}: 7-GPC instance owns the whole board")

    def instance_memory_gb(self, size: int) -> float:
        try:
            return self.memory_map[size]
        except KeyError:
            raise ValueError(f"no MIG profile of size {size}") from None

    def feasible_sizes(self, required_gb: float) -> tuple[int, ...]:
        """Instance sizes whose framebuffer fits ``required_gb``."""
        return tuple(
            s for s in INSTANCE_SIZES if self.memory_map[s] >= required_gb
        )


def _gen(name: str, arch: str, total: int, per_slice: float) -> GPUGeneration:
    return GPUGeneration(
        name=name,
        architecture=arch,
        total_memory_gb=total,
        memory_map={
            1: per_slice,
            2: 2 * per_slice,
            3: 4 * per_slice,  # 3-GPC instances own 4 memory slices
            4: 4 * per_slice,
            7: float(total),
        },
    )


#: The MIG-capable generations named in the paper (SII-B + Discussion).
GENERATIONS: dict[str, GPUGeneration] = {
    g.name: g
    for g in (
        _gen("a100-40gb", "ampere", 40, 5.0),
        _gen("a100-80gb", "ampere", 80, 10.0),
        _gen("h100-80gb", "hopper", 80, 10.0),
        _gen("h200-141gb", "hopper", 141, 141 / 8),
        _gen("b200-192gb", "blackwell", 192, 24.0),
    )
}

#: The evaluation's hardware (p4de.24xlarge => A100-80GB).
DEFAULT_GENERATION = "a100-80gb"


def get_generation(name: str) -> GPUGeneration:
    try:
        return GENERATIONS[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(GENERATIONS))
        raise KeyError(f"unknown GPU generation {name!r}; known: {known}") from None
