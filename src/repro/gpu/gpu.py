"""A single partitionable GPU: slice slots plus instance lifecycle.

A :class:`GPU` owns a :class:`~repro.gpu.geometry.PartitionLayout` for its
:class:`~repro.gpu.geometry.PartitionGeometry` (NVIDIA MIG by default) and
associates every placed instance with an owner tag (a service id in the
scheduler layers) and an :class:`~repro.gpu.mps.MPSContext`.  The class is
purely mechanical: it enforces partition legality but applies *no
placement policy* — slot-preference logic lives in the Segment Allocator
where the paper specifies it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.gpu.geometry import (
    PartitionGeometry,
    PartitionLayout,
    PlacedPartition,
)
from repro.gpu.mig import MIG_GEOMETRY, SMS_PER_GPC
from repro.gpu.mps import MPSContext
from repro.gpu.slices import (
    NUM_SLICES,
    full_mask,
    largest_free_run,
    popcount,
    slice_indices,
)

#: Usable SMs on a fully-MIG-partitioned A100 (98 = 14 SMs x 7 GPCs).
SMS_PER_GPU = SMS_PER_GPC * NUM_SLICES


class GPUError(RuntimeError):
    """Raised on illegal instance operations."""


@dataclass
class Instance:
    """A live partition instance on a specific GPU."""

    placed: PlacedPartition
    owner: Optional[str] = None  #: service id occupying the instance
    mps: MPSContext = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.mps is None:
            self.mps = MPSContext()

    @property
    def size(self) -> int:
        return self.placed.size

    @property
    def start(self) -> int:
        return self.placed.start

    @property
    def sm_count(self) -> int:
        return self.placed.size * self.placed.geometry.sms_per_slice


class GPU:
    """One partitionable GPU (MIG-enabled A100-class by default)."""

    def __init__(
        self, gpu_id: int, geometry: PartitionGeometry = MIG_GEOMETRY
    ) -> None:
        self.gpu_id = gpu_id
        self.geometry = geometry
        self._layout = PartitionLayout(geometry)
        self._instances: list[Instance] = []

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def instances(self) -> tuple[Instance, ...]:
        return tuple(self._instances)

    @property
    def layout(self) -> PartitionLayout:
        return self._layout

    @property
    def occupied_mask(self) -> int:
        return self._layout.mask

    @property
    def used_gpcs(self) -> int:
        """Slices of compute allocated to instances (excludes blocked)."""
        return self._layout.used_gpcs

    @property
    def free_gpcs(self) -> int:
        """Slices neither occupied nor blocked."""
        return self.geometry.num_slices - popcount(
            self._layout.mask, num_slices=self.geometry.num_slices
        )

    @property
    def is_empty(self) -> bool:
        return not self._instances

    def free_slice_indices(self) -> tuple[int, ...]:
        n = self.geometry.num_slices
        return slice_indices(full_mask(n) & ~self._layout.mask, num_slices=n)

    def largest_free_run(self) -> int:
        return largest_free_run(
            self._layout.mask, num_slices=self.geometry.num_slices
        )

    def can_place(self, size: int, start: Optional[int] = None) -> bool:
        """Whether an instance of ``size`` fits (at ``start`` or anywhere)."""
        if size not in self.geometry.instance_sizes:
            return False
        legal = self.geometry.legal_starts(size)
        starts = (start,) if start is not None else legal
        return any(
            s in legal and self._layout.can_add(size, s) for s in starts
        )

    def feasible_starts(self, size: int) -> tuple[int, ...]:
        """All start slots currently legal for an instance of ``size``."""
        return tuple(
            s
            for s in self.geometry.legal_starts(size)
            if self._layout.can_add(size, s)
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def create_instance(
        self, size: int, start: int, owner: Optional[str] = None
    ) -> Instance:
        """Create a partition instance; raises :class:`GPUError` when illegal."""
        if size not in self.geometry.instance_sizes:
            raise GPUError(f"no {self.geometry.name} profile of size {size}")
        if start not in self.geometry.legal_starts(size):
            raise GPUError(f"size-{size} instance may not start at slot {start}")
        if not self._layout.can_add(size, start):
            raise GPUError(
                f"GPU {self.gpu_id}: slices "
                f"{slice_indices(self.geometry.occupied_mask(size, start), num_slices=self.geometry.num_slices)}"
                f" not free"
            )
        placed = self.geometry.place(size, start)
        self._layout.add(placed)
        inst = Instance(placed=placed, owner=owner)
        self._instances.append(inst)
        return inst

    def destroy_instance(self, inst: Instance) -> None:
        """Tear an instance down, freeing its slices."""
        try:
            self._instances.remove(inst)
        except ValueError:
            raise GPUError(
                f"instance {inst.placed} does not live on GPU {self.gpu_id}"
            ) from None
        inst.mps.terminate_all()
        self._layout.remove(inst.placed)

    def destroy_all(self) -> None:
        for inst in list(self._instances):
            self.destroy_instance(inst)

    def instances_of(self, owner: str) -> tuple[Instance, ...]:
        return tuple(i for i in self._instances if i.owner == owner)

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> tuple[tuple[int, int, Optional[str]], ...]:
        """Hashable ``(start, size, owner)`` description, sorted by start."""
        return tuple(
            sorted((i.start, i.size, i.owner) for i in self._instances)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ",".join(f"{i.size}@{i.start}" for i in self._instances)
        return f"GPU({self.gpu_id}: {body or 'empty'})"


def total_sms(gpus: Iterable[GPU]) -> int:
    """Aggregate usable SM/CU count of a set of GPUs."""
    return sum(g.geometry.total_sms for g in gpus)
