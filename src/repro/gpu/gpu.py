"""A single MIG-capable GPU: seven GPC slots plus instance lifecycle.

A :class:`GPU` owns a :class:`~repro.gpu.mig.MigLayout` and associates every
placed instance with an owner tag (a service id in the scheduler layers) and
an :class:`~repro.gpu.mps.MPSContext`.  The class is purely mechanical: it
enforces MIG legality but applies *no placement policy* — slot-preference
logic lives in the Segment Allocator where the paper specifies it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.gpu.mig import (
    INSTANCE_SIZES,
    MigLayout,
    PlacedInstance,
    legal_starts,
    occupied_mask,
)
from repro.gpu.mps import MPSContext
from repro.gpu.slices import (
    FULL_MASK,
    NUM_SLICES,
    largest_free_run,
    popcount,
    slice_indices,
)

#: SMs per GPC on GA100 (108 SMs / 7 GPCs is not integral on the real die;
#: the A100 exposes 98 usable SMs under MIG = 14 per GPC slice, which is the
#: number DCGM-style accounting needs).
SMS_PER_GPC = 14

#: Usable SMs on a fully-MIG-partitioned A100.
SMS_PER_GPU = SMS_PER_GPC * NUM_SLICES


class GPUError(RuntimeError):
    """Raised on illegal instance operations."""


@dataclass
class Instance:
    """A live MIG instance on a specific GPU."""

    placed: PlacedInstance
    owner: Optional[str] = None  #: service id occupying the instance
    mps: MPSContext = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.mps is None:
            self.mps = MPSContext()

    @property
    def size(self) -> int:
        return self.placed.size

    @property
    def start(self) -> int:
        return self.placed.start

    @property
    def sm_count(self) -> int:
        return self.placed.size * SMS_PER_GPC


class GPU:
    """One MIG-enabled A100-class GPU."""

    def __init__(self, gpu_id: int) -> None:
        self.gpu_id = gpu_id
        self._layout = MigLayout()
        self._instances: list[Instance] = []

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def instances(self) -> tuple[Instance, ...]:
        return tuple(self._instances)

    @property
    def layout(self) -> MigLayout:
        return self._layout

    @property
    def occupied_mask(self) -> int:
        return self._layout.mask

    @property
    def used_gpcs(self) -> int:
        """GPCs of compute allocated to instances (excludes blocked slices)."""
        return self._layout.used_gpcs

    @property
    def free_gpcs(self) -> int:
        """Slices neither occupied nor blocked."""
        return NUM_SLICES - popcount(self._layout.mask)

    @property
    def is_empty(self) -> bool:
        return not self._instances

    def free_slice_indices(self) -> tuple[int, ...]:
        return slice_indices(FULL_MASK & ~self._layout.mask)

    def largest_free_run(self) -> int:
        return largest_free_run(self._layout.mask)

    def can_place(self, size: int, start: Optional[int] = None) -> bool:
        """Whether an instance of ``size`` fits (at ``start`` or anywhere)."""
        starts = (start,) if start is not None else legal_starts(size)
        return any(
            s in legal_starts(size) and self._layout.can_add(size, s)
            for s in starts
        )

    def feasible_starts(self, size: int) -> tuple[int, ...]:
        """All start slots currently legal for an instance of ``size``."""
        return tuple(
            s for s in legal_starts(size) if self._layout.can_add(size, s)
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def create_instance(
        self, size: int, start: int, owner: Optional[str] = None
    ) -> Instance:
        """Create a MIG instance; raises :class:`GPUError` when illegal."""
        if size not in INSTANCE_SIZES:
            raise GPUError(f"no MIG profile of size {size}")
        if start not in legal_starts(size):
            raise GPUError(f"size-{size} instance may not start at slot {start}")
        if not self._layout.can_add(size, start):
            raise GPUError(
                f"GPU {self.gpu_id}: slices "
                f"{slice_indices(occupied_mask(size, start))} not free"
            )
        placed = PlacedInstance(size, start)
        self._layout.add(placed)
        inst = Instance(placed=placed, owner=owner)
        self._instances.append(inst)
        return inst

    def destroy_instance(self, inst: Instance) -> None:
        """Tear an instance down, freeing its slices."""
        try:
            self._instances.remove(inst)
        except ValueError:
            raise GPUError(
                f"instance {inst.placed} does not live on GPU {self.gpu_id}"
            ) from None
        inst.mps.terminate_all()
        self._layout.remove(inst.placed)

    def destroy_all(self) -> None:
        for inst in list(self._instances):
            self.destroy_instance(inst)

    def instances_of(self, owner: str) -> tuple[Instance, ...]:
        return tuple(i for i in self._instances if i.owner == owner)

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> tuple[tuple[int, int, Optional[str]], ...]:
        """Hashable ``(start, size, owner)`` description, sorted by start."""
        return tuple(
            sorted((i.start, i.size, i.owner) for i in self._instances)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ",".join(f"{i.size}@{i.start}" for i in self._instances)
        return f"GPU({self.gpu_id}: {body or 'empty'})"


def total_sms(gpus: Iterable[GPU]) -> int:
    """Aggregate usable SM count of a set of GPUs."""
    return sum(SMS_PER_GPU for _ in gpus)
