"""Simulated partitionable-GPU substrate: NVIDIA MIG + MPS, AMD MI300X XCDs.

This package reproduces the *mechanical* behaviour of the hardware layer the
paper runs on, generalized behind a pluggable partition-geometry contract:

- :mod:`repro.gpu.slices`   -- compute-slice bitmask arithmetic (any width).
- :mod:`repro.gpu.geometry` -- the :class:`PartitionGeometry` contract,
  generic layouts, and the geometry registry.
- :mod:`repro.gpu.mig`      -- NVIDIA MIG: instance profiles, placement rules,
  and the 19 legal A100 configurations of the paper's Figure 1.
- :mod:`repro.gpu.amd`      -- AMD MI300X: XCD compute-partition modes
  (SPX/DPX/QPX/CPX) and NPS memory interleaving.
- :mod:`repro.gpu.gpu`      -- a single GPU: slice slots, instance lifecycle.
- :mod:`repro.gpu.mps`      -- the MPS control daemon attached to an instance.
- :mod:`repro.gpu.memory`   -- per-instance framebuffer capacity and OOM checks.
- :mod:`repro.gpu.telemetry`-- DCGM-style SM-activity accounting (Eq. 3 input).
- :mod:`repro.gpu.cluster`  -- a (possibly heterogeneous) multi-GPU cluster
  with reconfiguration diffs.

Only the *structure* of partitioning is modelled here; the performance of
code running on an instance lives in :mod:`repro.models.perf`.
"""

from repro.gpu.geometry import (
    PartitionGeometry,
    PartitionLayout,
    PlacedPartition,
    available_geometries,
    default_geometry,
    enumerate_layouts,
    get_geometry,
    register_geometry,
)
from repro.gpu.mig import (
    INSTANCE_SIZES,
    InstanceProfile,
    MIG_GEOMETRY,
    MigLayout,
    PROFILES,
    PlacedInstance,
    enumerate_configurations,
    legal_starts,
    occupied_mask,
)
from repro.gpu.amd import MI300X_GEOMETRY, compute_mode_for, legal_memory_modes
from repro.gpu.gpu import GPU, GPUError, NUM_SLICES
from repro.gpu.mps import MPSContext, MPSError
from repro.gpu.memory import MemoryError_, instance_memory_gb, fits_in_memory
from repro.gpu.telemetry import SMActivityTracker, ActivitySample
from repro.gpu.cluster import Cluster, ReconfigurationPlan

__all__ = [
    "PartitionGeometry",
    "PartitionLayout",
    "PlacedPartition",
    "available_geometries",
    "default_geometry",
    "enumerate_layouts",
    "get_geometry",
    "register_geometry",
    "INSTANCE_SIZES",
    "InstanceProfile",
    "MIG_GEOMETRY",
    "MigLayout",
    "PROFILES",
    "PlacedInstance",
    "enumerate_configurations",
    "legal_starts",
    "occupied_mask",
    "MI300X_GEOMETRY",
    "compute_mode_for",
    "legal_memory_modes",
    "GPU",
    "GPUError",
    "NUM_SLICES",
    "MPSContext",
    "MPSError",
    "MemoryError_",
    "instance_memory_gb",
    "fits_in_memory",
    "SMActivityTracker",
    "ActivitySample",
    "Cluster",
    "ReconfigurationPlan",
]
