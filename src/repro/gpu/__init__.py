"""Simulated NVIDIA A100/H100 GPU substrate: MIG partitioning + MPS sharing.

This package reproduces the *mechanical* behaviour of the hardware layer the
paper runs on:

- :mod:`repro.gpu.slices`   -- GPC slice bitmask arithmetic.
- :mod:`repro.gpu.mig`      -- MIG instance profiles, placement rules, and the
  19 legal A100 configurations of the paper's Figure 1.
- :mod:`repro.gpu.gpu`      -- a single GPU: 7 GPC slots, instance lifecycle.
- :mod:`repro.gpu.mps`      -- the MPS control daemon attached to an instance.
- :mod:`repro.gpu.memory`   -- per-instance framebuffer capacity and OOM checks.
- :mod:`repro.gpu.telemetry`-- DCGM-style SM-activity accounting (Eq. 3 input).
- :mod:`repro.gpu.cluster`  -- a multi-GPU cluster with reconfiguration diffs.

Only the *structure* of MIG/MPS is modelled here; the performance of code
running on an instance lives in :mod:`repro.models.perf`.
"""

from repro.gpu.mig import (
    INSTANCE_SIZES,
    InstanceProfile,
    MigLayout,
    PROFILES,
    PlacedInstance,
    enumerate_configurations,
    legal_starts,
    occupied_mask,
)
from repro.gpu.gpu import GPU, GPUError, NUM_SLICES
from repro.gpu.mps import MPSContext, MPSError
from repro.gpu.memory import MemoryError_, instance_memory_gb, fits_in_memory
from repro.gpu.telemetry import SMActivityTracker, ActivitySample
from repro.gpu.cluster import Cluster, ReconfigurationPlan

__all__ = [
    "INSTANCE_SIZES",
    "InstanceProfile",
    "MigLayout",
    "PROFILES",
    "PlacedInstance",
    "enumerate_configurations",
    "legal_starts",
    "occupied_mask",
    "GPU",
    "GPUError",
    "NUM_SLICES",
    "MPSContext",
    "MPSError",
    "MemoryError_",
    "instance_memory_gb",
    "fits_in_memory",
    "SMActivityTracker",
    "ActivitySample",
    "Cluster",
    "ReconfigurationPlan",
]
