"""GPC slice bitmask arithmetic.

An A100-class GPU exposes seven GPC slices (numbered 0..6).  Everything in the
MIG layer reasons about *which slices an instance occupies or blocks*, so we
represent slice sets as 7-bit integers: bit ``i`` set means slice ``i`` is in
the set.  Bitmasks keep the allocator's inner loops allocation-free and make
property-based testing of layout legality cheap.
"""

from __future__ import annotations

from typing import Iterator, Sequence

NUM_SLICES = 7
FULL_MASK = (1 << NUM_SLICES) - 1  # 0b1111111


def mask_of(slices: Sequence[int]) -> int:
    """Build a bitmask from an iterable of slice indices.

    >>> bin(mask_of([0, 2, 3]))
    '0b1101'
    """
    m = 0
    for s in slices:
        if not 0 <= s < NUM_SLICES:
            raise ValueError(f"slice index {s} out of range 0..{NUM_SLICES - 1}")
        m |= 1 << s
    return m


def range_mask(start: int, length: int) -> int:
    """Bitmask of ``length`` contiguous slices beginning at ``start``."""
    if start < 0 or length < 0 or start + length > NUM_SLICES:
        raise ValueError(f"range [{start}, {start + length}) outside 0..{NUM_SLICES}")
    return ((1 << length) - 1) << start


def slice_indices(mask: int) -> tuple[int, ...]:
    """The slice indices present in ``mask``, ascending."""
    return tuple(i for i in range(NUM_SLICES) if mask >> i & 1)


def popcount(mask: int) -> int:
    """Number of slices in ``mask``."""
    return (mask & FULL_MASK).bit_count()


def overlaps(a: int, b: int) -> bool:
    """True when the two slice sets intersect."""
    return bool(a & b)


def is_subset(a: int, b: int) -> bool:
    """True when every slice in ``a`` is also in ``b``."""
    return a & ~b == 0


def free_slices(occupied: int) -> tuple[int, ...]:
    """Indices of slices *not* present in ``occupied``."""
    return slice_indices(FULL_MASK & ~occupied)


def iter_runs(mask: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, length)`` for each maximal run of set bits in ``mask``.

    Useful for reasoning about contiguous free space (external fragmentation
    at the single-GPU granularity).
    """
    i = 0
    while i < NUM_SLICES:
        if mask >> i & 1:
            j = i
            while j < NUM_SLICES and mask >> j & 1:
                j += 1
            yield i, j - i
            i = j
        else:
            i += 1


def largest_free_run(occupied: int) -> int:
    """Length of the largest contiguous free run given ``occupied`` slices."""
    best = 0
    for _, length in iter_runs(FULL_MASK & ~occupied):
        best = max(best, length)
    return best
