"""Compute-slice bitmask arithmetic, shared by every partition geometry.

A partitionable accelerator exposes a small fixed number of compute slices
(seven GPC slices on an A100-class GPU, eight XCDs on an AMD MI300X).
Everything in the partition layer reasons about *which slices an instance
occupies or blocks*, so we represent slice sets as integers: bit ``i`` set
means slice ``i`` is in the set.  Bitmasks keep the allocator's inner loops
allocation-free and make property-based testing of layout legality cheap.

Every helper takes the slice count as a keyword defaulting to
:data:`NUM_SLICES` (the A100's seven GPCs) so the historical MIG call
sites read unchanged; geometries with other slice counts pass their own.
"""

from __future__ import annotations

from typing import Iterator, Sequence

#: GPC slices on an A100-class GPU — the default slice count everywhere.
NUM_SLICES = 7
FULL_MASK = (1 << NUM_SLICES) - 1  # 0b1111111


def full_mask(num_slices: int = NUM_SLICES) -> int:
    """Bitmask with every one of ``num_slices`` slices set."""
    return (1 << num_slices) - 1


def mask_of(slices: Sequence[int], num_slices: int = NUM_SLICES) -> int:
    """Build a bitmask from an iterable of slice indices.

    >>> bin(mask_of([0, 2, 3]))
    '0b1101'
    """
    m = 0
    for s in slices:
        if not 0 <= s < num_slices:
            raise ValueError(f"slice index {s} out of range 0..{num_slices - 1}")
        m |= 1 << s
    return m


def range_mask(start: int, length: int, num_slices: int = NUM_SLICES) -> int:
    """Bitmask of ``length`` contiguous slices beginning at ``start``."""
    if start < 0 or length < 0 or start + length > num_slices:
        raise ValueError(f"range [{start}, {start + length}) outside 0..{num_slices}")
    return ((1 << length) - 1) << start


def slice_indices(mask: int, num_slices: int = NUM_SLICES) -> tuple[int, ...]:
    """The slice indices present in ``mask``, ascending."""
    return tuple(i for i in range(num_slices) if mask >> i & 1)


def popcount(mask: int, num_slices: int = NUM_SLICES) -> int:
    """Number of slices in ``mask``."""
    return (mask & full_mask(num_slices)).bit_count()


def overlaps(a: int, b: int) -> bool:
    """True when the two slice sets intersect."""
    return bool(a & b)


def is_subset(a: int, b: int) -> bool:
    """True when every slice in ``a`` is also in ``b``."""
    return a & ~b == 0


def free_slices(occupied: int, num_slices: int = NUM_SLICES) -> tuple[int, ...]:
    """Indices of slices *not* present in ``occupied``."""
    return slice_indices(full_mask(num_slices) & ~occupied, num_slices)


def iter_runs(mask: int, num_slices: int = NUM_SLICES) -> Iterator[tuple[int, int]]:
    """Yield ``(start, length)`` for each maximal run of set bits in ``mask``.

    Useful for reasoning about contiguous free space (external fragmentation
    at the single-GPU granularity).
    """
    i = 0
    while i < num_slices:
        if mask >> i & 1:
            j = i
            while j < num_slices and mask >> j & 1:
                j += 1
            yield i, j - i
            i = j
        else:
            i += 1


def largest_free_run(occupied: int, num_slices: int = NUM_SLICES) -> int:
    """Length of the largest contiguous free run given ``occupied`` slices."""
    best = 0
    for _, length in iter_runs(full_mask(num_slices) & ~occupied, num_slices):
        best = max(best, length)
    return best
