"""Pluggable partition geometries — the hardware contract behind scheduling.

The paper's segment scheduling is formulated over NVIDIA MIG, but nothing
in Algorithms 1/2 is NVIDIA-specific: they only need to know *how a GPU
partitions*.  A :class:`PartitionGeometry` captures exactly that contract:

- how many compute slices a device exposes (7 GPCs on an A100, 8 XCDs on
  an MI300X) and what a slice is worth relative to an A100 GPC;
- which instance sizes exist and at which start slots they may be created
  (plus any extra slices a placement *blocks*, like MIG's 3g-at-slot-0);
- the framebuffer behind each instance size;
- reconfiguration rules — MIG composes mixed instance sizes freely, while
  AMD compute-partition modes (SPX/DPX/QPX/CPX) apply to the whole device,
  so every partition on one MI300X must have the same size;
- the slot preferences/fallbacks the Segment Allocator should use.

Concrete geometries live next to the hardware they model:
:data:`repro.gpu.mig.MIG_GEOMETRY` (A100/H100-class MIG) and
:data:`repro.gpu.amd.MI300X_GEOMETRY` (MI300X XCD partitioning).  Third
backends register themselves via :func:`register_geometry`; see
``docs/architecture.md`` for a walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.gpu.slices import popcount, range_mask, slice_indices


@dataclass(frozen=True, eq=False)
class PartitionGeometry:
    """Declarative description of one accelerator partitioning scheme.

    Instances are singletons compared by identity; ``name`` is the registry
    key.  All mappings are keyed by instance size (in slices).
    """

    name: str  #: registry key, e.g. ``"mig"`` or ``"mi300x"``
    vendor: str  #: ``"nvidia"`` / ``"amd"``
    kind: str  #: partition kind tag used in placements (``"mig"``/``"xcd"``)
    slice_label: str  #: what one slice is called (``"GPC"`` / ``"XCD"``)
    num_slices: int
    instance_sizes: tuple[int, ...]  #: ascending
    memory_map: Mapping[int, float]  #: size -> framebuffer GB
    profile_names: Mapping[int, str]  #: size -> vendor-tool profile string
    canonical_starts: Mapping[int, tuple[int, ...]]
    extended_starts: Mapping[int, tuple[int, ...]]
    #: (size, start) -> bitmask of slices *blocked in addition to* the
    #: occupied range (MIG: a 3g instance at slot 0 blocks slice 3).
    blocked_extra: Mapping[tuple[int, int], int] = field(default_factory=dict)
    slot_preferences: Mapping[int, tuple[int, ...]] = field(default_factory=dict)
    slot_fallbacks: Mapping[int, tuple[int, ...]] = field(default_factory=dict)
    #: compute units per slice in the vendor's own accounting (SMs per GPC
    #: on GA100, CUs per XCD on MI300X) — drives utilization metrics.
    sms_per_slice: int = 14
    #: compute of one slice expressed in A100-GPC equivalents; lets the
    #: performance model and cross-geometry comparisons share one scale.
    gpc_equiv_per_slice: float = 1.0
    #: when True, every instance on one device must have the same size
    #: (AMD compute-partition modes are device-wide; MIG mixes freely).
    uniform_instance_sizes: bool = False
    #: sizes the Allocation-Optimization stage may split segments into.
    small_sizes: tuple[int, ...] = (1, 2)
    #: largest size the compaction pass will migrate between devices.
    compact_max_size: int = 3

    def __post_init__(self) -> None:
        if self.num_slices < 1:
            raise ValueError(f"{self.name}: need at least one slice")
        if tuple(sorted(self.instance_sizes)) != self.instance_sizes:
            raise ValueError(f"{self.name}: instance sizes must ascend")
        for table in (self.memory_map, self.profile_names,
                      self.canonical_starts, self.extended_starts):
            if set(table) != set(self.instance_sizes):
                raise ValueError(
                    f"{self.name}: tables must cover sizes {self.instance_sizes}"
                )
        # Every legal (size, start) pair's occupied+blocked mask, computed
        # once: occupied_mask sits in the allocator's innermost feasibility
        # probe (can_add), where recomputing range/blocked unions per call
        # dominates fleet-scale scans.  The canonical subset gets its own
        # table so ``can_add(extended=False)`` is the same single dict
        # probe (a miss doubles as the legality answer), and every legal
        # pair gets one shared frozen PlacedPartition so ``place`` at
        # fleet scale stops allocating millions of identical instances.
        masks: dict[tuple[int, int], int] = {}
        for size in self.instance_sizes:
            for start in self.extended_starts[size]:
                base = range_mask(start, size, num_slices=self.num_slices)
                masks[(size, start)] = base | self.blocked_extra.get(
                    (size, start), 0
                )
        object.__setattr__(self, "_occupied_masks", masks)
        canonical = {
            (size, start): masks[(size, start)]
            for size in self.instance_sizes
            for start in self.canonical_starts[size]
            if (size, start) in masks
        }
        object.__setattr__(self, "_canonical_masks", canonical)
        placed = {
            (size, start): PlacedPartition(size=size, start=start, geometry=self)
            for (size, start) in masks
        }
        object.__setattr__(self, "_placed", placed)

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    @property
    def full_mask(self) -> int:
        return (1 << self.num_slices) - 1

    @property
    def whole_gpu_size(self) -> int:
        """The instance size that owns the entire device."""
        return self.instance_sizes[-1]

    @property
    def total_memory_gb(self) -> float:
        return self.memory_map[self.whole_gpu_size]

    @property
    def total_sms(self) -> int:
        return self.sms_per_slice * self.num_slices

    def legal_starts(self, size: int, extended: bool = True) -> tuple[int, ...]:
        """Start slots where an instance of ``size`` slices may be created."""
        table = self.extended_starts if extended else self.canonical_starts
        try:
            return table[size]
        except KeyError:
            raise ValueError(
                f"{self.name}: no partition profile of size {size}"
            ) from None

    def occupied_mask(self, size: int, start: int) -> int:
        """Slice bitmask an instance *occupies plus blocks* at ``start``."""
        mask = self._occupied_masks.get((size, start))
        if mask is not None:
            return mask
        # illegal (size, start) pairs fall back to the direct computation
        # so diagnostic callers still get a well-defined answer
        base = range_mask(start, size, num_slices=self.num_slices)
        return base | self.blocked_extra.get((size, start), 0)

    def can_coexist(self, existing_sizes: tuple[int, ...], size: int) -> bool:
        """Reconfiguration rule: may ``size`` join a device already hosting
        ``existing_sizes`` (mask overlap is checked separately)?"""
        if not self.uniform_instance_sizes or not existing_sizes:
            return True
        return all(s == size for s in existing_sizes)

    def place(self, size: int, start: int) -> "PlacedPartition":
        """Validated placement of one instance (geometry-bound).

        Returns the shared frozen instance for legal pairs; illegal pairs
        fall through to direct construction for its validation error.
        """
        inst = self._placed.get((size, start))
        if inst is not None:
            return inst
        return PlacedPartition(size=size, start=start, geometry=self)

    # ------------------------------------------------------------------ #
    # memory
    # ------------------------------------------------------------------ #

    def instance_memory_gb(self, size: int) -> float:
        try:
            return self.memory_map[size]
        except KeyError:
            raise ValueError(
                f"{self.name}: no partition profile of size {size}; "
                f"sizes are {self.instance_sizes}"
            ) from None

    def fits_in_memory(self, required_gb: float, size: int) -> bool:
        if required_gb < 0:
            raise ValueError("memory requirement must be non-negative")
        return required_gb <= self.instance_memory_gb(size)

    def feasible_sizes(self, required_gb: float) -> tuple[int, ...]:
        """Instance sizes whose framebuffer fits ``required_gb``."""
        return tuple(
            s for s in self.instance_sizes if self.memory_map[s] >= required_gb
        )

    # ------------------------------------------------------------------ #
    # compute accounting
    # ------------------------------------------------------------------ #

    def gpc_equivalent(self, slices: float) -> float:
        """Compute of ``slices`` worth of this geometry, in A100-GPC units."""
        return slices * self.gpc_equiv_per_slice

    def sms_of(self, slices: float) -> float:
        return slices * self.sms_per_slice

    def profile_name(self, size: int) -> str:
        try:
            return self.profile_names[size]
        except KeyError:
            raise ValueError(
                f"{self.name}: no partition profile of size {size}"
            ) from None

    # ------------------------------------------------------------------ #
    # allocator policy
    # ------------------------------------------------------------------ #

    def preferred_slots(self, size: int) -> tuple[int, ...]:
        return self.slot_preferences.get(size, self.legal_starts(size))

    def fallback_slots(self, size: int) -> tuple[int, ...]:
        return self.slot_fallbacks.get(size, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionGeometry({self.name}: {self.num_slices}x"
            f"{self.slice_label}, sizes={self.instance_sizes})"
        )


@dataclass(frozen=True, eq=False)
class PlacedPartition:
    """An instance size pinned to a start slot of a specific geometry."""

    size: int
    start: int
    geometry: PartitionGeometry

    def __post_init__(self) -> None:
        if self.size not in self.geometry.instance_sizes:
            raise ValueError(
                f"no {self.geometry.name} profile of size {self.size}"
            )
        if self.start not in self.geometry.legal_starts(self.size, extended=True):
            raise ValueError(
                f"size-{self.size} instance may not start at slot {self.start}"
            )

    # identity is (size, start, geometry) regardless of subclass, so layout
    # bookkeeping works across PlacedPartition/PlacedInstance mixes.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlacedPartition):
            return NotImplemented
        return (
            self.size == other.size
            and self.start == other.start
            and self.geometry.name == other.geometry.name
        )

    def __hash__(self) -> int:
        return hash((self.size, self.start, self.geometry.name))

    @property
    def mask(self) -> int:
        """Occupied+blocked slice bitmask (memoized — instances are
        shared singletons read on every overlap check)."""
        mask = self.__dict__.get("_mask")
        if mask is None:
            mask = self.geometry.occupied_mask(self.size, self.start)
            object.__setattr__(self, "_mask", mask)
        return mask

    @property
    def slices(self) -> tuple[int, ...]:
        return slice_indices(self.mask, num_slices=self.geometry.num_slices)

    @property
    def memory_gb(self) -> float:
        return self.geometry.instance_memory_gb(self.size)


class PartitionLayout:
    """A set of non-overlapping placed instances on one device.

    The geometry-generic core behind :class:`repro.gpu.mig.MigLayout`; it
    enforces mask disjointness *and* the geometry's coexistence rule (AMD
    devices are single-mode, so mixed sizes are rejected there).
    """

    __slots__ = ("geometry", "_instances", "_mask", "_sizes")

    def __init__(
        self,
        geometry: PartitionGeometry,
        instances: tuple[PlacedPartition, ...] | list[PlacedPartition] = (),
    ) -> None:
        self.geometry = geometry
        self._instances: list[PlacedPartition] = []
        self._mask = 0
        self._sizes: Optional[tuple[int, ...]] = ()
        for inst in instances:
            self.add(inst)

    @property
    def instances(self) -> tuple[PlacedPartition, ...]:
        return tuple(self._instances)

    @property
    def mask(self) -> int:
        """Union of occupied+blocked slices."""
        return self._mask

    @property
    def used_slices(self) -> int:
        """Total slices of *compute* allocated (blocked slices don't count)."""
        return sum(i.size for i in self._instances)

    # historical name from the MIG-only layer; kept as the primary spelling
    # because every caller reads "GPCs" even for non-NVIDIA geometries.
    @property
    def used_gpcs(self) -> int:
        return self.used_slices

    def can_add(self, size: int, start: int, extended: bool = True) -> bool:
        """Whether an instance of ``size`` can be created at ``start``.

        One dict probe answers legality (unknown size or illegal start
        miss the mask table) and yields the occupancy mask; the
        coexistence rule only costs anything on uniform-size geometries.
        """
        geometry = self.geometry
        mask = (
            geometry._occupied_masks if extended else geometry._canonical_masks
        ).get((size, start))
        if mask is None:
            return False
        if geometry.uniform_instance_sizes and not geometry.can_coexist(
            self.sizes(), size
        ):
            return False
        return not self._mask & mask

    def add(self, inst: PlacedPartition) -> None:
        if inst.geometry.name != self.geometry.name:
            raise ValueError(
                f"{inst.geometry.name} instance added to {self.geometry.name} layout"
            )
        if self._mask & inst.mask:
            raise ValueError(f"{inst} overlaps existing instances")
        if self.geometry.uniform_instance_sizes and not self.geometry.can_coexist(
            self.sizes(), inst.size
        ):
            raise ValueError(
                f"{self.geometry.name}: mixed instance sizes on one device "
                f"(existing {self.sizes()}, adding {inst.size})"
            )
        self._instances.append(inst)
        self._mask |= inst.mask
        self._sizes = None

    def remove(self, inst: PlacedPartition) -> None:
        self._instances.remove(inst)
        self._mask = 0
        for other in self._instances:
            self._mask |= other.mask
        self._sizes = None

    def sizes(self) -> tuple[int, ...]:
        """Instance sizes in this layout, descending (cached; can_add and
        the coexistence rule call this on every feasibility probe)."""
        if self._sizes is None:
            self._sizes = tuple(
                sorted((i.size for i in self._instances), reverse=True)
            )
        return self._sizes

    def signature(self) -> tuple[tuple[int, int], ...]:
        """Canonical ``(start, size)`` tuple — hashable layout identity."""
        return tuple(sorted((i.start, i.size) for i in self._instances))

    def is_maximal(self, extended: bool = False) -> bool:
        """True when no further instance of any size can be added."""
        for size in self.geometry.instance_sizes:
            for start in self.geometry.legal_starts(size, extended=extended):
                if self.can_add(size, start, extended=extended):
                    return False
        return True

    def free_slice_count(self) -> int:
        return self.geometry.num_slices - popcount(
            self._mask, num_slices=self.geometry.num_slices
        )

    def __len__(self) -> int:
        return len(self._instances)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = "+".join(str(s) for s in self.sizes()) or "empty"
        return f"PartitionLayout({self.geometry.name}: {parts})"


def enumerate_layouts(
    geometry: PartitionGeometry, extended: bool = False
) -> list[PartitionLayout]:
    """Every maximal layout of ``geometry`` under its canonical rules.

    The DFS that regenerates the paper's Figure 1 for MIG (19 layouts), and
    the four device-wide modes (SPX/DPX/QPX/CPX) for an MI300X.
    """
    seen: set[tuple[tuple[int, int], ...]] = set()
    results: list[PartitionLayout] = []

    def dfs(layout: PartitionLayout) -> None:
        if layout.is_maximal(extended=extended):
            sig = layout.signature()
            if sig not in seen:
                seen.add(sig)
                results.append(PartitionLayout(geometry, layout.instances))
            return
        for size in sorted(geometry.instance_sizes, reverse=True):
            for start in geometry.legal_starts(size, extended=extended):
                if layout.can_add(size, start, extended=extended):
                    inst = geometry.place(size, start)
                    layout.add(inst)
                    dfs(layout)
                    layout.remove(inst)

    dfs(PartitionLayout(geometry))
    results.sort(key=lambda l: tuple(-s for s in l.sizes()))
    return results


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #

_REGISTRY: dict[str, PartitionGeometry] = {}
_ALIASES: dict[str, str] = {}
#: Raw-name -> geometry memo over successful lookups.  ``get_geometry``
#: sits under every PlacedSegment construction (millions per fleet-scale
#: re-plan), where the strip/lower/alias walk itself is measurable.
_RESOLVED: dict[str, PartitionGeometry] = {}


def register_geometry(
    geometry: PartitionGeometry, aliases: tuple[str, ...] = ()
) -> PartitionGeometry:
    """Register a geometry (and optional alias names) for lookup by name."""
    _REGISTRY[geometry.name] = geometry
    for alias in aliases:
        _ALIASES[alias.lower()] = geometry.name
    _RESOLVED.clear()  # re-registration may rebind names
    return geometry


def _ensure_builtins() -> None:
    # Imported lazily so geometry.py stays dependency-free: mig.py and
    # amd.py each register themselves at import time.
    import repro.gpu.mig  # noqa: F401
    import repro.gpu.amd  # noqa: F401


def get_geometry(name: str) -> PartitionGeometry:
    """Look a geometry up by registry name or alias (case-insensitive).

    Derived NVIDIA-generation geometries (``"mig-<generation>"``, e.g.
    ``"mig-h200-141gb"``) are materialized on demand, so a geometry-tagged
    placement deserialized in a fresh process still resolves.
    """
    cached = _RESOLVED.get(name)
    if cached is not None:
        return cached
    _ensure_builtins()
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY and key.startswith("mig-"):
        from repro.gpu.generations import GENERATIONS, geometry_for_generation

        if key[len("mig-"):] in GENERATIONS:
            geometry = geometry_for_generation(key[len("mig-"):])
            _RESOLVED[name] = geometry
            return geometry
    try:
        geometry = _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown partition geometry {name!r}; known: {known}"
        ) from None
    _RESOLVED[name] = geometry
    return geometry


def available_geometries() -> tuple[str, ...]:
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def default_geometry() -> PartitionGeometry:
    """The A100-class MIG geometry the paper evaluates on."""
    return get_geometry("mig")
