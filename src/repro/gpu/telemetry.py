"""DCGM-style SM-activity accounting.

The paper's Eq. 3 defines internal slack from *SM activity*: a kernel using
all ``M`` SMs of its partition for the whole interval scores 1.0; one using
``M/5`` blocks, or all ``M`` for a fifth of the time, scores 0.2.  The
discrete-event simulator reports exact busy SM-time per segment; this module
turns those reports into activity ratios the metrics layer consumes —
exactly what ``DCGM_FI_PROF_SM_ACTIVE`` approximates on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ActivitySample:
    """SM activity of one segment over an observation window."""

    segment_key: str  #: opaque id (service/gpu/instance) chosen by the caller
    sm_count: int  #: SMs allocated to the segment
    busy_sm_time: float  #: integral of (active SMs x time), SM-seconds
    window: float  #: observation window length, seconds

    @property
    def activity(self) -> float:
        """Fraction of the allocated SM-time that was busy, in [0, 1]."""
        if self.window <= 0 or self.sm_count <= 0:
            return 0.0
        return min(1.0, self.busy_sm_time / (self.sm_count * self.window))


@dataclass
class SMActivityTracker:
    """Accumulates busy SM-time per segment during a simulation run."""

    window_start: float = 0.0
    _busy: dict[str, float] = field(default_factory=dict)
    _sm_counts: dict[str, int] = field(default_factory=dict)

    def register(self, segment_key: str, sm_count: int) -> None:
        """Declare a segment and its SM allocation before recording."""
        if sm_count <= 0:
            raise ValueError("segment must own at least one SM")
        self._sm_counts[segment_key] = sm_count
        self._busy.setdefault(segment_key, 0.0)

    def record_busy(
        self, segment_key: str, duration: float, active_fraction: float = 1.0
    ) -> None:
        """Add ``duration`` seconds of kernel time at ``active_fraction`` occupancy."""
        if segment_key not in self._sm_counts:
            raise KeyError(f"segment {segment_key!r} was never registered")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        if not 0.0 <= active_fraction <= 1.0:
            raise ValueError("active_fraction must be in [0, 1]")
        self._busy[segment_key] += (
            duration * active_fraction * self._sm_counts[segment_key]
        )

    def sample(self, segment_key: str, now: float) -> ActivitySample:
        """Snapshot one segment's activity over ``[window_start, now]``."""
        return ActivitySample(
            segment_key=segment_key,
            sm_count=self._sm_counts[segment_key],
            busy_sm_time=self._busy[segment_key],
            window=now - self.window_start,
        )

    def samples(self, now: float) -> list[ActivitySample]:
        """Snapshots for every registered segment."""
        return [self.sample(key, now) for key in sorted(self._sm_counts)]

    def reset(self, now: float = 0.0) -> None:
        """Start a fresh observation window at time ``now``."""
        self.window_start = now
        for key in self._busy:
            self._busy[key] = 0.0
