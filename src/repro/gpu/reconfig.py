"""MIG/MPS reconfiguration cost model and the shadow-process strategy.

SIII-F: "reconfiguration of MIG and MPS ... can range from milliseconds to
a few seconds" and services being reconfigured "can continue operating
using shadow processes on spare GPUs".  This module prices a
:class:`~repro.gpu.cluster.ReconfigurationPlan`:

- without shadows, every service whose instances are destroyed/created is
  briefly down for the duration of its MIG/MPS operations;
- with shadows, affected services keep serving on spare GPUs during the
  swap — zero downtime at the cost of temporarily renting extra GPUs.

Costs default to the ranges NVIDIA's tooling exhibits on Ampere: tearing
an instance down is fast, creating one plus spawning its MPS daemon and
loading model weights dominates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.gpu.cluster import ReconfigurationPlan

#: seconds per MIG instance destruction
DESTROY_COST_S = 0.2

#: seconds per MIG instance creation (incl. MPS daemon start)
CREATE_COST_S = 1.0

#: seconds per serving process launch (CUDA context + weight load)
PROCESS_LAUNCH_COST_S = 2.0


@dataclass(frozen=True)
class ReconfigurationCost:
    """Priced reconfiguration: total work and per-service downtime."""

    total_work_s: float  #: serial MIG/MPS operation time
    downtime_s: Mapping[str, float]  #: per-service serving gap (no shadows)
    shadow_gpus: int  #: spare GPUs needed for a zero-downtime swap

    @property
    def max_downtime_s(self) -> float:
        return max(self.downtime_s.values(), default=0.0)

    @property
    def disrupted_services(self) -> tuple[str, ...]:
        return tuple(sorted(s for s, d in self.downtime_s.items() if d > 0))

    @classmethod
    def combine(cls, costs: "Sequence[ReconfigurationCost]") -> "ReconfigurationCost":
        """Aggregate sequential reconfigurations into one cost.

        Work and per-service downtime sum (the operations serialize);
        shadow demand is the *max* concurrent need, since each swap's
        spares are released before the next begins.  The single home of
        this arithmetic — the autoscaler's per-epoch batches and the
        fleet controller's per-interval batches both combine here.
        """
        return cls(
            total_work_s=sum(c.total_work_s for c in costs),
            downtime_s={
                sid: sum(c.downtime_s.get(sid, 0.0) for c in costs)
                for sid in sorted({k for c in costs for k in c.downtime_s})
            },
            shadow_gpus=max((c.shadow_gpus for c in costs), default=0),
        )


def price_plan(
    plan: ReconfigurationPlan,
    destroy_cost_s: float = DESTROY_COST_S,
    create_cost_s: float = CREATE_COST_S,
    process_cost_s: float = PROCESS_LAUNCH_COST_S,
) -> ReconfigurationCost:
    """Price a reconfiguration plan.

    Downtime accrues per service: each destroyed instance interrupts its
    owner until the replacement instance (and its processes) are up; the
    per-service downtime is the sum of its own operations, since GPU
    reconfiguration on one device serializes.  Unchanged instances cost
    nothing — the SIII-F argument for minimizing the diff.
    """
    downtime: dict[str, float] = {}
    total = 0.0
    for _, (_, _, owner) in plan.destroy:
        downtime[owner] = downtime.get(owner, 0.0) + destroy_cost_s
        total += destroy_cost_s
    for spec in plan.create:
        cost = create_cost_s + process_cost_s * spec.num_processes
        downtime[spec.owner] = downtime.get(spec.owner, 0.0) + cost
        total += cost
    for spec in plan.unchanged:
        downtime.setdefault(spec.owner, 0.0)

    # A zero-downtime swap shadows every disrupted service's *new* segments
    # on spare GPUs; the spare count is the slice-weight of created
    # instances rounded up to whole GPUs, computed per geometry (7 GPC
    # slices on a MIG A100, 8 XCDs on an MI300X) since a shadow device
    # must match the hardware it stands in for.
    from repro.gpu.geometry import get_geometry

    created_by_geometry: dict[str, int] = {}
    for spec in plan.create:
        created_by_geometry[spec.geometry] = (
            created_by_geometry.get(spec.geometry, 0) + spec.size
        )
    shadow_gpus = sum(
        -(-gpcs // get_geometry(name).num_slices)
        for name, gpcs in created_by_geometry.items()
        if gpcs
    )

    return ReconfigurationCost(
        total_work_s=total,
        downtime_s=downtime,
        shadow_gpus=shadow_gpus,
    )


@dataclass
class ShadowBudget:
    """Tracks spare-GPU usage across a sequence of reconfigurations."""

    spare_gpus: int
    peak_used: int = 0
    events: list[tuple[float, int]] = field(default_factory=list)

    def admit(self, when_s: float, cost: ReconfigurationCost) -> bool:
        """Can this reconfiguration run with zero downtime right now?"""
        ok = cost.shadow_gpus <= self.spare_gpus
        if ok:
            self.peak_used = max(self.peak_used, cost.shadow_gpus)
            self.events.append((when_s, cost.shadow_gpus))
        return ok
