"""``parvagpu`` command-line interface.

Subcommands:

- ``parvagpu schedule --scenario S2 [--framework parvagpu]`` — schedule a
  Table-IV scenario and print the deployment map + headline metrics.
- ``parvagpu experiment fig5 [fig6 ...]`` — regenerate paper tables/figures.
- ``parvagpu profile resnet-50`` — print a workload's profile table.
- ``parvagpu simulate --scenario S2 --framework gpulet`` — run the
  discrete-event simulator and report SLO compliance.
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import InfeasibleScheduleError, make_framework
from repro.experiments import EXPERIMENTS, run_experiment
from repro.metrics import external_fragmentation, internal_slack
from repro.profiler import profile_workloads
from repro.scenarios import scenario_services
from repro.sim import simulate_placement


def _cmd_schedule(args: argparse.Namespace) -> int:
    profiles = profile_workloads()
    services = scenario_services(args.scenario)
    fw = make_framework(args.framework, profiles)
    try:
        placement = fw.schedule(services)
    except InfeasibleScheduleError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    print(
        f"{args.framework} on {args.scenario}: {placement.num_gpus} GPUs, "
        f"delay {placement.scheduling_delay_ms:.2f} ms, "
        f"internal slack {100 * internal_slack(placement):.1f}%, "
        f"external fragmentation {100 * external_fragmentation(placement):.1f}%"
    )
    for plan in placement.gpus:
        parts = ", ".join(
            f"{s.service_id}"
            f"[{s.gpcs:g}g{'@' + str(s.start) if s.start is not None else ''}"
            f" b{s.batch_size} p{s.num_processes}]"
            for s in plan.segments
        )
        print(f"  GPU {plan.gpu_id}: {parts}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.charts import render_bar_chart, render_series

    for experiment_id in args.ids:
        result = run_experiment(experiment_id)
        if args.chart:
            render = (
                render_series
                if experiment_id in ("fig10", "fig11")
                else render_bar_chart
            )
            print(render(result))
        else:
            print(result.render())
        print()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    table = profile_workloads([args.model])[args.model]
    print(f"{args.model}: {len(table)} operating points")
    print(f"{'size':>4} {'batch':>5} {'procs':>5} {'lat ms':>8} {'req/s':>8} {'mem GB':>7}")
    for e in table:
        print(
            f"{e.instance_size:>4} {e.batch_size:>5} {e.num_processes:>5} "
            f"{e.latency_ms:>8.1f} {e.throughput:>8.0f} {e.memory_gb:>7.1f}"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    profiles = profile_workloads()
    services = scenario_services(args.scenario)
    fw = make_framework(args.framework, profiles)
    try:
        placement = fw.schedule(services)
    except InfeasibleScheduleError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    report = simulate_placement(
        placement,
        services,
        duration_s=args.duration,
        seed=args.seed,
        arrivals=args.arrivals,
    )
    print(
        f"{args.framework} on {args.scenario}: "
        f"SLO compliance {100 * report.overall_compliance:.2f}% "
        f"({report.events_processed} events)"
    )
    for sid, compliance, mean_lat, rate in report.summary_rows():
        print(f"  {sid:<16} {compliance:6.2f}%  {mean_lat:8.1f} ms  {rate:8.0f} req/s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="parvagpu", description="ParvaGPU reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="schedule a Table-IV scenario")
    p.add_argument("--scenario", default="S2")
    p.add_argument("--framework", default="parvagpu")
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("experiment", help="regenerate paper tables/figures")
    p.add_argument("ids", nargs="*", default=list(EXPERIMENTS))
    p.add_argument("--chart", action="store_true",
                   help="render as terminal bars/series instead of a table")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("profile", help="print a workload's profile table")
    p.add_argument("model")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("simulate", help="simulate serving a scenario")
    p.add_argument("--scenario", default="S2")
    p.add_argument("--framework", default="parvagpu")
    p.add_argument("--duration", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--arrivals", choices=("uniform", "poisson"), default="uniform")
    p.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
