"""``parvagpu`` command-line interface.

Subcommands:

- ``parvagpu schedule --scenario S2 [--framework parvagpu]
  [--geometry mig|mi300x|mixed]`` — schedule a scenario and print the
  deployment map + headline metrics.
- ``parvagpu experiment fig5 [fig6 ...]`` — regenerate paper tables/figures.
- ``parvagpu profile resnet-50 [--geometry mi300x]`` — print a workload's
  profile table.
- ``parvagpu simulate --scenario S2 --framework gpulet
  [--geometry mig|mi300x|mixed]`` — run the discrete-event simulator and
  report SLO compliance.
- ``parvagpu scenarios`` — list every registered scenario (S1-S14) with
  service counts, models, total load, and supported geometries.
- ``parvagpu ops --scenario s13 [--verify] [--verify-every N]`` — drive
  a fleet-operations scenario (failures, preemption waves, churn, SLO
  renegotiation) through the closed-loop FleetController and report what
  tenants experienced; ``--verify`` additionally replays the identical
  timeline on the naive reference machinery and asserts fingerprint
  identity (``--verify-every N`` samples the reference's serving
  measurement to every Nth interval — the cheap smoke mode).
  ``ops --live`` runs the same scenario through the live serve gateway
  instead (scaled real time, scripted driver).
- ``parvagpu serve --scenario S16 [--clock real|virtual]
  [--time-scale X] [--deadline B]`` — the live-serving gateway: stream
  the scenario's timeline through the async control loop, publish
  status over local HTTP, optionally record the session and verify the
  virtual replay against the offline controller (``--check-offline``).

``--geometry`` selects the partition geometry of the fleet: ``mig`` (the
paper's A100 fleet, default), any other registered geometry name (e.g.
``mi300x``), or ``mixed`` for a heterogeneous A100+MI300X cluster.
Non-MIG geometries are ParvaGPU-only — the baselines are tied to
NVIDIA-specific mechanisms (MPS percentages, MIG configurations).
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import InfeasibleScheduleError, make_framework
from repro.core.hetero import make_mixed_scheduler
from repro.core.parvagpu import ParvaGPU
from repro.core.service import InfeasibleServiceError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.gpu.geometry import available_geometries, get_geometry
from repro.metrics import external_fragmentation, internal_slack
from repro.profiler import profile_workloads
from repro.scenarios import scenario_services
from repro.sim import simulate_placement

#: Geometry names whose fleets mix MIG A100s and MI300Xs.
MIXED_GEOMETRY = "mixed"

_PARVAGPU_FAMILY = ("parvagpu", "parvagpu-single", "parvagpu-unoptimized")


def _make_scheduler(framework: str, geometry: str):
    """Build a scheduler for a framework + geometry choice."""
    key = framework.strip().lower()
    if geometry == MIXED_GEOMETRY:
        if key != "parvagpu":
            raise ValueError(
                "mixed-geometry clusters are scheduled by the heterogeneous "
                "ParvaGPU pipeline; use --framework parvagpu"
            )
        return make_mixed_scheduler()
    geo = get_geometry(geometry)
    if geo.name == "mig":
        return make_framework(framework, profile_workloads())
    if key not in _PARVAGPU_FAMILY:
        raise ValueError(
            f"framework {framework!r} only supports the MIG geometry; "
            f"on {geo.name} use one of {', '.join(_PARVAGPU_FAMILY)}"
        )
    profiles = profile_workloads(geometry=geo)
    return ParvaGPU(
        profiles,
        use_mps=key != "parvagpu-single",
        optimize=key != "parvagpu-unoptimized",
        geometry=geo,
    )


def _unquote(exc: BaseException) -> str:
    """KeyError str()s to its repr'd message; unwrap for clean CLI output."""
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc)


def _schedule(args: argparse.Namespace):
    """Shared schedule step; returns (services, placement) or exits."""
    services = scenario_services(args.scenario)
    fw = _make_scheduler(args.framework, args.geometry)
    placement = fw.schedule(services)
    return services, placement


def _cmd_schedule(args: argparse.Namespace) -> int:
    try:
        _, placement = _schedule(args)
    except (InfeasibleScheduleError, InfeasibleServiceError) as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as exc:
        print(f"error: {_unquote(exc)}", file=sys.stderr)
        return 2
    fleet = "+".join(placement.geometries())
    fleet_note = f" [{fleet}]" if fleet != "mig" else ""
    print(
        f"{placement.framework} on {args.scenario}: "
        f"{placement.num_gpus} GPUs{fleet_note}, "
        f"delay {placement.scheduling_delay_ms:.2f} ms, "
        f"internal slack {100 * internal_slack(placement):.1f}%, "
        f"external fragmentation {100 * external_fragmentation(placement):.1f}%"
    )
    for plan in placement.gpus:
        tag = f" ({plan.geometry})" if plan.geometry != "mig" else ""
        parts = ", ".join(
            f"{s.service_id}"
            f"[{s.gpcs:g}g{'@' + str(s.start) if s.start is not None else ''}"
            f" b{s.batch_size} p{s.num_processes}]"
            for s in plan.segments
        )
        print(f"  GPU {plan.gpu_id}{tag}: {parts}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.charts import render_bar_chart, render_series

    for experiment_id in args.ids:
        result = run_experiment(experiment_id)
        if args.chart:
            render = (
                render_series
                if experiment_id in ("fig10", "fig11")
                else render_bar_chart
            )
            print(render(result))
        else:
            print(result.render())
        print()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    try:
        if args.geometry == MIXED_GEOMETRY:
            raise ValueError(
                "profiles are measured per geometry; pick one "
                f"({', '.join(available_geometries())})"
            )
        geometry = None if args.geometry == "mig" else get_geometry(args.geometry)
        table = profile_workloads([args.model], geometry=geometry)[args.model]
    except (KeyError, ValueError) as exc:
        print(f"error: {_unquote(exc)}", file=sys.stderr)
        return 2
    print(f"{args.model}: {len(table)} operating points")
    print(f"{'size':>4} {'batch':>5} {'procs':>5} {'lat ms':>8} {'req/s':>8} {'mem GB':>7}")
    for e in table:
        print(
            f"{e.instance_size:>4} {e.batch_size:>5} {e.num_processes:>5} "
            f"{e.latency_ms:>8.1f} {e.throughput:>8.0f} {e.memory_gb:>7.1f}"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.workers and args.engine != "fast":
        print("error: --workers requires the fast engine", file=sys.stderr)
        return 2
    try:
        services, placement = _schedule(args)
    except (InfeasibleScheduleError, InfeasibleServiceError) as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as exc:
        print(f"error: {_unquote(exc)}", file=sys.stderr)
        return 2
    report = simulate_placement(
        placement,
        services,
        duration_s=args.duration,
        seed=args.seed,
        arrivals=args.arrivals,
        fast_path=args.engine == "fast",
        workers=args.workers,
    )
    unit = "steps" if args.engine == "fast" else "events"
    print(
        f"{placement.framework} on {args.scenario}: "
        f"SLO compliance {100 * report.overall_compliance:.2f}% "
        f"({report.events_processed} {unit})"
    )
    for sid, compliance, mean_lat, rate in report.summary_rows():
        print(f"  {sid:<16} {compliance:6.2f}%  {mean_lat:8.1f} ms  {rate:8.0f} req/s")
    return 0


def _geometry_support(scenario, profiles) -> str:
    """Which geometries can serve every load of a scenario.

    A load is feasible on a geometry when its profile table has an
    operating point within the *effective* SLO (the placement algorithms
    only see ``slo_factor`` of the client latency); ``mixed`` requires
    every load to be feasible on at least one pool.  ``profiles`` maps
    geometry name -> model profile tables (built once by the caller).
    """
    from repro.core.service import DEFAULT_SLO_FACTOR

    def feasible(load, name: str) -> bool:
        table = profiles[name].get(load.model)
        if table is None:
            return False
        # Strictly below the bound, matching the scheduler's own
        # operating-point filters (ProfileTable.best_triplets /
        # under_latency) so this listing never advertises a geometry
        # that `schedule` would reject at the boundary.
        bound = load.slo_latency_ms * DEFAULT_SLO_FACTOR
        return any(e.latency_ms < bound for e in table)

    supported = [
        name
        for name in profiles
        if all(feasible(load, name) for load in scenario.loads)
    ]
    if all(
        any(feasible(load, name) for name in profiles)
        for load in scenario.loads
    ):
        supported.append(MIXED_GEOMETRY)
    return ",".join(supported) if supported else "-"


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.profiler import profile_workloads
    from repro.scenarios import SCENARIOS

    # Only the two in-tree backends are listed — the registry may hold
    # ad-hoc variants (generation presets, test geometries) that have no
    # Table-IV profiles of their own.
    profiles = {
        "mig": profile_workloads(),
        "mi300x": profile_workloads(geometry=get_geometry("mi300x")),
    }
    print(
        f"{'name':<5} {'services':>8} {'models':>6} {'req/s':>8} "
        f"{'geometries':<18} description"
    )
    for name, sc in SCENARIOS.items():
        print(
            f"{name:<5} {len(sc.loads):>8} {len(set(sc.models)):>6} "
            f"{sc.total_rate:>8.0f} {_geometry_support(sc, profiles):<18} "
            f"{sc.description}"
        )
    return 0


def _run_gateway_session(
    scenario: str,
    seed: int | None,
    horizon: float | None,
    *,
    virtual: bool,
    time_scale: float,
    measure: float,
    warmup: float,
    deadline: float | None,
    workers: int,
    port: int,
    no_status: bool,
    use_stdin: bool,
    record: str | None,
    check_offline: bool,
    journal_dir: str | None = None,
    checkpoint: str | None = None,
    checkpoint_every: int = 0,
) -> int:
    """One serve-gateway session (shared by ``serve`` and ``ops --live``)."""
    import asyncio

    from repro.ops import FleetController, OpsIdentityError
    from repro.scenarios.ops import OPS_SEED, ops_run
    from repro.serve import (
        Journal,
        MonotonicClock,
        ScriptedDriver,
        ServeGateway,
        StatusServer,
        VirtualClock,
        replay_identity_checked,
        stream_source,
    )

    seed = seed if seed is not None else OPS_SEED
    try:
        run = ops_run(scenario, seed=seed)
        clock = (
            VirtualClock()
            if virtual
            else MonotonicClock(time_scale=time_scale)
        )
        horizon = horizon if horizon is not None else run.horizon_s
        controller = FleetController(seed=seed, workers=workers)
        gateway = ServeGateway(
            controller,
            run.services,
            horizon,
            clock,
            measure_s=measure,
            warmup_s=warmup,
            sim_seed=seed,
            deadline_budget_s=deadline,
            snapshot_every=0 if virtual else 1,
            journal=None if journal_dir is None else Journal(journal_dir),
            checkpoint_path=checkpoint,
            checkpoint_every=checkpoint_every,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {_unquote(exc)}", file=sys.stderr)
        return 2
    driver = ScriptedDriver(e for e in run.timeline if e.time_s < horizon)
    mode = "virtual replay" if virtual else f"live x{time_scale:g}"
    print(
        f"{run.name}: {len(run.services)} services, "
        f"{len(driver.events)} scripted events over {horizon:g} s "
        f"({mode})"
    )

    async def session():
        server = None
        if not no_status and not virtual:
            server = StatusServer(gateway, port=port)
            await server.start()
            print(
                f"status: http://127.0.0.1:{server.port}/report "
                f"(and /health)"
            )
        try:
            if use_stdin:
                loop = asyncio.get_running_loop()
                reader = asyncio.StreamReader()
                protocol = asyncio.StreamReaderProtocol(reader)
                await loop.connect_read_pipe(lambda: protocol, sys.stdin)
                source = stream_source(reader)
            else:
                source = driver.source(clock)
            return await gateway.run(source)
        finally:
            if server is not None:
                await server.stop()

    try:
        report = asyncio.run(session())
    except OpsIdentityError as exc:
        print(f"IDENTITY CHECK FAILED: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {_unquote(exc)}", file=sys.stderr)
        return 2

    health = gateway.health
    degraded = (
        f", {health.deferrals} deferrals "
        f"(max depth {health.max_deferred_depth}, "
        f"{health.forced_flushes} forced flushes)"
        if health.deferrals
        else ""
    )
    print(
        f"session: {health.steps} steps, {health.events_applied} events "
        f"applied{degraded}"
    )
    if gateway.journal is not None:
        js = gateway.journal.stats
        print(
            f"journal: {js.appends} events in {js.segments} segment(s), "
            f"{js.fsyncs} fsyncs ({journal_dir})"
        )
    if checkpoint:
        print(
            f"checkpoints: {health.checkpoint_writes} written"
            + (f", {health.checkpoint_errors} failed"
               if health.checkpoint_errors else "")
            + f" ({checkpoint})"
        )
    if health.safe_mode:
        print(
            "SAFE MODE: the intake source failed for good "
            f"({gateway.health_doc().get('source_error')}); the session "
            "drained admitted events and flushed a final checkpoint",
            file=sys.stderr,
        )
    if health.reactions_s:
        pct = health.reaction_percentiles()
        print(
            f"reaction latency: p50 {pct['p50_ms']:.1f} ms, "
            f"p95 {pct['p95_ms']:.1f} ms, p99 {pct['p99_ms']:.1f} ms"
        )
    if report.mean_compliance is not None:
        print(
            f"compliance: mean {100 * report.mean_compliance:.2f}%, "
            f"min {100 * report.min_compliance:.2f}%"
        )
    if record and not use_stdin:
        with open(record, "w", encoding="utf-8") as fh:
            for line in driver.recorded_jsonl():
                fh.write(line + "\n")
        print(f"recorded session: {record} ({len(driver.sent)} events)")
    if check_offline:
        recorded = tuple(driver.sent) if not use_stdin else run.timeline
        try:
            replay_identity_checked(
                run.services, recorded, horizon,
                measure_s=measure, warmup_s=warmup, sim_seed=seed,
                seed=seed,
            )
        except OpsIdentityError as exc:
            print(f"IDENTITY CHECK FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            "identity: virtual-clock replay of the session matches the "
            "offline FleetController on every interval"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    return _run_gateway_session(
        args.scenario,
        args.seed,
        args.horizon,
        virtual=args.clock == "virtual",
        time_scale=args.time_scale,
        measure=args.measure,
        warmup=args.warmup,
        deadline=args.deadline,
        workers=args.workers,
        port=args.port,
        no_status=args.no_status,
        use_stdin=args.stdin,
        record=args.record,
        check_offline=args.check_offline,
        journal_dir=args.journal,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )


def _cmd_ops(args: argparse.Namespace) -> int:
    from repro.ops import (
        CheckpointError,
        FleetController,
        OpsIdentityError,
        run_identity_checked,
    )
    from repro.scenarios.ops import OPS_SEED, ops_run

    if (args.trace or args.trace_jsonl) and (args.live or args.verify):
        print("error: --trace/--trace-jsonl export the offline replay's "
              "span tree; they cannot be combined with --live or --verify",
              file=sys.stderr)
        return 2
    if args.live:
        if args.verify or args.engine != "fast":
            print("error: --live is a serve-gateway session; it cannot be "
                  "combined with --verify or --engine", file=sys.stderr)
            return 2
        if args.resume:
            print("error: --resume replays an offline checkpoint; it cannot "
                  "be combined with --live (journal replay covers live "
                  "sessions)", file=sys.stderr)
            return 2
        return _run_gateway_session(
            args.scenario,
            args.seed,
            args.horizon,
            virtual=False,
            time_scale=args.time_scale,
            measure=args.measure,
            warmup=args.warmup,
            deadline=None,
            workers=args.workers,
            port=0,
            no_status=False,
            use_stdin=False,
            record=None,
            check_offline=False,
            journal_dir=args.journal,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
        )
    if (args.resume or args.checkpoint or args.checkpoint_every) and args.verify:
        print("error: --verify replays the full timeline on the naive "
              "reference; it cannot be combined with checkpoint/resume",
              file=sys.stderr)
        return 2
    if args.journal:
        print("error: --journal is a gateway-session flag (use --live or "
              "the serve command)", file=sys.stderr)
        return 2
    if args.verify_every != 1 and not args.verify:
        print("error: --verify-every only applies with --verify",
              file=sys.stderr)
        return 2
    if args.verify and args.engine != "fast":
        # --verify runs *both* engines and compares them; a user-chosen
        # engine would be silently meaningless there.
        print("error: --engine cannot be combined with --verify "
              "(the verification replay runs both engines)", file=sys.stderr)
        return 2
    if args.workers and args.engine != "fast":
        print("error: --workers requires the fast engine (the naive "
              "reference stays serial)", file=sys.stderr)
        return 2
    seed = args.seed if args.seed is not None else OPS_SEED
    try:
        run = ops_run(args.scenario, seed=seed)
    except (KeyError, ValueError) as exc:
        print(f"error: {_unquote(exc)}", file=sys.stderr)
        return 2
    horizon = args.horizon if args.horizon is not None else run.horizon_s
    kwargs = dict(
        measure_s=args.measure, warmup_s=args.warmup, sim_seed=seed
    )
    try:
        if args.verify:
            report, _ = run_identity_checked(
                run.services, run.timeline, horizon,
                seed=seed, workers=args.workers,
                verify_every=args.verify_every, **kwargs,
            )
        else:
            ctrl = FleetController(
                fast_path=args.engine == "fast", seed=seed,
                workers=args.workers,
            )
            # a bare --checkpoint means "checkpoint every interval"
            ckpt_every = args.checkpoint_every or (1 if args.checkpoint else 0)
            report = ctrl.run(
                run.services, run.timeline, horizon,
                checkpoint_every=ckpt_every,
                checkpoint_path=args.checkpoint,
                resume=args.resume,
                **kwargs,
            )
    except OpsIdentityError as exc:
        print(f"IDENTITY CHECK FAILED: {exc}", file=sys.stderr)
        return 1
    except CheckpointError as exc:
        print(f"CHECKPOINT ERROR: {_unquote(exc)}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # invalid numeric arguments (e.g. --horizon 0) surface as the
        # CLI's clean error convention, not a traceback
        print(f"error: {_unquote(exc)}", file=sys.stderr)
        return 2

    timeline_events = sum(1 for e in run.timeline if e.time_s < horizon)
    sharding = (
        f", sharded control plane x{report.workers}" if report.workers else ""
    )
    print(
        f"{run.name}: {len(run.services)} services, "
        f"{timeline_events} timeline events over {horizon:g} s{sharding}"
    )
    for r in report.intervals:
        events = " ".join(f"{k}x{v}" for k, v in sorted(r.events.items()))
        comp = "" if r.compliance is None else f"  comp {100 * r.compliance:6.2f}%"
        skip = f"  skipped {r.skipped}" if r.skipped else ""
        print(
            f"  t={r.time_s:>9.0f}s {r.path:<11} svcs={r.services:<5} "
            f"gpus={r.num_gpus:<4} spares={r.spare_gpus:<3}"
            f"{comp}{skip}  {events}"
        )
    print(
        f"fleet: peak {report.peak_gpus} GPUs, "
        f"{report.gpu_hours:.1f} GPU-hours; "
        f"{report.total_reconfig_ops} reconfig ops "
        f"({report.total_reconfig_work_s:.1f} s work, "
        f"{report.total_downtime_s:.1f} s unshadowed downtime)"
    )
    restore = (
        f", mean time-to-restore {report.mean_time_to_restore_s:.0f} s"
        if report.mean_time_to_restore_s is not None
        else ""
    )
    print(
        f"failures: {len(report.failures)} "
        f"({report.restored_count} restored{restore})"
    )
    if report.mean_compliance is not None:
        attainment = report.slo_attainment(target=0.99)
        attained = sum(1 for v in attainment.values() if v >= 1.0 - 1e-12)
        worst_sid = min(attainment, key=lambda sid: attainment[sid])
        print(
            f"compliance: mean {100 * report.mean_compliance:.2f}%, "
            f"min {100 * report.min_compliance:.2f}%; "
            f"tenants fully >=99%-compliant: {attained}/{len(attainment)} "
            f"(worst: {worst_sid} in "
            f"{100 * attainment[worst_sid]:.0f}% of its intervals)"
        )
    if args.trace:
        ctrl.obs.tracer.write_chrome(args.trace)
        print(f"trace: {args.trace} ({len(ctrl.obs.tracer.spans)} spans, "
              "Chrome trace_event JSON)")
    if args.trace_jsonl:
        ctrl.obs.tracer.write_jsonl(args.trace_jsonl)
        print(f"trace: {args.trace_jsonl} "
              f"({len(ctrl.obs.tracer.spans)} spans, JSONL)")
    if args.resume:
        print(f"resumed: {args.resume} (intervals before the checkpoint "
              "cursor restored verbatim)")
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint} "
              f"(every {args.checkpoint_every or 1} interval(s))")
    checks = "state round-trip + cluster mirror"
    if args.verify:
        checks += " + fast-vs-naive replay"
    print(f"identity: {checks} OK on every interval")
    return 0


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="write a versioned, checksummed control-plane checkpoint "
        "(at every --checkpoint-every steps, plus a final one at "
        "shutdown for gateway sessions)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, dest="checkpoint_every",
        metavar="N",
        help="checkpoint cadence in control-loop steps (0 = only where "
        "the session flushes on its own; requires --checkpoint)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="DIR",
        help="write-ahead journal directory: every admitted intake "
        "event is persisted in wire format before use, so a crashed "
        "gateway session can be replayed bit-identically",
    )


def _add_geometry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--geometry",
        default="mig",
        help=(
            "partition geometry of the fleet: "
            f"{', '.join(available_geometries())}, or '{MIXED_GEOMETRY}' "
            "for a heterogeneous A100+MI300X cluster (default: mig)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="parvagpu", description="ParvaGPU reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="schedule an evaluation scenario")
    p.add_argument("--scenario", default="S2")
    p.add_argument("--framework", default="parvagpu")
    _add_geometry_flag(p)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("experiment", help="regenerate paper tables/figures")
    p.add_argument("ids", nargs="*", default=list(EXPERIMENTS))
    p.add_argument("--chart", action="store_true",
                   help="render as terminal bars/series instead of a table")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("profile", help="print a workload's profile table")
    p.add_argument("model")
    _add_geometry_flag(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "scenarios",
        help="list every registered scenario with loads and geometries",
    )
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser(
        "ops", help="drive a fleet-operations scenario (S12-S16)"
    )
    p.add_argument("--scenario", default="S13")
    p.add_argument(
        "--measure", type=float, default=0.25,
        help="seconds of serving simulated per interval (0 disables; "
        "default: %(default)s)",
    )
    p.add_argument("--warmup", type=float, default=0.1)
    p.add_argument(
        "--seed", type=int, default=None,
        help="timeline + controller + simulation seed (default: the "
        "scenario's committed seed)",
    )
    p.add_argument(
        "--horizon", type=float, default=None,
        help="truncate the run at this simulated time (default: the "
        "scenario's full horizon)",
    )
    p.add_argument(
        "--engine", choices=("fast", "naive"), default="fast",
        help="fast: indexed allocator + memoized configurator + "
        "batch-granularity simulator (default); naive: the reference "
        "machinery (identical results, reference baseline)",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="replay the identical timeline on the naive reference and "
        "assert per-interval fingerprint identity",
    )
    p.add_argument(
        "--verify-every", type=int, default=1, dest="verify_every",
        help="with --verify: sample the reference replay's serving "
        "measurement to every Nth interval (placement fingerprints are "
        "still checked everywhere; default: 1 = the full contract)",
    )
    p.add_argument(
        "--live", action="store_true",
        help="run the scenario through the live serve gateway instead "
        "of the offline replay (scaled real time, scripted driver, "
        "local status endpoint)",
    )
    p.add_argument(
        "--time-scale", type=float, default=60.0, dest="time_scale",
        help="with --live: scenario seconds per real second "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="shard the per-interval serving measurement (and replan "
        "triplet scoring) across N parallel workers; results are "
        "bit-identical to the serial path (default: 0 = serial)",
    )
    p.add_argument(
        "--trace", default=None, metavar="FILE",
        help="export the run's decision-path span tree as Chrome "
        "trace_event JSON (loadable in Perfetto / chrome://tracing); "
        "byte-identical across replays of the same scenario",
    )
    p.add_argument(
        "--trace-jsonl", default=None, dest="trace_jsonl", metavar="FILE",
        help="export the span tree as JSON Lines, one span per line "
        "(same determinism contract as --trace)",
    )
    _add_resilience_flags(p)
    p.add_argument(
        "--resume", default=None, metavar="FILE",
        help="resume an interrupted run from a checkpoint written by "
        "--checkpoint; the resumed report is bit-identical to an "
        "uninterrupted run",
    )
    p.set_defaults(func=_cmd_ops)

    p = sub.add_parser(
        "serve",
        help="run the live-serving gateway (async control loop + status "
        "endpoint) over an ops scenario",
    )
    p.add_argument("--scenario", default="S16")
    p.add_argument(
        "--clock", choices=("real", "virtual"), default="real",
        help="real: live session on the monotonic clock (default); "
        "virtual: deterministic replay, bit-identical to the offline "
        "FleetController",
    )
    p.add_argument(
        "--time-scale", type=float, default=60.0, dest="time_scale",
        help="scenario seconds per real second under the real clock "
        "(default: %(default)s)",
    )
    p.add_argument(
        "--deadline", type=float, default=0.25,
        help="per-step deadline budget in real seconds: full re-plans "
        "lagging further than this are deferred and coalesced "
        "(default: %(default)s)",
    )
    p.add_argument("--measure", type=float, default=0.25,
                   help="seconds of serving simulated per interval "
                   "(0 disables; default: %(default)s)")
    p.add_argument("--warmup", type=float, default=0.1)
    p.add_argument(
        "--seed", type=int, default=None,
        help="timeline + controller + simulation seed (default: the "
        "scenario's committed seed)",
    )
    p.add_argument(
        "--horizon", type=float, default=None,
        help="truncate the session at this scenario time (default: the "
        "scenario's full horizon)",
    )
    p.add_argument(
        "--port", type=int, default=0,
        help="status endpoint port (default: 0 = ephemeral)",
    )
    p.add_argument(
        "--no-status", action="store_true", dest="no_status",
        help="disable the local HTTP status endpoint",
    )
    p.add_argument(
        "--stdin", action="store_true",
        help="consume line-delimited JSON events from stdin instead of "
        "the scenario's scripted driver (the scenario still provides "
        "the base fleet and horizon)",
    )
    p.add_argument(
        "--record", default=None, metavar="FILE",
        help="write the driver's emitted session as line-delimited JSON "
        "(replayable with --clock virtual via the recorded timeline)",
    )
    p.add_argument(
        "--check-offline", action="store_true", dest="check_offline",
        help="after the session, replay it through the virtual-clock "
        "gateway and assert per-interval fingerprint identity against "
        "the offline FleetController",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="shard the per-interval serving measurement across N "
        "parallel workers (default: 0 = serial)",
    )
    _add_resilience_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("simulate", help="simulate serving a scenario")
    p.add_argument("--scenario", default="S2")
    p.add_argument("--framework", default="parvagpu")
    p.add_argument("--duration", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--arrivals", choices=("uniform", "poisson"), default="uniform")
    p.add_argument(
        "--engine",
        choices=("fast", "event"),
        default="fast",
        help="simulation engine: the batch-granularity fast path (default) "
        "or the per-request discrete-event reference",
    )
    p.add_argument(
        "--workers", type=int, default=0,
        help="shard segment simulation across N parallel workers "
        "(fast engine only; bit-identical to serial; default: 0)",
    )
    _add_geometry_flag(p)
    p.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
