"""``parvagpu`` command-line interface.

Subcommands:

- ``parvagpu schedule --scenario S2 [--framework parvagpu]
  [--geometry mig|mi300x|mixed]`` — schedule a scenario and print the
  deployment map + headline metrics.
- ``parvagpu experiment fig5 [fig6 ...]`` — regenerate paper tables/figures.
- ``parvagpu profile resnet-50 [--geometry mi300x]`` — print a workload's
  profile table.
- ``parvagpu simulate --scenario S2 --framework gpulet
  [--geometry mig|mi300x|mixed]`` — run the discrete-event simulator and
  report SLO compliance.

``--geometry`` selects the partition geometry of the fleet: ``mig`` (the
paper's A100 fleet, default), any other registered geometry name (e.g.
``mi300x``), or ``mixed`` for a heterogeneous A100+MI300X cluster.
Non-MIG geometries are ParvaGPU-only — the baselines are tied to
NVIDIA-specific mechanisms (MPS percentages, MIG configurations).
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import InfeasibleScheduleError, make_framework
from repro.core.hetero import make_mixed_scheduler
from repro.core.parvagpu import ParvaGPU
from repro.core.service import InfeasibleServiceError
from repro.experiments import EXPERIMENTS, run_experiment
from repro.gpu.geometry import available_geometries, get_geometry
from repro.metrics import external_fragmentation, internal_slack
from repro.profiler import profile_workloads
from repro.scenarios import scenario_services
from repro.sim import simulate_placement

#: Geometry names whose fleets mix MIG A100s and MI300Xs.
MIXED_GEOMETRY = "mixed"

_PARVAGPU_FAMILY = ("parvagpu", "parvagpu-single", "parvagpu-unoptimized")


def _make_scheduler(framework: str, geometry: str):
    """Build a scheduler for a framework + geometry choice."""
    key = framework.strip().lower()
    if geometry == MIXED_GEOMETRY:
        if key != "parvagpu":
            raise ValueError(
                "mixed-geometry clusters are scheduled by the heterogeneous "
                "ParvaGPU pipeline; use --framework parvagpu"
            )
        return make_mixed_scheduler()
    geo = get_geometry(geometry)
    if geo.name == "mig":
        return make_framework(framework, profile_workloads())
    if key not in _PARVAGPU_FAMILY:
        raise ValueError(
            f"framework {framework!r} only supports the MIG geometry; "
            f"on {geo.name} use one of {', '.join(_PARVAGPU_FAMILY)}"
        )
    profiles = profile_workloads(geometry=geo)
    return ParvaGPU(
        profiles,
        use_mps=key != "parvagpu-single",
        optimize=key != "parvagpu-unoptimized",
        geometry=geo,
    )


def _unquote(exc: BaseException) -> str:
    """KeyError str()s to its repr'd message; unwrap for clean CLI output."""
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc)


def _schedule(args: argparse.Namespace):
    """Shared schedule step; returns (services, placement) or exits."""
    services = scenario_services(args.scenario)
    fw = _make_scheduler(args.framework, args.geometry)
    placement = fw.schedule(services)
    return services, placement


def _cmd_schedule(args: argparse.Namespace) -> int:
    try:
        _, placement = _schedule(args)
    except (InfeasibleScheduleError, InfeasibleServiceError) as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as exc:
        print(f"error: {_unquote(exc)}", file=sys.stderr)
        return 2
    fleet = "+".join(placement.geometries())
    fleet_note = f" [{fleet}]" if fleet != "mig" else ""
    print(
        f"{placement.framework} on {args.scenario}: "
        f"{placement.num_gpus} GPUs{fleet_note}, "
        f"delay {placement.scheduling_delay_ms:.2f} ms, "
        f"internal slack {100 * internal_slack(placement):.1f}%, "
        f"external fragmentation {100 * external_fragmentation(placement):.1f}%"
    )
    for plan in placement.gpus:
        tag = f" ({plan.geometry})" if plan.geometry != "mig" else ""
        parts = ", ".join(
            f"{s.service_id}"
            f"[{s.gpcs:g}g{'@' + str(s.start) if s.start is not None else ''}"
            f" b{s.batch_size} p{s.num_processes}]"
            for s in plan.segments
        )
        print(f"  GPU {plan.gpu_id}{tag}: {parts}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.charts import render_bar_chart, render_series

    for experiment_id in args.ids:
        result = run_experiment(experiment_id)
        if args.chart:
            render = (
                render_series
                if experiment_id in ("fig10", "fig11")
                else render_bar_chart
            )
            print(render(result))
        else:
            print(result.render())
        print()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    try:
        if args.geometry == MIXED_GEOMETRY:
            raise ValueError(
                "profiles are measured per geometry; pick one "
                f"({', '.join(available_geometries())})"
            )
        geometry = None if args.geometry == "mig" else get_geometry(args.geometry)
        table = profile_workloads([args.model], geometry=geometry)[args.model]
    except (KeyError, ValueError) as exc:
        print(f"error: {_unquote(exc)}", file=sys.stderr)
        return 2
    print(f"{args.model}: {len(table)} operating points")
    print(f"{'size':>4} {'batch':>5} {'procs':>5} {'lat ms':>8} {'req/s':>8} {'mem GB':>7}")
    for e in table:
        print(
            f"{e.instance_size:>4} {e.batch_size:>5} {e.num_processes:>5} "
            f"{e.latency_ms:>8.1f} {e.throughput:>8.0f} {e.memory_gb:>7.1f}"
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    try:
        services, placement = _schedule(args)
    except (InfeasibleScheduleError, InfeasibleServiceError) as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as exc:
        print(f"error: {_unquote(exc)}", file=sys.stderr)
        return 2
    report = simulate_placement(
        placement,
        services,
        duration_s=args.duration,
        seed=args.seed,
        arrivals=args.arrivals,
        fast_path=args.engine == "fast",
    )
    unit = "steps" if args.engine == "fast" else "events"
    print(
        f"{placement.framework} on {args.scenario}: "
        f"SLO compliance {100 * report.overall_compliance:.2f}% "
        f"({report.events_processed} {unit})"
    )
    for sid, compliance, mean_lat, rate in report.summary_rows():
        print(f"  {sid:<16} {compliance:6.2f}%  {mean_lat:8.1f} ms  {rate:8.0f} req/s")
    return 0


def _add_geometry_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--geometry",
        default="mig",
        help=(
            "partition geometry of the fleet: "
            f"{', '.join(available_geometries())}, or '{MIXED_GEOMETRY}' "
            "for a heterogeneous A100+MI300X cluster (default: mig)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="parvagpu", description="ParvaGPU reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="schedule an evaluation scenario")
    p.add_argument("--scenario", default="S2")
    p.add_argument("--framework", default="parvagpu")
    _add_geometry_flag(p)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("experiment", help="regenerate paper tables/figures")
    p.add_argument("ids", nargs="*", default=list(EXPERIMENTS))
    p.add_argument("--chart", action="store_true",
                   help="render as terminal bars/series instead of a table")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("profile", help="print a workload's profile table")
    p.add_argument("model")
    _add_geometry_flag(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("simulate", help="simulate serving a scenario")
    p.add_argument("--scenario", default="S2")
    p.add_argument("--framework", default="parvagpu")
    p.add_argument("--duration", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--arrivals", choices=("uniform", "poisson"), default="uniform")
    p.add_argument(
        "--engine",
        choices=("fast", "event"),
        default="fast",
        help="simulation engine: the batch-granularity fast path (default) "
        "or the per-request discrete-event reference",
    )
    _add_geometry_flag(p)
    p.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
