"""Prometheus text exposition (format 0.0.4) for the metrics registry.

Pure rendering: :func:`render_prometheus` pulls a byte-deterministic
snapshot out of a :class:`~repro.obs.registry.MetricsRegistry` —
families in sorted name order, series in sorted label order, histogram
buckets cumulative with ``+Inf``/``_sum``/``_count`` — so a scrape of
two identical replays is byte-identical too.
"""

from __future__ import annotations

from repro.obs.registry import Histogram, MetricsRegistry

#: The content type a ``/metrics`` response must carry.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels(
    names: tuple[str, ...], values: tuple[str, ...], extra: str = ""
) -> str:
    pairs = [
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """The full exposition, one ``# HELP``/``# TYPE`` block per family."""
    lines: list[str] = []
    for metric in registry.collect():
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key in metric.series_keys():
                labels = dict(zip(metric.labelnames, key))
                cumulative, total, count = metric.snapshot(**labels)
                for edge, n in cumulative:
                    le = 'le="' + _format_value(edge) + '"'
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_labels(metric.labelnames, key, le)}"
                        f" {n}"
                    )
                lines.append(
                    f"{metric.name}_sum"
                    f"{_labels(metric.labelnames, key)}"
                    f" {_format_value(total)}"
                )
                lines.append(
                    f"{metric.name}_count"
                    f"{_labels(metric.labelnames, key)}"
                    f" {_format_value(count)}"
                )
        else:
            for key, value in metric.samples():
                lines.append(
                    f"{metric.name}{_labels(metric.labelnames, key)}"
                    f" {_format_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""
