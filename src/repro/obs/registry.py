"""Deterministic metrics registry: counters, gauges, histograms.

The registry is the push half of the observability plane: hot paths
increment plain Python numbers in-place (an attribute lookup and a
float add — cheap enough to stay enabled by default), and everything
presentational is pull-based.  :meth:`MetricsRegistry.collect` walks
the families in sorted name order, so two identical replays render
byte-identical expositions; recording never touches fingerprinted
state, and no module here reads the wall clock (durations arrive as
values observed by callers, see :mod:`repro.obs.wallclock`).

Besides push-style families the registry can *attach* an existing
stats object (``GatewayHealth``, ``ShardHealth``, ``JournalStats``):
the object keeps its plain-attribute API (``health.steps += 1`` stays
an attribute increment) and declares an ``OBS_FIELDS`` spec mapping
each attribute to a metric kind; :meth:`MetricsRegistry.collect`
snapshots the attributes on demand.  :func:`fields_doc` derives the
JSON health document from the same spec, so the counter families are
defined exactly once.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Protocol

#: Fixed bucket edges (seconds) shared by every duration histogram.
#: Fixed edges keep expositions mergeable across runs and replays.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

LabelKey = tuple[str, ...]


class _HasObsFields(Protocol):
    OBS_FIELDS: Mapping[str, str]


def fields_doc(obj: _HasObsFields) -> dict[str, object]:
    """The JSON health document derived from an ``OBS_FIELDS`` spec.

    One spec drives both the scrapeable metric family and the ``/health``
    snapshot, so the two can never drift apart.
    """
    return {name: getattr(obj, name) for name in obj.OBS_FIELDS}


class Metric:
    """Base family: a name, help text, and fixed label names."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        enabled: bool = True,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.enabled = enabled

    def _key(self, labels: Mapping[str, object]) -> LabelKey:
        if tuple(labels) != self.labelnames:
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(v) for v in labels.values())

    def samples(self) -> list[tuple[LabelKey, float]]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        enabled: bool = True,
    ) -> None:
        super().__init__(name, help, labelnames, enabled)
        self._series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(self._key(labels), 0.0)

    def samples(self) -> list[tuple[LabelKey, float]]:
        return sorted(self._series.items())


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        enabled: bool = True,
    ) -> None:
        super().__init__(name, help, labelnames, enabled)
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self.enabled:
            return
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(self._key(labels), 0.0)

    def samples(self) -> list[tuple[LabelKey, float]]:
        return sorted(self._series.items())


class Histogram(Metric):
    """Observations bucketed over fixed edges, plus sum and count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        enabled: bool = True,
    ) -> None:
        super().__init__(name, help, labelnames, enabled)
        if tuple(sorted(buckets)) != tuple(buckets) or not buckets:
            raise ValueError("bucket edges must be sorted and non-empty")
        self.buckets = tuple(float(b) for b in buckets)
        #: per-series: non-cumulative per-edge counts + overflow, sum, n
        self._series: dict[LabelKey, tuple[list[int], list[float]]] = {}

    def observe(self, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = ([0] * (len(self.buckets) + 1), [0.0, 0.0])
            self._series[key] = series
        counts, acc = series
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        acc[0] += value
        acc[1] += 1.0

    def snapshot(
        self, **labels: object
    ) -> tuple[list[tuple[float, int]], float, float]:
        """``(cumulative (edge, count) pairs incl. +Inf, sum, count)``."""
        key = self._key(labels)
        counts, acc = self._series.get(
            key, ([0] * (len(self.buckets) + 1), [0.0, 0.0])
        )
        cumulative: list[tuple[float, int]] = []
        running = 0
        for edge, n in zip(self.buckets, counts):
            running += n
            cumulative.append((edge, running))
        cumulative.append((float("inf"), running + counts[-1]))
        return cumulative, acc[0], acc[1]

    def series_keys(self) -> list[LabelKey]:
        return sorted(self._series)

    def samples(self) -> list[tuple[LabelKey, float]]:
        # histograms expose their count as the scalar sample
        return sorted(
            (key, series[1][1]) for key, series in self._series.items()
        )


class MetricsRegistry:
    """Name-keyed metric families plus attached stats objects."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, Metric] = {}
        self._attached: dict[str, _HasObsFields] = {}

    def _family(
        self,
        cls: type[Metric],
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        **kwargs: object,
    ) -> Metric:
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or (
                existing.labelnames != tuple(labelnames)
            ):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing
        metric = cls(
            name, help, tuple(labelnames), enabled=self.enabled, **kwargs
        )
        self._families[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        metric = self._family(Counter, name, help, labelnames)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        metric = self._family(Gauge, name, help, labelnames)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._family(
            Histogram, name, help, labelnames, buckets=buckets
        )
        assert isinstance(metric, Histogram)
        return metric

    def attach(self, prefix: str, obj: _HasObsFields) -> None:
        """Fold an ``OBS_FIELDS`` stats object into the registry.

        The object keeps its attribute API; :meth:`collect` snapshots
        the fields as ``<prefix>_<field>`` families on demand.
        Re-attaching a prefix replaces the previous object (a reentrant
        controller attaches each run's fresh shard pool).
        """
        if not self.enabled:
            return
        self._attached[prefix] = obj

    def collect(self) -> Iterator[Metric]:
        """All families, sorted by name, attached snapshots included."""
        families = dict(self._families)
        for prefix, obj in self._attached.items():
            for fname, kind in obj.OBS_FIELDS.items():
                name = f"{prefix}_{fname}"
                value = float(getattr(obj, fname))
                cls = Counter if kind == "counter" else Gauge
                snap = cls(name, f"{prefix} {fname} (attached)")
                snap._series[()] = value
                families[name] = snap
        for name in sorted(families):
            yield families[name]
