"""The :class:`ObsHub`: one handle over registry + tracer + flight ring.

Every controller owns a hub (the gateway shares its controller's); all
metric and span recording in identity-checked modules goes through
this facade — repro-lint rule D008 rejects bare dict counters there,
and the hub guarantees the two-track clock discipline: scenario
instants are passed in by callers, wall durations exist only when the
hub was built with :func:`~repro.obs.wallclock.wall_seconds` (or a
clock's ``work_seconds``, which a ``VirtualClock`` pins to zero).
"""

from __future__ import annotations

import pathlib
from contextlib import AbstractContextManager
from typing import Callable, Union

from repro.obs.flight import FlightRecorder
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer

_PathLike = Union[str, pathlib.Path]


class ObsHub:
    """The per-controller observability plane (the ``obs`` facade)."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        wall: Callable[[], float] | None = None,
        flight_capacity: int = 256,
        flight_path: _PathLike | None = None,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.flight = FlightRecorder(flight_capacity, enabled=enabled)
        self.tracer = Tracer(
            wall=wall, sink=self.flight.add_span, enabled=enabled
        )
        #: where automatic flight dumps land (``None`` = in-memory only)
        self.flight_path = (
            None if flight_path is None else pathlib.Path(flight_path)
        )
        self._wall = wall

    @classmethod
    def live(cls, **kwargs: object) -> "ObsHub":
        """A hub with the wall-clock sidecar track enabled."""
        from repro.obs.wallclock import wall_seconds

        return cls(wall=wall_seconds, **kwargs)  # type: ignore[arg-type]

    # -- two-track clock -------------------------------------------------

    def wall(self) -> float:
        """The sidecar track: wall seconds, or 0.0 when deterministic."""
        return self._wall() if self._wall is not None else 0.0

    def set_wall(self, wall: Callable[[], float] | None) -> None:
        """Rebind the sidecar track (a gateway binds ``work_seconds``)."""
        self._wall = wall
        self.tracer._wall = wall

    # -- facade shortcuts ------------------------------------------------

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self.registry.counter(name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self.registry.gauge(name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self.registry.histogram(name, help, labelnames, buckets)

    def span(
        self, name: str, *, t_s: float | None = None, cat: str = "ops",
        **args: object,
    ) -> AbstractContextManager[Span]:
        return self.tracer.span(name, t_s=t_s, cat=cat, **args)

    def note(
        self, kind: str, *, t_s: float = 0.0, **fields: object
    ) -> None:
        self.flight.note(kind, t_s=t_s, **fields)

    def dump_flight(
        self, reason: str, path: _PathLike | None = None
    ) -> dict[str, object] | None:
        """Dump the flight ring (to ``flight_path`` unless overridden)."""
        doc = self.flight.dump(
            reason, self.flight_path if path is None else path
        )
        if doc is not None:
            self.counter(
                "obs_flight_dumps_total",
                "automatic flight-recorder dumps",
                ("reason",),
            ).inc(reason=reason)
        return doc
