"""Structured trace spans for the per-interval decision path.

A :class:`Tracer` records a tree of :class:`Span` objects —
``interval`` roots with ``intake``/``apply``/``replan``/``measure``/
``scatter``/``gather``/``report`` children — and exports them as JSONL
or Chrome ``trace_event`` JSON (loadable in ``chrome://tracing`` and
Perfetto).

Span *identity* is scenario time only: ``t0_s``/``t1_s`` are
deterministic scenario instants, sequence numbers come from open
order, and args are caller-supplied deterministic values.  The wall
track (``wall_ms``) is a sidecar: it is pinned to ``0.0`` unless the
tracer was built with a wall callable (see
:mod:`repro.obs.wallclock`), which is exactly why span trees are
byte-identical across replays under ``VirtualClock`` — and why a live
session's trace is allowed to differ in (and only in) its sidecars.
"""

from __future__ import annotations

import json
import pathlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Union

_PathLike = Union[str, pathlib.Path]


@dataclass
class Span:
    """One node of the decision-path tree."""

    seq: int
    name: str
    cat: str
    t0_s: float
    t1_s: float
    parent: int  # seq of the enclosing span, -1 at the root
    wall_s: float = 0.0
    args: dict[str, object] = field(default_factory=dict)

    def to_doc(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "name": self.name,
            "cat": self.cat,
            "t0_s": self.t0_s,
            "t1_s": self.t1_s,
            "parent": self.parent,
            "wall_ms": round(self.wall_s * 1e3, 3),
            "args": dict(self.args),
        }


#: Shared dummy yielded by a disabled tracer (never recorded).
_DISABLED_SPAN = Span(-1, "disabled", "obs", 0.0, 0.0, -1)


class Tracer:
    """Records spans in open order; exports JSONL and Chrome JSON."""

    def __init__(
        self,
        wall: Callable[[], float] | None = None,
        sink: Callable[[Span], None] | None = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._wall = wall
        self._sink = sink

    @contextmanager
    def span(
        self, name: str, *, t_s: float | None = None, cat: str = "ops",
        **args: object,
    ) -> Iterator[Span]:
        """Open a span; children opened inside nest under it.

        ``t_s`` is the deterministic scenario instant; ``None`` inherits
        the enclosing span's instant (0.0 at the root), so nested layers
        need not thread scenario time through their call chain.  Assign
        ``sp.t1_s`` inside the block to give the span scenario extent.
        The wall sidecar is measured on exit when a wall track exists.
        """
        if not self.enabled:
            yield _DISABLED_SPAN
            return
        parent = self._stack[-1] if self._stack else -1
        if t_s is None:
            t_s = self.spans[parent].t0_s if parent >= 0 else 0.0
        sp = Span(
            seq=len(self.spans),
            name=name,
            cat=cat,
            t0_s=t_s,
            t1_s=t_s,
            parent=parent,
            args=dict(args),
        )
        self.spans.append(sp)
        self._stack.append(sp.seq)
        w0 = self._wall() if self._wall is not None else 0.0
        try:
            yield sp
        finally:
            if self._wall is not None:
                sp.wall_s = self._wall() - w0
            self._stack.pop()
            if self._sink is not None:
                self._sink(sp)

    def to_jsonl(self) -> list[str]:
        """One span per line, open order, keys sorted (byte-stable)."""
        return [
            json.dumps(sp.to_doc(), sort_keys=True) for sp in self.spans
        ]

    def write_jsonl(self, path: _PathLike) -> None:
        text = "\n".join(self.to_jsonl())
        pathlib.Path(path).write_text(text + "\n" if text else "")

    def chrome_doc(self) -> dict[str, object]:
        """The Chrome ``trace_event`` document (Perfetto-loadable).

        Complete ("X") events on one pid/tid; ``ts``/``dur`` are
        scenario microseconds, wall sidecars ride in ``args.wall_ms``.
        """
        events: list[dict[str, object]] = []
        for sp in self.spans:
            events.append({
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "name": sp.name,
                "cat": sp.cat,
                "ts": round(sp.t0_s * 1e6),
                "dur": max(round((sp.t1_s - sp.t0_s) * 1e6), 0),
                "args": {
                    "seq": sp.seq,
                    "parent": sp.parent,
                    "wall_ms": round(sp.wall_s * 1e3, 3),
                    **sp.args,
                },
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: _PathLike) -> None:
        doc = self.chrome_doc()
        pathlib.Path(path).write_text(
            json.dumps(doc, sort_keys=True, indent=1) + "\n"
        )
