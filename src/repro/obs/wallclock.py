"""The observability plane's single wall-clock tap.

Everything in :mod:`repro.obs` is deterministic by default: spans and
metrics carry scenario instants, and wall-clock *durations* appear only
as sidecar fields that are pinned to ``0.0`` unless a hub was built
with this module's :func:`wall_seconds`.  Keeping the one real clock
read here makes ``repro.obs`` auditable the same way
:mod:`repro.serve.realclock` is: this file is on the repro-lint D002
allowlist; nothing else in the package may read the wall clock.
"""

from __future__ import annotations

import time


def wall_seconds() -> float:
    """Monotonic wall-clock seconds, for sidecar durations only.

    Values from here must never reach fingerprinted state — they are
    the "second track" of the two-track clock API (see
    ``docs/observability.md``).
    """
    return time.perf_counter()
