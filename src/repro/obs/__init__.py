"""Deterministic observability plane: metrics, traces, flight recorder.

The control plane's introspection layer, built so that *recording
never perturbs the identity contract*:

- :mod:`repro.obs.registry` — counters, gauges, histograms with fixed
  bucket edges, plus attachment of existing stats objects
  (``GatewayHealth``, ``ShardHealth``, ``JournalStats``) behind their
  plain-attribute APIs;
- :mod:`repro.obs.trace` — structured spans over the per-interval
  decision path, exported as JSONL and Chrome ``trace_event`` JSON
  (``parvagpu ops --trace out.json``, Perfetto-loadable), span trees
  byte-identical across replays under ``VirtualClock``;
- :mod:`repro.obs.flight` — a bounded ring of recent spans and
  decisions, dumped automatically on ``CheckpointError``, safe-mode
  entry, or shard-pool degradation;
- :mod:`repro.obs.prometheus` — the ``GET /metrics`` text exposition;
- :mod:`repro.obs.wallclock` — the package's only wall-clock read
  (D002-allowlisted); everywhere else time is a scenario instant or a
  caller-observed duration.

The two-track clock rule, in one line: *scenario instants are
identity, wall durations are sidecars* — see ``docs/observability.md``.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.hub import ObsHub
from repro.obs.prometheus import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fields_doc,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "ObsHub",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "fields_doc",
    "Tracer",
    "Span",
    "FlightRecorder",
    "render_prometheus",
    "PROMETHEUS_CONTENT_TYPE",
]
