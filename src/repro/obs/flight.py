"""The flight recorder: a bounded ring of recent spans and decisions.

A crashing control plane cannot be asked questions, so the hub keeps
the last ``capacity`` observability entries — closed spans plus
explicit decision notes (path choices, safe-mode entries, shard-pool
degradations) — in a ring that costs one deque append per entry.  On a
``CheckpointError``, safe-mode entry, or shard-pool degradation the
ring is dumped to a JSON document (and optionally a file referenced
from the crash checkpoint) for post-mortem.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque
from typing import Union

from repro.obs.trace import Span

_PathLike = Union[str, pathlib.Path]

FLIGHT_FORMAT = "parvagpu-flight"
FLIGHT_VERSION = 1


class FlightRecorder:
    """Bounded ring of recent observability entries."""

    def __init__(self, capacity: int = 256, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self.dumps = 0
        self.last_dump: dict[str, object] | None = None
        self.last_dump_path: str | None = None
        self._ring: deque[dict[str, object]] = deque(maxlen=capacity)

    def note(
        self, kind: str, *, t_s: float = 0.0, **fields: object
    ) -> None:
        """Record one decision (path choice, degradation, ...)."""
        if not self.enabled:
            return
        self._ring.append({"kind": kind, "t_s": t_s, **fields})

    def add_span(self, span: Span) -> None:
        """Tracer sink: closed spans enter the ring automatically."""
        if not self.enabled:
            return
        self._ring.append({"kind": "span", **span.to_doc()})

    def entries(self) -> list[dict[str, object]]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def dump(
        self, reason: str, path: _PathLike | None = None
    ) -> dict[str, object] | None:
        """Dump the ring; returns the document (``None`` if disabled).

        With ``path`` the document is also written to disk so a crash
        checkpoint can reference it.  Write failures are swallowed —
        the flight recorder must never turn a degradation into a
        crash — but leave ``last_dump_path`` unset.
        """
        if not self.enabled:
            return None
        self.dumps += 1
        doc: dict[str, object] = {
            "format": FLIGHT_FORMAT,
            "version": FLIGHT_VERSION,
            "reason": reason,
            "entries": list(self._ring),
        }
        self.last_dump = doc
        self.last_dump_path = None
        if path is not None:
            try:
                pathlib.Path(path).write_text(
                    json.dumps(doc, sort_keys=True, indent=1) + "\n"
                )
                self.last_dump_path = str(path)
            except OSError:
                pass
        return doc
