"""The SIV-D predictor: plan GPU deployments without physical GPUs.

Every framework in the evaluation exposes a predictor so clients can size
fleets before renting them; for the reproduction this is simply scheduling
against profiled data with no cluster attached, returning the headline
quantities Figures 10/11 plot (GPU count and scheduling delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.core.placement import Placement
from repro.core.service import Service


class _Scheduler(Protocol):  # pragma: no cover - typing helper
    @property
    def name(self) -> str: ...

    def schedule(self, services: Sequence[Service]) -> Placement: ...


@dataclass(frozen=True)
class Prediction:
    """What a client sees when asking "how many GPUs will this take?"."""

    framework: str
    num_gpus: int
    scheduling_delay_ms: float
    total_capacity: float  #: aggregate provisioned requests/s
    total_demand: float  #: aggregate requested requests/s
    placement: Placement

    @property
    def overprovision_factor(self) -> float:
        return self.total_capacity / self.total_demand if self.total_demand else 0.0


class Predictor:
    """Wraps any scheduler into the predictor interface."""

    def __init__(self, scheduler: _Scheduler) -> None:
        self.scheduler = scheduler

    def predict(self, services: Sequence[Service]) -> Prediction:
        placement = self.scheduler.schedule(services)
        capacity = sum(
            seg.capacity for _, seg in placement.iter_segments()
        )
        demand = sum(s.request_rate for s in services)
        return Prediction(
            framework=placement.framework,
            num_gpus=placement.num_gpus,
            scheduling_delay_ms=placement.scheduling_delay_ms,
            total_capacity=capacity,
            total_demand=demand,
            placement=placement,
        )
