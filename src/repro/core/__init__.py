"""ParvaGPU's core: the paper's contribution.

- :mod:`repro.core.service`      -- the Service object (Table II).
- :mod:`repro.core.segments`     -- GPU segments (MPS-enabled MIG instances).
- :mod:`repro.core.configurator` -- Algorithm 1: Optimal Triplet Decision +
  Demand Matching.
- :mod:`repro.core.allocator`    -- Algorithm 2: Segment Relocation +
  Allocation Optimization.
- :mod:`repro.core.slotindex`    -- per-size free-slot indexes, the
  allocator's first-fit fast path (byte-identical placements).
- :mod:`repro.core.placement`    -- the deployment map produced by the
  allocator, shared with every baseline.
- :mod:`repro.core.deployment`   -- mapping a deployment map onto a
  :class:`~repro.gpu.cluster.Cluster`, plus the SIII-F SLO-update path.
- :mod:`repro.core.parvagpu`     -- the end-to-end scheduler facade.
- :mod:`repro.core.hetero`       -- ParvaGPU over heterogeneous clusters
  mixing partition geometries (A100 MIG + MI300X XCD).
- :mod:`repro.core.predictor`    -- the SIV-D predictor (no physical GPUs).
"""

from repro.core.service import Service, InfeasibleServiceError
from repro.core.segments import Segment
from repro.core.placement import GPUPlan, Placement, PlacedSegment
from repro.core.configurator import SegmentConfigurator
from repro.core.allocator import SegmentAllocator, OPTIMIZATION_GPC_THRESHOLD
from repro.core.slotindex import SlotIndex
from repro.core.parvagpu import ParvaGPU
from repro.core.hetero import GeometryPool, HeterogeneousParvaGPU
from repro.core.deployment import DeploymentManager
from repro.core.predictor import Prediction, Predictor

__all__ = [
    "GeometryPool",
    "HeterogeneousParvaGPU",
    "Service",
    "InfeasibleServiceError",
    "Segment",
    "GPUPlan",
    "Placement",
    "PlacedSegment",
    "SegmentConfigurator",
    "SegmentAllocator",
    "SlotIndex",
    "OPTIMIZATION_GPC_THRESHOLD",
    "ParvaGPU",
    "DeploymentManager",
    "Prediction",
    "Predictor",
]
