"""Algorithm 2 — the GPU Segment Allocator.

Two stages:

1. **Segment Relocation** (``SEGMENTRELOCATION``): every service's optimal
   segments (x ``num_opt_seg``) and last segment are enqueued into
   per-size queues; ``ALLOCATION`` then drains the queues largest-size
   first, placing each segment on the first GPU with a feasible slot —
   first-fit-decreasing, the classic heuristic for irregular packing.

   Slot preferences come from the partition geometry.  The MIG geometry
   implements SIII-E1 verbatim:

   * sizes 7 and 4 only fit slot 0;
   * size 3 prefers slot 4 (slot 0 would block slice 3, wasting a GPC);
   * size 2 prefers slots 0/2, avoiding 4/5 which size-3 segments need;
   * size 1 fills slots 0-3 before 4-6 for the same reason.

   The MI300X geometry has no blocking rule — partition sizes tile the 8
   XCDs — but adds a coexistence rule instead: compute-partition modes are
   device-wide, so a GPU only accepts segments of one size and first-fit
   naturally groups same-sized segments per device.

2. **Allocation Optimization** (``ALLOCATIONOPTIMIZATION``): walking GPUs
   from the back, any GPU with at most ``threshold`` (= 4, the paper's
   heuristic) allocated slices is drained; the freed throughput is
   re-covered with small segments (geometry ``small_sizes``) taken from
   each service's optimal-triplet array and repacked into the holes of
   front GPUs.  Surplus capacity from one GPU's split is credited against
   the next (the ``freed_rate`` array), so the split emits the fewest
   small segments possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.placement import GPUPlan, PlacedSegment, Placement
from repro.core.segments import Segment
from repro.core.service import Service
from repro.core.slotindex import SlotIndex
from repro.gpu.geometry import PartitionGeometry, PartitionLayout
from repro.gpu.mig import MIG_GEOMETRY
from repro.profiler.table import ProfileEntry

#: GPUs with at most this many allocated slices are considered fragmented
#: and drained by Allocation Optimization (SIII-E2 sets it to 4
#: heuristically; the same default serves the 8-XCD MI300X well).
OPTIMIZATION_GPC_THRESHOLD = 4

#: MIG slot preferences per segment size (SIII-E1) — retained as module
#: constants for historical callers; the geometry object is the source of
#: truth (``MIG_GEOMETRY.slot_preferences``).
SLOT_PREFERENCES: dict[int, tuple[int, ...]] = dict(
    MIG_GEOMETRY.slot_preferences
)

#: MIG fallback slots, used only when no preferred slot exists on any GPU.
#: Size 3 has none: slot 0 would block slice 3 outright (configurations 5-7
#: of Figure 1), so the allocator opens a new GPU instead — the paper's
#: "the decision is made to place it in that GPU or in the next available
#: GPU, taking into account the constraints of the MIG configurations".
SLOT_FALLBACKS: dict[int, tuple[int, ...]] = dict(MIG_GEOMETRY.slot_fallbacks)


@dataclass
class _GPUState:
    """Mutable per-GPU build state during allocation.

    ``blocked`` marks a GPU that exists only to reserve its id — a
    failed/preempted device that may come back.  First-fit never places
    on it (both the linear scan and the slot index probe through
    ``first_free_slot``), it stays empty so placement assembly drops it,
    but its presence keeps the allocator's fresh-GPU id counter above
    the dead device's id.
    """

    gpu_id: int
    geometry: PartitionGeometry = MIG_GEOMETRY
    layout: PartitionLayout = None  # type: ignore[assignment]
    placed: list[tuple[Segment, int]] = field(default_factory=list)
    blocked: bool = False

    def __post_init__(self) -> None:
        if self.layout is None:
            self.layout = PartitionLayout(self.geometry)

    @property
    def used_gpcs(self) -> int:
        return self.layout.used_gpcs

    @property
    def is_empty(self) -> bool:
        return not self.placed

    def first_free_slot(self, size: int, fallback: bool = False) -> Optional[int]:
        """First preference-ordered slot that can host ``size``, or None."""
        if self.blocked:
            return None
        slots = (
            self.geometry.fallback_slots(size)
            if fallback
            else self.geometry.preferred_slots(size)
        )
        for start in slots:
            if self.layout.can_add(size, start):
                return start
        return None

    def has_free_slot(self, size: int, fallback: bool = False) -> bool:
        return self.first_free_slot(size, fallback=fallback) is not None

    def try_place(self, seg: Segment, fallback: bool = False) -> Optional[int]:
        """Place ``seg`` at a preferred (or fallback) slot, or return None."""
        if seg.geometry.name != self.geometry.name:
            return None  # a segment never lands on a foreign-geometry GPU
        start = self.first_free_slot(seg.instance_size, fallback=fallback)
        if start is None:
            return None
        self.layout.add(self.geometry.place(seg.instance_size, start))
        self.placed.append((seg, start))
        return start

    def free_all(self) -> list[Segment]:
        """Drain every segment, returning them."""
        segs = [s for s, _ in self.placed]
        self.placed.clear()
        self.layout = PartitionLayout(self.geometry)
        return segs


def states_from_placement(
    placement: Placement,
    exclude_service: Optional[str] = None,
    skip_gpu: Optional[int] = None,
) -> list[_GPUState]:
    """Rebuild allocator build-state from a live deployment map.

    Shared by the SIII-F SLO-update path and failover: each plan's state
    carries the plan's own geometry, so incremental re-planning on
    MI300X or mixed placements replays the correct placement rules.
    Segments of ``exclude_service`` are omitted (they are being re-planned).
    """
    from repro.gpu.geometry import get_geometry

    states: list[_GPUState] = []
    for plan in placement.gpus:
        if skip_gpu is not None and plan.gpu_id == skip_gpu:
            continue
        geometry = get_geometry(plan.geometry)
        state = _GPUState(gpu_id=plan.gpu_id, geometry=geometry)
        for seg in plan.segments:
            if exclude_service is not None and seg.service_id == exclude_service:
                continue
            state.layout.add(geometry.place(int(seg.gpcs), seg.start))
            state.placed.append(
                (
                    Segment(
                        service_id=seg.service_id,
                        model=seg.model,
                        instance_size=int(seg.gpcs),
                        batch_size=seg.batch_size,
                        num_processes=seg.num_processes,
                        throughput=seg.capacity,
                        latency_ms=seg.latency_ms,
                        sm_activity=seg.sm_activity,
                        geometry=geometry,
                    ),
                    seg.start,
                )
            )
        states.append(state)
    return states


class SegmentAllocator:
    """Runs Algorithm 2 over configured services.

    ``optimize=False`` yields the ParvaGPU-unoptimized ablation (Segment
    Relocation only, Fig. 7's comparison point).  ``geometry`` selects the
    partition geometry the segments target (MIG by default).

    ``indexed`` (default) routes every first-fit probe through a
    :class:`~repro.core.slotindex.SlotIndex` instead of the linear GPU
    scan.  Placements are byte-identical either way — the index is keyed
    by GPU list position and probes slots in the same preference order —
    so ``indexed=False`` exists only as the reference path for the
    identity property test and the perf harness's naive baseline.
    """

    def __init__(
        self,
        optimize: bool = True,
        threshold: int = OPTIMIZATION_GPC_THRESHOLD,
        geometry: PartitionGeometry = MIG_GEOMETRY,
        indexed: bool = True,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.optimize = optimize
        self.threshold = threshold
        self.geometry = geometry
        self.indexed = indexed

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def make_index(self, gpus: list[_GPUState]) -> Optional[SlotIndex]:
        """A slot index over ``gpus`` (None when running unindexed).

        Incremental callers — the SIII-F SLO-update path and failover —
        rebuild allocator state with :func:`states_from_placement` and
        then index it once here, sharing the index across their
        relocation and optimization calls.
        """
        return SlotIndex(gpus) if self.indexed else None

    def allocate(self, services: Sequence[Service]) -> Placement:
        """Full Algorithm 2: relocation, then optional optimization."""
        gpus: list[_GPUState] = []
        index = self.make_index(gpus)
        self._relocate(services, gpus, index)
        if self.optimize:
            gpus = self.allocation_optimization(gpus, services, index=index)
        return self._to_placement(gpus)

    def segment_relocation(self, services: Sequence[Service]) -> list[_GPUState]:
        """``SEGMENTRELOCATION`` (Algorithm 2 lines 3-10)."""
        gpus: list[_GPUState] = []
        self._relocate(services, gpus, self.make_index(gpus))
        return gpus

    def _relocate(
        self,
        services: Sequence[Service],
        gpus: list[_GPUState],
        index: Optional[SlotIndex],
    ) -> None:
        queues = self._new_queues(self.geometry.instance_sizes)
        for svc in services:
            for seg in svc.segments():
                self._enqueue(queues, seg)
        self._allocation(queues, gpus, self.geometry, index=index)

    def allocation_optimization(
        self,
        gpus: list[_GPUState],
        services: Sequence[Service],
        index: Optional[SlotIndex] = None,
    ) -> list[_GPUState]:
        """``ALLOCATIONOPTIMIZATION`` (Algorithm 2 lines 13-30)."""
        if index is None and self.indexed:
            index = SlotIndex(gpus)
        by_id: dict[str, Service] = {s.id: s for s in services}
        # Optimization consults every hosted service's triplet array when
        # judging a drain candidate, so a hosted service absent from
        # ``services`` would otherwise surface as a bare KeyError deep in
        # the loop (reachable from every incremental caller: SLO updates,
        # failover).  Fail up front with names.
        hosted = {seg.service_id for state in gpus for seg, _ in state.placed}
        missing = sorted(hosted - by_id.keys())
        if missing:
            raise ValueError(
                "placement hosts services missing from the `services` "
                f"argument: {', '.join(missing)}"
            )
        freed_rate: dict[str, float] = {}
        for pos in range(len(gpus) - 1, -1, -1):
            state = gpus[pos]
            if state.is_empty or state.used_gpcs > self.threshold:
                continue
            if state.geometry.name != self.geometry.name:
                # Mixed re-planning (SLO update / failover over a
                # heterogeneous placement): draining a foreign-geometry GPU
                # would re-cover its load with segments carrying the wrong
                # geometry's profiled throughput.  Leave it untouched.
                continue
            splittable = [
                seg
                for seg, _ in state.placed
                if self._small_triplets(
                    by_id[seg.service_id], self.geometry.small_sizes
                )
            ]
            if len(splittable) != len(state.placed):
                continue  # some service cannot be expressed as small segments
            queues = self._new_queues(self.geometry.instance_sizes)
            for seg in state.free_all():
                svc = by_id[seg.service_id]
                freed_rate[svc.id] = freed_rate.get(svc.id, 0.0) + seg.throughput
                for small in self._small_segments(
                    svc, freed_rate[svc.id], self.geometry
                ):
                    freed_rate[svc.id] -= small.throughput
                    self._enqueue(queues, small)
            if index is not None:
                index.touch(pos)  # the drained GPU can host segments again
            self._allocation(queues, gpus, self.geometry, index=index)
        self._compact(gpus, index=index)
        return gpus

    def _compact(
        self, gpus: list[_GPUState], index: Optional[SlotIndex] = None
    ) -> None:
        """Pull small segments from the back into earlier GPUs' holes.

        The final step of "reallocating them to empty spaces, starting from
        the front GPUs": any segment no larger than the geometry's
        ``compact_max_size`` on a later GPU that fits a hole on an earlier
        GPU moves there, so free capacity concentrates at the allocation
        frontier instead of lingering as external fragmentation (and a
        fully-drained tail GPU is released).
        """
        for gi in range(len(gpus) - 1, 0, -1):
            state = gpus[gi]
            for seg, start in sorted(state.placed, key=lambda p: p[0].instance_size):
                if seg.instance_size > state.geometry.compact_max_size:
                    continue
                if index is not None:
                    moved = index.place(seg, limit=gi, interleave=True)
                    if moved is not None:
                        state.placed.remove((seg, start))
                        state.layout.remove(
                            state.geometry.place(seg.instance_size, start)
                        )
                        index.touch(gi)
                    continue
                for earlier in gpus[:gi]:
                    if (
                        earlier.try_place(seg) is not None
                        or earlier.try_place(seg, fallback=True) is not None
                    ):
                        state.placed.remove((seg, start))
                        state.layout.remove(
                            state.geometry.place(seg.instance_size, start)
                        )
                        break

    # ------------------------------------------------------------------ #
    # ALLOCATION (shared by both stages)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _new_queues(
        instance_sizes: tuple[int, ...] = MIG_GEOMETRY.instance_sizes,
    ) -> dict[int, list[Segment]]:
        return {size: [] for size in sorted(instance_sizes, reverse=True)}

    @staticmethod
    def _enqueue(queues: dict[int, list[Segment]], seg: Segment) -> None:
        queues[seg.instance_size].append(seg)

    @staticmethod
    def _allocation(
        queues: dict[int, list[Segment]],
        gpus: list[_GPUState],
        geometry: PartitionGeometry = MIG_GEOMETRY,
        index: Optional[SlotIndex] = None,
    ) -> None:
        """Drain queues largest-size first onto the GPU list.

        Per segment: first-fit over every GPU's *preferred* slots, then over
        fallback slots, then a fresh GPU — so (on MIG) a size-2 only
        occupies the upper half (slots 4/5) once no lower-half position
        exists anywhere, and a size-3 never blocks slice 3 by sitting at
        slot 0.  With ``index`` the probe is a candidate lookup instead of
        a linear scan; the winning GPU and slot are identical.
        """
        if index is not None:
            index.sync()  # pick up GPUs appended since index construction
        next_gpu_id = max((g.gpu_id for g in gpus), default=-1) + 1
        for size in sorted(queues, reverse=True):
            for seg in queues[size]:
                if index is not None:
                    placed = index.place(seg) is not None
                else:
                    placed = any(
                        state.try_place(seg) is not None for state in gpus
                    ) or any(
                        state.try_place(seg, fallback=True) is not None
                        for state in gpus
                    )
                if not placed:
                    state = _GPUState(gpu_id=next_gpu_id, geometry=geometry)
                    next_gpu_id += 1
                    gpus.append(state)
                    if index is not None:
                        index.sync()
                    if state.try_place(seg) is None:  # pragma: no cover
                        raise RuntimeError(
                            f"segment {seg.describe()} unplaceable on empty GPU"
                        )
            queues[size] = []

    # ------------------------------------------------------------------ #
    # SMALLSEGMENTS
    # ------------------------------------------------------------------ #

    @staticmethod
    def _small_triplets(
        service: Service, small_sizes: tuple[int, ...] = MIG_GEOMETRY.small_sizes
    ) -> list[ProfileEntry]:
        """The service's small-size optimal triplets, best tp/slice first."""
        entries = [
            service.opt_tri_array[s]
            for s in small_sizes
            if s in service.opt_tri_array
        ]
        entries.sort(key=lambda e: e.throughput_per_gpc, reverse=True)
        return entries

    @classmethod
    def _small_segments(
        cls,
        service: Service,
        amount: float,
        geometry: PartitionGeometry = MIG_GEOMETRY,
    ) -> list[Segment]:
        """Cover ``amount`` requests/s with small segments (SIII-E2).

        Greedy on throughput-per-slice, but the final chunk drops to the
        smallest triplet that still covers the remainder so the split emits
        minimal capacity surplus.
        """
        if amount <= 0:
            return []
        entries = cls._small_triplets(service, geometry.small_sizes)
        if not entries:
            return []
        smallest_cover = sorted(entries, key=lambda e: e.throughput)
        out: list[Segment] = []
        remaining = amount
        while remaining > 0:
            final = next(
                (e for e in smallest_cover if e.throughput >= remaining), None
            )
            if final is not None:
                out.append(Segment.from_entry(service.id, final, geometry))
                break
            best = entries[0]
            out.append(Segment.from_entry(service.id, best, geometry))
            remaining -= best.throughput
        return out

    # ------------------------------------------------------------------ #
    # result assembly
    # ------------------------------------------------------------------ #

    def _to_placement(self, gpus: Iterable[_GPUState]) -> Placement:
        """Build the deployment map, *preserving* GPU ids.

        Ids are kept (not renumbered) so that incremental callers — the
        SIII-F SLO-update path and failover — produce maps whose unchanged
        segments still match the running cluster instance-for-instance.
        """
        placement = Placement(framework="parvagpu")
        for state in gpus:
            if state.is_empty:
                continue
            plan = GPUPlan(gpu_id=state.gpu_id, geometry=state.geometry.name)
            for seg, start in state.placed:
                plan.segments.append(
                    PlacedSegment(
                        service_id=seg.service_id,
                        model=seg.model,
                        kind=state.geometry.kind,
                        gpcs=float(seg.instance_size),
                        batch_size=seg.batch_size,
                        num_processes=seg.num_processes,
                        capacity=seg.throughput,
                        latency_ms=seg.latency_ms,
                        sm_activity=seg.sm_activity,
                        start=start,
                        geometry=state.geometry.name,
                    )
                )
            placement.gpus.append(plan)
        return placement
