"""Trace-driven autoscaling: re-schedule as request rates move.

Closes the loop the paper leaves as deployment machinery: given per-service
:class:`~repro.sim.traces.RateTrace` objects, the autoscaler re-runs the
scheduler at every epoch boundary where rates changed, deploys the new map
through :class:`~repro.core.deployment.DeploymentManager` (so unchanged
services are untouched), and prices each transition with the SIII-F
reconfiguration cost model (shadow processes on spare GPUs for
zero-downtime swaps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core.deployment import DeploymentManager
from repro.core.parvagpu import ParvaGPU
from repro.core.service import Service
from repro.gpu.reconfig import ReconfigurationCost, ShadowBudget, price_plan
from repro.profiler.table import ProfileTable
from repro.sim.traces import RateTrace, epoch_boundaries


@dataclass(frozen=True)
class ScalingStep:
    """One autoscaling decision."""

    time_s: float
    rates: Mapping[str, float]
    num_gpus: int
    reconfig_ops: int
    unchanged_instances: int
    cost: ReconfigurationCost
    zero_downtime: bool
    #: measured SLO compliance of the epoch's deployment (None when the
    #: run was not asked to simulate serving quality)
    compliance: Optional[float] = None


@dataclass
class ScalingReport:
    """The full trace-driven run."""

    steps: list[ScalingStep] = field(default_factory=list)

    @property
    def peak_gpus(self) -> int:
        return max((s.num_gpus for s in self.steps), default=0)

    @property
    def mean_gpus(self) -> float:
        if not self.steps:
            return 0.0
        return sum(s.num_gpus for s in self.steps) / len(self.steps)

    @property
    def total_reconfig_ops(self) -> int:
        return sum(s.reconfig_ops for s in self.steps)

    @property
    def mean_compliance(self) -> Optional[float]:
        """Mean measured SLO compliance across simulated steps (or None)."""
        vals = [s.compliance for s in self.steps if s.compliance is not None]
        if not vals:
            return None
        return sum(vals) / len(vals)

    def gpu_series(self) -> list[tuple[float, int]]:
        return [(s.time_s, s.num_gpus) for s in self.steps]


class Autoscaler:
    """Re-schedules a ParvaGPU deployment as traces evolve."""

    def __init__(
        self,
        profiles: Mapping[str, ProfileTable],
        spare_gpus: int = 2,
        scheduler: Optional[ParvaGPU] = None,
    ) -> None:
        self.profiles = profiles
        self.scheduler = scheduler if scheduler is not None else ParvaGPU(profiles)
        self.manager = DeploymentManager(profiles)
        self.shadows = ShadowBudget(spare_gpus=spare_gpus)

    def run(
        self,
        services: Sequence[Service],
        traces: Sequence[RateTrace],
        horizon_s: Optional[float] = None,
        measure_s: float = 0.0,
        sim_fast_path: bool = True,
        sim_seed: int = 0,
    ) -> ScalingReport:
        """Walk every epoch boundary, re-scheduling where rates changed.

        With ``measure_s > 0`` every step's deployment is additionally
        *served*: the simulator replays ``measure_s`` seconds of the
        epoch's traffic against the placement and records the measured
        SLO compliance on the step.  ``sim_fast_path`` selects the
        batch-granularity simulation kernel (default) or the per-request
        event-driven reference — without the fast path, measuring a
        fleet-scale trace run is impractical.
        """
        # Work on private copies: a trace run rewrites request rates and
        # Algorithm-1 plan state epoch after epoch, and callers reasonably
        # reuse their Service objects for a second experiment afterwards.
        work = [
            Service(
                id=s.id,
                model=s.model,
                slo_latency_ms=s.slo_latency_ms,
                request_rate=s.request_rate,
                slo_factor=s.slo_factor,
            )
            for s in services
        ]
        by_id = {s.id: s for s in work}
        trace_by_id = {t.service_id: t for t in traces}
        unknown = set(trace_by_id) - set(by_id)
        if unknown:
            raise ValueError(f"traces for unknown services: {sorted(unknown)}")

        report = ScalingReport()
        previous_rates: dict[str, float] = {}
        for t in epoch_boundaries(traces):
            if horizon_s is not None and t >= horizon_s:
                break
            rates = {
                sid: (
                    trace_by_id[sid].rate_at(t)
                    if sid in trace_by_id
                    else by_id[sid].request_rate
                )
                for sid in by_id
            }
            if rates == previous_rates:
                continue

            if self.manager.current is None:
                # First epoch: full schedule + deployment.
                for sid, rate in rates.items():
                    by_id[sid].request_rate = max(rate, 1e-6)
                    by_id[sid].reset_plan()
                placement = self.scheduler.schedule(work)
                plan = self.manager.deploy(placement)
                costs = [price_plan(plan)]
                ops = plan.num_operations
                unchanged = len(plan.unchanged)
            else:
                # Subsequent epochs: the SIII-F incremental path — only
                # services whose rate moved are re-planned and relocated;
                # everything else keeps its instances.
                costs = []
                ops = 0
                unchanged = 0
                placement = self.manager.current
                for sid in sorted(rates):
                    if rates[sid] == previous_rates.get(sid):
                        continue
                    placement, plan = self.manager.update_slo(
                        work,
                        by_id[sid],
                        new_rate=max(rates[sid], 1e-6),
                        use_mps=self.scheduler.use_mps,
                        optimize=self.scheduler.optimize,
                        fast_path=getattr(self.scheduler, "fast_path", True),
                    )
                    costs.append(price_plan(plan))
                    ops += plan.num_operations
                    # Accumulate: with several rates moving in one epoch,
                    # each re-plan reports its own untouched instances.
                    unchanged += len(plan.unchanged)

            total_cost = ReconfigurationCost.combine(costs)
            compliance = None
            if measure_s > 0:
                from repro.sim.runner import simulate_placement

                sim = simulate_placement(
                    placement,
                    work,
                    duration_s=measure_s,
                    warmup_s=0.0,
                    seed=sim_seed,
                    fast_path=sim_fast_path,
                )
                compliance = sim.overall_compliance
            report.steps.append(
                ScalingStep(
                    time_s=t,
                    rates=dict(rates),
                    num_gpus=placement.num_gpus,
                    reconfig_ops=ops,
                    unchanged_instances=unchanged,
                    cost=total_cost,
                    zero_downtime=self.shadows.admit(t, total_cost),
                    compliance=compliance,
                )
            )
            previous_rates = rates
        return report
