"""Scheduling over heterogeneous clusters mixing partition geometries.

The paper's pipeline assumes a fleet of identical MIG-capable GPUs.  A
real cloud pool mixes accelerators — A100s next to MI300Xs — and the
segment formulation extends naturally: each geometry gets its own profile
tables (operating points are hardware-specific), and the scheduler's only
new decision is *which geometry serves which service*.

:class:`HeterogeneousParvaGPU` makes that decision greedily with the same
objective Demand Matching already optimizes (Eq. 2): a service goes to the
pool whose optimal triplet yields the highest throughput per A100-GPC
*equivalent* — the cross-vendor compute unit defined by each geometry's
``gpc_equiv_per_slice`` — so "cheaper" compute wins ties, not bigger
devices.  Each pool then runs the unmodified Algorithm-1/2 pipeline over
its assigned services and the per-pool placements are merged into one
:class:`~repro.core.placement.Placement` whose GPU plans carry their
geometry name.

Pools may be capacity-bounded (``max_gpus``); overfull pools spill their
least-advantaged services to the next-best pool until every pool fits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Optional, Sequence

from repro.core.allocator import SegmentAllocator
from repro.core.configurator import SegmentConfigurator
from repro.core.placement import Placement
from repro.core.service import InfeasibleServiceError, Service
from repro.gpu.geometry import PartitionGeometry
from repro.profiler.table import ProfileTable


@lru_cache(maxsize=None)
def _profiles_for(geometry_name: str) -> Mapping[str, ProfileTable]:
    """Table-IV profiles for one geometry, cached per process."""
    from repro.gpu.geometry import get_geometry
    from repro.profiler import profile_workloads

    geometry = get_geometry(geometry_name)
    if geometry.name == "mig":
        return profile_workloads()
    return profile_workloads(geometry=geometry)


def make_mixed_scheduler(
    geometry_names: Sequence[str] = ("mig", "mi300x"),
    use_mps: bool = True,
    optimize: bool = True,
    fast_path: bool = True,
) -> "HeterogeneousParvaGPU":
    """The standard mixed-fleet scheduler over Table-IV profiles.

    Shared by the CLI's ``--geometry mixed`` path and the ``geo``
    experiment so the fleet wiring lives in one place; profiles are
    cached per process.
    """
    from repro.gpu.geometry import get_geometry

    return HeterogeneousParvaGPU(
        [
            GeometryPool(get_geometry(name), _profiles_for(name))
            for name in geometry_names
        ],
        use_mps=use_mps,
        optimize=optimize,
        fast_path=fast_path,
    )


@dataclass
class GeometryPool:
    """One homogeneous sub-fleet: a geometry, its profiles, an optional cap."""

    geometry: PartitionGeometry
    profiles: Mapping[str, ProfileTable]
    max_gpus: Optional[int] = None

    @property
    def name(self) -> str:
        return self.geometry.name


class HeterogeneousParvaGPU:
    """ParvaGPU across a cluster mixing partition geometries.

    ``pools`` is ordered: earlier pools win efficiency ties, so put the
    incumbent fleet first for placement stability.
    """

    def __init__(
        self,
        pools: Sequence[GeometryPool],
        use_mps: bool = True,
        optimize: bool = True,
        fast_path: bool = True,
    ) -> None:
        if not pools:
            raise ValueError("need at least one geometry pool")
        names = [p.name for p in pools]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate geometry pools: {names}")
        self.pools = list(pools)
        self.use_mps = use_mps
        self.optimize = optimize
        self.fast_path = fast_path
        self._configurators = {
            p.name: SegmentConfigurator(
                p.profiles,
                max_processes=3 if use_mps else 1,
                geometry=p.geometry,
                memoize=fast_path,
            )
            for p in self.pools
        }

    @property
    def name(self) -> str:
        return "parvagpu-hetero[" + "+".join(p.name for p in self.pools) + "]"

    # ------------------------------------------------------------------ #
    # service -> pool assignment
    # ------------------------------------------------------------------ #

    def efficiency(self, service: Service, pool: GeometryPool) -> Optional[float]:
        """Best throughput per GPC-equivalent on ``pool``, None if infeasible."""
        configurator = self._configurators[pool.name]
        # triplet_decision writes service.opt_tri_array as a side effect;
        # restore it so scoring a pool never leaves another geometry's
        # triplets on the service (demand_matching reuses a non-empty
        # opt_tri_array verbatim).
        saved = service.opt_tri_array
        try:
            tri = configurator.triplet_decision(service)
        except InfeasibleServiceError:
            return None
        finally:
            service.opt_tri_array = saved
        return max(
            e.throughput / pool.geometry.gpc_equivalent(e.instance_size)
            for e in tri.values()
        )

    def assign(self, services: Sequence[Service]) -> dict[str, list[Service]]:
        """Greedy Eq.-2 assignment of every service to one pool."""
        assignment: dict[str, list[Service]] = {p.name: [] for p in self.pools}
        self._scores: dict[str, dict[str, float]] = {}
        for svc in services:
            scores = {
                p.name: eff
                for p in self.pools
                if (eff := self.efficiency(svc, p)) is not None
            }
            if not scores:
                raise InfeasibleServiceError(
                    f"{svc.id}: no geometry pool has an operating point "
                    f"meeting {svc.effective_slo_ms:.1f} ms"
                )
            self._scores[svc.id] = scores
            best = max(scores, key=lambda name: scores[name])
            assignment[best].append(svc)
        return assignment

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def schedule(self, services: Sequence[Service]) -> Placement:
        """Assign, schedule per pool, spill over caps, merge placements."""
        t0 = time.perf_counter()  # repro-lint: disable=D002 (scheduling delay is fig9's measured quantity, not simulated state)
        assignment = self.assign(services)
        placements = self._schedule_pools(assignment)

        # Spill services out of capacity-capped pools, least regret first.
        for _ in range(len(services)):
            over = next(
                (
                    p
                    for p in self.pools
                    if p.max_gpus is not None
                    and placements[p.name] is not None
                    and placements[p.name].num_gpus > p.max_gpus
                ),
                None,
            )
            if over is None:
                break
            moved = self._spill_one(assignment, over)
            if not moved:
                raise InfeasibleServiceError(
                    f"pool {over.name}: exceeds {over.max_gpus} GPUs and no "
                    f"service can move to another pool"
                )
            placements = self._schedule_pools(assignment)

        # The spill loop is bounded; if it exhausted without converging
        # (e.g. two over-tight caps ping-ponging services), fail loudly
        # rather than returning a placement that violates a cap.
        for pool in self.pools:
            placement = placements[pool.name]
            if (
                pool.max_gpus is not None
                and placement is not None
                and placement.num_gpus > pool.max_gpus
            ):
                raise InfeasibleServiceError(
                    f"pool {pool.name}: needs {placement.num_gpus} GPUs but "
                    f"is capped at {pool.max_gpus}"
                )

        merged = self._merge(placements)
        merged.scheduling_delay_ms = (time.perf_counter() - t0) * 1e3  # repro-lint: disable=D002 (stopwatch stop for the fig9 delay measurement)
        merged.assign_rates({s.id: s.request_rate for s in services})
        merged.validate()
        return merged

    def _schedule_pools(
        self, assignment: Mapping[str, list[Service]]
    ) -> dict[str, Optional[Placement]]:
        out: dict[str, Optional[Placement]] = {}
        for pool in self.pools:
            svcs = assignment[pool.name]
            if not svcs:
                out[pool.name] = None
                continue
            self._configurators[pool.name].configure(svcs)
            allocator = SegmentAllocator(
                optimize=self.optimize, geometry=pool.geometry,
                indexed=self.fast_path,
            )
            out[pool.name] = allocator.allocate(svcs)
        return out

    def _spill_one(
        self, assignment: dict[str, list[Service]], over: GeometryPool
    ) -> bool:
        """Move the least-advantaged service out of ``over``; True on success."""
        best: Optional[tuple[float, Service, str]] = None
        for svc in assignment[over.name]:
            scores = self._scores[svc.id]
            others = {n: s for n, s in scores.items() if n != over.name}
            if not others:
                continue
            target = max(others, key=lambda name: others[name])
            regret = scores[over.name] - others[target]
            if best is None or regret < best[0]:
                best = (regret, svc, target)
        if best is None:
            return False
        _, svc, target = best
        assignment[over.name].remove(svc)
        assignment[target].append(svc)
        return True

    def _merge(
        self, placements: Mapping[str, Optional[Placement]]
    ) -> Placement:
        merged = Placement(framework=self.name)
        offset = 0
        for pool in self.pools:
            placement = placements[pool.name]
            if placement is None:
                continue
            for plan in placement.gpus:
                if plan.is_empty:
                    continue
                plan.gpu_id += offset
                merged.gpus.append(plan)
            if merged.gpus:
                offset = max(p.gpu_id for p in merged.gpus) + 1
        return merged
