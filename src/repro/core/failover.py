"""GPU failure handling on top of the SIII-F incremental machinery.

Cloud GPUs fail (or get preempted — the paper cites SpotServe's preemptible
instances as a serving reality).  When a GPU dies, every segment it hosted
loses capacity; the recovery path mirrors the SLO-update path: the affected
services' lost segments are re-enqueued and relocated into the surviving
map (growing the fleet only if no hole fits), while untouched services keep
serving.

Failures are not permanent: a preempted spot GPU that comes back (or a
failed device that is repaired) rejoins the fleet through
:meth:`FailoverController.restore_gpu`, which registers it as a *spare*
with the :class:`~repro.core.deployment.DeploymentManager` — the next
incremental re-plan sees the restored capacity as an empty GPU appended
after the live fleet, so it is drafted exactly when no existing hole fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.allocator import SegmentAllocator, _GPUState
from repro.core.deployment import DeploymentManager
from repro.core.placement import Placement
from repro.core.segments import Segment
from repro.core.service import Service
from repro.gpu.geometry import get_geometry
from repro.gpu.reconfig import ReconfigurationCost, price_plan
from repro.profiler.table import ProfileTable


@dataclass(frozen=True)
class FailoverResult:
    """Outcome of recovering from one GPU failure."""

    failed_gpu: int
    affected_services: tuple[str, ...]
    lost_capacity: Mapping[str, float]  #: requests/s lost per service
    placement: Placement  #: the recovered deployment map
    cost: ReconfigurationCost
    gpus_before: int
    gpus_after: int
    reconfig_ops: int = 0  #: MIG/MPS create+destroy operations executed


class FailoverController:
    """Recovers deployments from GPU failures (and takes GPUs back)."""

    def __init__(
        self,
        profiles: Mapping[str, ProfileTable],
        manager: DeploymentManager,
        optimize: bool = True,
        fast_path: bool = True,
    ) -> None:
        self.profiles = profiles
        self.manager = manager
        self.optimize = optimize
        # fast_path=False recovers on the naive scans — identical
        # placements, kept as the reference baseline.
        self.fast_path = fast_path

    @property
    def failed(self) -> dict[int, str]:
        """GPUs currently out of the fleet: gpu_id -> geometry name.

        Shared with the deployment manager (``retired_gpus``), which
        keeps every re-plan from reusing a dead device's id.
        ``restore_gpu`` consumes entries; a full re-schedule renumbers
        GPU ids, so callers that re-plan from scratch must ``reset()``.
        """
        return self.manager.retired_gpus

    def fail_gpu(
        self, gpu_id: int, services: Sequence[Service]
    ) -> FailoverResult:
        """Handle the loss of ``gpu_id``: relocate its segments elsewhere."""
        current = self.manager.current
        if current is None:
            raise RuntimeError("nothing deployed yet")
        victim = next((g for g in current.gpus if g.gpu_id == gpu_id), None)
        if victim is None or victim.is_empty:
            raise ValueError(f"GPU {gpu_id} hosts no segments")

        # Recovery re-plans *every* hosted service's capacity accounting
        # (allocation optimization splits survivors' segments too), so a
        # hosted service missing from ``services`` would surface deep in
        # Algorithm 2 as a bare KeyError.  Fail up front with names.
        known = {s.id for s in services}
        hosted = {seg.service_id for _, seg in current.iter_segments()}
        missing = sorted(hosted - known)
        if missing:
            raise ValueError(
                "deployment hosts services missing from the `services` "
                f"argument: {', '.join(missing)}"
            )

        victim_geometry = get_geometry(victim.geometry)
        lost: dict[str, float] = {}
        lost_segments: list[Segment] = []
        for seg in victim.segments:
            lost[seg.service_id] = lost.get(seg.service_id, 0.0) + seg.capacity
            lost_segments.append(
                Segment(
                    service_id=seg.service_id,
                    model=seg.model,
                    instance_size=int(seg.gpcs),
                    batch_size=seg.batch_size,
                    num_processes=seg.num_processes,
                    throughput=seg.capacity,
                    latency_ms=seg.latency_ms,
                    sm_activity=seg.sm_activity,
                    geometry=victim_geometry,
                )
            )

        # Retire the victim first: its id must stay reserved (a blocked
        # sentinel in the build state) so relocation can neither place on
        # the dead device nor hand its id to a fresh GPU.  Then rebuild
        # allocator state from every *surviving* GPU (plus any registered
        # spares), each under its own geometry, and index the survivors'
        # free slots once.
        self.manager.retired_gpus[gpu_id] = victim.geometry
        gpus: list[_GPUState] = self.manager.build_states(skip_gpu=gpu_id)

        allocator = SegmentAllocator(
            optimize=self.optimize, geometry=victim_geometry,
            indexed=self.fast_path,
        )
        index = allocator.make_index(gpus)
        queues = allocator._new_queues(victim_geometry.instance_sizes)
        for seg in lost_segments:
            allocator._enqueue(queues, seg)
        allocator._allocation(queues, gpus, victim_geometry, index=index)
        if self.optimize:
            gpus = allocator.allocation_optimization(
                gpus, list(services), index=index
            )

        placement = allocator._to_placement(gpus)
        placement.framework = current.framework
        placement.assign_rates({s.id: s.request_rate for s in services})
        gpus_before = current.num_gpus
        plan = self.manager.deploy(placement)
        return FailoverResult(
            failed_gpu=gpu_id,
            affected_services=tuple(sorted(lost)),
            lost_capacity=lost,
            placement=placement,
            cost=price_plan(plan),
            gpus_before=gpus_before,
            gpus_after=placement.num_gpus,
            reconfig_ops=plan.num_operations,
        )

    def restore_gpu(self, gpu_id: int) -> str:
        """Return a failed/preempted GPU to the free pool.

        The GPU re-registers as a spare with the deployment manager — the
        incremental allocator state every re-plan builds includes spares
        as empty GPUs, so the restored capacity is visible to the very
        next re-plan without touching anything currently serving.
        Returns the geometry name of the restored device.
        """
        try:
            geometry = self.failed.pop(gpu_id)
        except KeyError:
            raise ValueError(
                f"GPU {gpu_id} is not registered as failed"
            ) from None
        current = self.manager.current
        if current is not None and any(
            g.gpu_id == gpu_id and not g.is_empty for g in current.gpus
        ):  # pragma: no cover - registry corruption guard
            raise ValueError(f"GPU {gpu_id} is currently hosting segments")
        self.manager.spare_gpus[gpu_id] = geometry
        return geometry

    def reset(self) -> None:
        """Forget failed/spare bookkeeping (after a from-scratch re-plan).

        A full re-schedule renumbers GPU ids, so failed-GPU ids recorded
        against the old map are meaningless; callers that fall back to a
        full re-plan clear both registries.
        """
        self.manager.retired_gpus.clear()
        self.manager.spare_gpus.clear()
