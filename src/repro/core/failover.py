"""GPU failure handling on top of the SIII-F incremental machinery.

Cloud GPUs fail (or get preempted — the paper cites SpotServe's preemptible
instances as a serving reality).  When a GPU dies, every segment it hosted
loses capacity; the recovery path mirrors the SLO-update path: the affected
services' lost segments are re-enqueued and relocated into the surviving
map (growing the fleet only if no hole fits), while untouched services keep
serving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.allocator import (
    SegmentAllocator,
    _GPUState,
    states_from_placement,
)
from repro.core.deployment import DeploymentManager
from repro.core.placement import Placement
from repro.core.segments import Segment
from repro.core.service import Service
from repro.gpu.geometry import get_geometry
from repro.gpu.reconfig import ReconfigurationCost, price_plan
from repro.profiler.table import ProfileTable


@dataclass(frozen=True)
class FailoverResult:
    """Outcome of recovering from one GPU failure."""

    failed_gpu: int
    affected_services: tuple[str, ...]
    lost_capacity: Mapping[str, float]  #: requests/s lost per service
    placement: Placement  #: the recovered deployment map
    cost: ReconfigurationCost
    gpus_before: int
    gpus_after: int


class FailoverController:
    """Recovers deployments from GPU failures."""

    def __init__(
        self,
        profiles: Mapping[str, ProfileTable],
        manager: DeploymentManager,
        optimize: bool = True,
        fast_path: bool = True,
    ) -> None:
        self.profiles = profiles
        self.manager = manager
        self.optimize = optimize
        # fast_path=False recovers on the naive scans — identical
        # placements, kept as the reference baseline.
        self.fast_path = fast_path

    def fail_gpu(
        self, gpu_id: int, services: Sequence[Service]
    ) -> FailoverResult:
        """Handle the loss of ``gpu_id``: relocate its segments elsewhere."""
        current = self.manager.current
        if current is None:
            raise RuntimeError("nothing deployed yet")
        victim = next((g for g in current.gpus if g.gpu_id == gpu_id), None)
        if victim is None or victim.is_empty:
            raise ValueError(f"GPU {gpu_id} hosts no segments")

        # Recovery re-plans *every* hosted service's capacity accounting
        # (allocation optimization splits survivors' segments too), so a
        # hosted service missing from ``services`` would surface deep in
        # Algorithm 2 as a bare KeyError.  Fail up front with names.
        known = {s.id for s in services}
        hosted = {seg.service_id for _, seg in current.iter_segments()}
        missing = sorted(hosted - known)
        if missing:
            raise ValueError(
                "deployment hosts services missing from the `services` "
                f"argument: {', '.join(missing)}"
            )

        victim_geometry = get_geometry(victim.geometry)
        lost: dict[str, float] = {}
        lost_segments: list[Segment] = []
        for seg in victim.segments:
            lost[seg.service_id] = lost.get(seg.service_id, 0.0) + seg.capacity
            lost_segments.append(
                Segment(
                    service_id=seg.service_id,
                    model=seg.model,
                    instance_size=int(seg.gpcs),
                    batch_size=seg.batch_size,
                    num_processes=seg.num_processes,
                    throughput=seg.capacity,
                    latency_ms=seg.latency_ms,
                    sm_activity=seg.sm_activity,
                    geometry=victim_geometry,
                )
            )

        # Rebuild allocator state from every *surviving* GPU, each under
        # its own geometry, and index the survivors' free slots once.
        gpus: list[_GPUState] = states_from_placement(current, skip_gpu=gpu_id)

        allocator = SegmentAllocator(
            optimize=self.optimize, geometry=victim_geometry,
            indexed=self.fast_path,
        )
        index = allocator.make_index(gpus)
        queues = allocator._new_queues(victim_geometry.instance_sizes)
        for seg in lost_segments:
            allocator._enqueue(queues, seg)
        allocator._allocation(queues, gpus, victim_geometry, index=index)
        if self.optimize:
            gpus = allocator.allocation_optimization(
                gpus, list(services), index=index
            )

        placement = allocator._to_placement(gpus)
        placement.framework = current.framework
        placement.assign_rates({s.id: s.request_rate for s in services})
        gpus_before = current.num_gpus
        plan = self.manager.deploy(placement)
        return FailoverResult(
            failed_gpu=gpu_id,
            affected_services=tuple(sorted(lost)),
            lost_capacity=lost,
            placement=placement,
            cost=price_plan(plan),
            gpus_before=gpus_before,
            gpus_after=placement.num_gpus,
        )
