"""The Service object — Table II of the paper.

A service is one DNN inference workload registered by a client: a model, an
SLO latency, and a request rate to sustain.  The Segment Configurator fills
in the remaining fields (``opt_tri_array``, ``opt_seg``, ``num_opt_seg``,
``last_seg``) as Algorithm 1 executes.

Like gpulet and iGniter, ParvaGPU budgets for server-side queueing by
giving the placement algorithms only *half* the client-facing SLO
(``slo_factor = 0.5``, citing Nexus [12]); the other half absorbs batching
and queueing delay at serving time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.models.zoo import ModelSpec, get_model

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.segments import Segment
    from repro.profiler.table import ProfileEntry


class InfeasibleServiceError(RuntimeError):
    """No operating point can meet the service's SLO (or its rate)."""


#: Fraction of the client SLO given to the placement algorithms (SIV-A,
#: following Nexus): the rest is headroom for queueing at serving time.
DEFAULT_SLO_FACTOR = 0.5


@dataclass
class Service:
    """One inference workload and its Segment-Configurator state."""

    id: str  #: service identification number / name
    model: str  #: workload zoo key (Table IV column)
    slo_latency_ms: float  #: client-facing SLO latency (``lat``)
    request_rate: float  #: requests/s to sustain (``req_rate``)
    slo_factor: float = DEFAULT_SLO_FACTOR

    #: Algorithm-1 outputs (Table II), populated by the Segment Configurator.
    opt_tri_array: dict[int, "ProfileEntry"] = field(default_factory=dict)
    opt_seg: Optional["Segment"] = None
    num_opt_seg: int = 0
    last_seg: Optional["Segment"] = None

    def __post_init__(self) -> None:
        if self.slo_latency_ms <= 0:
            raise ValueError(f"{self.id}: SLO latency must be positive")
        if self.request_rate <= 0:
            raise ValueError(f"{self.id}: request rate must be positive")
        if not 0 < self.slo_factor <= 1:
            raise ValueError(f"{self.id}: slo_factor must be in (0, 1]")
        # Fail fast on unknown models.
        self.spec  # noqa: B018

    @property
    def spec(self) -> ModelSpec:
        return get_model(self.model)

    @property
    def effective_slo_ms(self) -> float:
        """The latency bound Algorithm 1 actually enforces."""
        return self.slo_latency_ms * self.slo_factor

    def segments(self) -> list["Segment"]:
        """The full segment set decided by Demand Matching."""
        out: list["Segment"] = []
        if self.opt_seg is not None:
            out.extend([self.opt_seg] * self.num_opt_seg)
        if self.last_seg is not None:
            out.append(self.last_seg)
        return out

    def planned_throughput(self) -> float:
        """Aggregate capacity of the decided segment set (requests/s)."""
        return sum(s.throughput for s in self.segments())

    def planned_gpcs(self) -> int:
        """Total GPCs the decided segment set consumes."""
        return sum(s.instance_size for s in self.segments())

    def reset_plan(self) -> None:
        """Drop Configurator outputs (used by the SLO-update path)."""
        self.opt_tri_array = {}
        self.opt_seg = None
        self.num_opt_seg = 0
        self.last_seg = None
