"""Per-size free-slot indexes — the Segment Allocator's fast path.

Algorithm 2's ``ALLOCATION`` is first-fit: every segment linearly probes
every GPU's preferred slots, then every GPU's fallback slots.  That scan
is O(GPUs x slots) per segment and quadratic over a whole schedule —
invisible at the paper's 8-64 GPU scale, a wall for fleet-scale runs.

:class:`SlotIndex` replaces the probe with a candidate lookup.  For every
``(geometry, instance size, preferred/fallback)`` key it keeps a min-heap
of GPU *list positions* that may still host such an instance.  First-fit
identity is the design constraint, not an accident:

- the heap minimum is exactly the first GPU the linear scan would reach,
  because candidates are keyed by position in the allocator's GPU list
  (the order the naive loop walks), not by GPU id;
- the slot chosen within the winning GPU is ``_GPUState.first_free_slot``,
  the same preference-ordered probe ``try_place`` runs;
- placing a segment only ever *shrinks* feasibility, so entries are never
  pushed after a placement — they go stale in place and are discarded
  lazily when a query finds them infeasible.  Capacity only *grows* on
  segment removal (``touch`` re-registers the GPU).

Both of Algorithm 2's probe orders are supported: ``ALLOCATION`` exhausts
preferred slots across the whole fleet before trying any fallback slot
(``interleave=False``), while the compaction pass tries preferred-then-
fallback per GPU (``interleave=True``).  A ``limit`` bounds the search to
positions below a cutoff, which is how compaction only looks at GPUs in
front of the segment being moved.

Amortized cost: each GPU is pushed O(sizes) times per capacity-growing
event and popped at most once per push, so a schedule of S segments over
G GPUs runs in O((S + G) log G) heap work instead of O(S x G) probes.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.allocator import _GPUState
    from repro.core.segments import Segment

#: Heap key: (geometry registry name, instance size, is_fallback).
_Key = tuple[str, int, bool]


class SlotIndex:
    """Candidate-GPU index over a (shared, append-only) ``_GPUState`` list.

    The allocator keeps appending to the same list object; ``sync`` picks
    up the new tail.  Positions are stable because GPUs are never removed
    from the list (empty states are dropped only at placement assembly).
    """

    def __init__(self, gpus: list["_GPUState"]) -> None:
        self._gpus = gpus
        self._heaps: dict[_Key, list[int]] = {}
        self._members: dict[_Key, set[int]] = {}
        self._known = 0
        self.sync()

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def sync(self) -> None:
        """Register every GPU appended to the list since the last call."""
        while self._known < len(self._gpus):
            self.touch(self._known)
            self._known += 1

    def touch(self, pos: int) -> None:
        """Re-register ``pos`` after its free capacity may have *grown*.

        Pushes the position into every key of the GPU's own geometry
        *without* probing feasibility: candidates are a superset, and
        ``first_candidate`` validates (and lazily discards) them at query
        time anyway.  Probing here would cost O(sizes x slots) per GPU on
        every index build — most of which pays for keys the allocation
        never queries (a failover replan only places the victim's sizes).
        Idempotent; shrinking events need no call.
        """
        state = self._gpus[pos]
        if state.blocked:  # retired id sentinels never host anything
            return
        geometry = state.geometry
        for size in geometry.instance_sizes:
            for fallback in (False, True):
                self._push((geometry.name, size, fallback), pos)

    def rebuild(self) -> None:
        """Drop everything and re-index the whole list from scratch."""
        self._heaps.clear()
        self._members.clear()
        self._known = 0
        self.sync()

    def _push(self, key: _Key, pos: int) -> None:
        members = self._members.setdefault(key, set())
        if pos not in members:
            members.add(pos)
            heapq.heappush(self._heaps.setdefault(key, []), pos)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def first_candidate(
        self,
        geometry_name: str,
        size: int,
        fallback: bool = False,
        limit: Optional[int] = None,
    ) -> Optional[int]:
        """Lowest GPU position that can host ``size`` right now, or None.

        ``limit`` restricts the answer to positions strictly below it.
        Infeasible heap heads are popped for good (feasibility only
        returns via ``touch``); a feasible head at/beyond ``limit`` stays.
        """
        key = (geometry_name, size, fallback)
        heap = self._heaps.get(key)
        if not heap:
            return None
        members = self._members[key]
        while heap:
            pos = heap[0]
            if self._gpus[pos].has_free_slot(size, fallback=fallback):
                if limit is not None and pos >= limit:
                    return None
                return pos
            heapq.heappop(heap)
            members.discard(pos)
        return None

    def place(
        self,
        seg: "Segment",
        limit: Optional[int] = None,
        interleave: bool = False,
    ) -> Optional[int]:
        """First-fit ``seg`` onto an existing GPU; its position, or None.

        ``interleave=False`` replays ``ALLOCATION``'s order: any preferred
        slot anywhere beats every fallback slot.  ``interleave=True``
        replays the compaction order: the first GPU with *either* kind of
        slot wins, preferring its preferred slot on a tie.
        """
        name = seg.geometry.name
        size = seg.instance_size
        preferred = self.first_candidate(name, size, False, limit)
        if interleave:
            fb = self.first_candidate(name, size, True, limit)
            if preferred is None or (fb is not None and fb < preferred):
                pos, use_fallback = fb, True
            else:
                pos, use_fallback = preferred, False
        else:
            if preferred is not None:
                pos, use_fallback = preferred, False
            else:
                pos = self.first_candidate(name, size, True, limit)
                use_fallback = True
        if pos is None:
            return None
        start = self._gpus[pos].try_place(seg, fallback=use_fallback)
        if start is None:  # pragma: no cover - candidates are validated
            raise RuntimeError(
                f"slot index returned infeasible GPU {pos} for "
                f"{seg.describe()}"
            )
        return pos
