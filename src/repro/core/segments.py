"""GPU segments: process-shared partition instances running one workload.

A segment is the paper's unit of allocation — an (instance size, batch
size, process count) triplet bound to a service, carrying the profiled
throughput and latency of that operating point.  Segments are
geometry-tagged: the default is the MIG geometry (sizes 1/2/3/4/7), an
MI300X segment carries the XCD geometry (sizes 1/2/4/8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.geometry import PartitionGeometry
from repro.gpu.mig import MIG_GEOMETRY
from repro.profiler.table import ProfileEntry


@dataclass(frozen=True)
class Segment:
    """One GPU segment as decided by the Segment Configurator."""

    service_id: str
    model: str
    instance_size: int  #: slices: 1, 2, 3, 4 or 7 on MIG; 1, 2, 4, 8 on MI300X
    batch_size: int
    num_processes: int
    throughput: float  #: profiled aggregate requests/s
    latency_ms: float  #: profiled per-batch latency
    sm_activity: float  #: profiled SM activity at full load
    geometry: PartitionGeometry = field(default=MIG_GEOMETRY, compare=False)

    def __post_init__(self) -> None:
        if self.instance_size not in self.geometry.instance_sizes:
            raise ValueError(
                f"no {self.geometry.name} instance of size {self.instance_size}"
            )
        if self.batch_size < 1 or self.num_processes < 1:
            raise ValueError("batch size and process count must be >= 1")
        if self.throughput <= 0:
            raise ValueError("segment throughput must be positive")

    @property
    def triplet(self) -> tuple[int, int, int]:
        return (self.instance_size, self.batch_size, self.num_processes)

    @property
    def sm_count(self) -> int:
        return self.instance_size * self.geometry.sms_per_slice

    @property
    def throughput_per_gpc(self) -> float:
        return self.throughput / self.instance_size

    @classmethod
    def from_entry(
        cls,
        service_id: str,
        entry: ProfileEntry,
        geometry: PartitionGeometry = MIG_GEOMETRY,
    ) -> "Segment":
        """Build a segment from a profiled operating point."""
        return cls(
            service_id=service_id,
            model=entry.model,
            instance_size=entry.instance_size,
            batch_size=entry.batch_size,
            num_processes=entry.num_processes,
            throughput=entry.throughput,
            latency_ms=entry.latency_ms,
            sm_activity=entry.sm_activity,
            geometry=geometry,
        )

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``svc@3g b8 p2 (1234 req/s)``."""
        return (
            f"{self.service_id}@{self.instance_size}g "
            f"b{self.batch_size} p{self.num_processes} "
            f"({self.throughput:.0f} req/s)"
        )
