"""Algorithm 1 — the GPU Segment Configurator.

Two stages, exactly as the paper decomposes them:

1. **Optimal Triplet Decision** (``TRIPLETDECISION``): for each of the five
   instance sizes, find the (batch, procs) maximizing throughput among
   profiled points whose latency beats the service's (effective) SLO.
   The result is the service's ``opt_tri_array`` — at most five triplets.

2. **Demand Matching** (``DEMANDMATCHING``): pick the *optimal segment* —
   the triplet maximizing throughput **per GPC** (the Eq. 1/2 argument shows
   this greedy choice minimizes total GPCs, making the tree search O(1)) —
   take ``floor(rate / tp)`` copies of it, then cover the remaining rate
   with the *last segment*: the smallest instance size whose optimal
   triplet still satisfies the leftover.  Low request rates take the
   ``num_opt_seg = 0`` path and get a single right-sized segment, which is
   what prevents internal slack on small services.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional

from repro.core.segments import Segment
from repro.core.service import InfeasibleServiceError, Service
from repro.gpu.geometry import PartitionGeometry
from repro.gpu.mig import MIG_GEOMETRY
from repro.profiler.table import PROFILE_EPS as _EPS
from repro.profiler.table import ProfileEntry, ProfileTable


class SegmentConfigurator:
    """Runs Algorithm 1 over a set of services.

    ``max_processes`` exists for the ParvaGPU-single ablation: setting it
    to 1 restricts the triplet search to single-process points, i.e. MIG
    without MPS.  ``geometry`` selects the partition geometry the profiles
    were measured on (MIG by default); the algorithm itself is
    geometry-agnostic — it only reads instance sizes out of the profiles.

    ``memoize`` (default) caches triplet decisions on the profile tables,
    keyed by (model — the table itself, effective SLO, max processes, and
    geometry — tables are per-geometry): services sharing an operating
    regime resolve to the same ``opt_tri_array`` without rescanning the
    table.  ``memoize=False`` is the reference path for the perf harness's
    naive baseline; decisions are identical either way.
    """

    def __init__(
        self,
        profiles: Mapping[str, ProfileTable],
        max_processes: int = 3,
        geometry: PartitionGeometry = MIG_GEOMETRY,
        memoize: bool = True,
    ) -> None:
        if max_processes < 1:
            raise ValueError("max_processes must be >= 1")
        self.profiles = profiles
        self.max_processes = max_processes
        self.geometry = geometry
        self.memoize = memoize

    # ------------------------------------------------------------------ #
    # stage 1: Optimal Triplet Decision
    # ------------------------------------------------------------------ #

    def triplet_decision(self, service: Service) -> dict[int, ProfileEntry]:
        """``TRIPLETDECISION`` for one service (Algorithm 1 lines 3-12).

        Returns the ``max_triplets`` array: instance size -> the profiled
        point of maximum throughput whose latency is below the effective
        SLO.  Sizes with no feasible point are absent (e.g. too tight an
        SLO for a size-1 instance, or OOM everywhere).
        """
        table = self._table(service)
        best = table.best_triplets(
            service.effective_slo_ms, self.max_processes, memoize=self.memoize
        )
        if not best:
            raise InfeasibleServiceError(
                f"{service.id}: no (instance, batch, procs) point meets "
                f"{service.effective_slo_ms:.1f} ms"
            )
        service.opt_tri_array = best
        return best

    # ------------------------------------------------------------------ #
    # stage 2: Demand Matching
    # ------------------------------------------------------------------ #

    def demand_matching(self, service: Service) -> Service:
        """``DEMANDMATCHING`` for one service (Algorithm 1 lines 15-21)."""
        if not service.opt_tri_array:
            self.triplet_decision(service)
        tri = service.opt_tri_array

        opt_entry = self._opt_segment_entry(tri)
        opt_seg = Segment.from_entry(service.id, opt_entry, self.geometry)

        # line 18: floor(rate / tp) full optimal segments ...  The small
        # relative nudge keeps exact multiples of the segment throughput
        # from losing a segment to floating-point rounding, and leftovers
        # below one part per million of a segment are treated as zero.
        num_opt = math.floor(
            service.request_rate / opt_seg.throughput * (1 + 1e-9)
        )
        left = service.request_rate - num_opt * opt_seg.throughput
        if left < 1e-6 * opt_seg.throughput:
            left = 0.0

        # lines 19-20: ... and the smallest instance size that covers the
        # remaining rate as the last segment.  Within that size the point is
        # rate-matched, not throughput-maximal: the paper notes lines 19-20
        # "enable the selection of a segment suitable for that particular
        # request rate", which is what keeps the last segment's internal
        # slack down when the leaf demand is low.
        last: Optional[Segment] = None
        if left > _EPS:
            last_entry = self._last_segment_entry(tri, left)
            if last_entry is None:
                # Defensive: the optimal segment itself always qualifies
                # (left < opt tp), so this cannot trigger with a coherent
                # triplet array — but profiles are caller-supplied.
                last_entry = opt_entry
            last_entry = self._rate_matched_entry(service, last_entry, left)
            last = Segment.from_entry(service.id, last_entry, self.geometry)

        service.opt_seg = opt_seg
        service.num_opt_seg = num_opt
        service.last_seg = last
        return service

    def configure(self, services: Iterable[Service]) -> list[Service]:
        """Run both stages for every service (the full Algorithm 1)."""
        out = []
        for svc in services:
            self.triplet_decision(svc)
            self.demand_matching(svc)
            out.append(svc)
        return out

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _table(self, service: Service) -> ProfileTable:
        try:
            return self.profiles[service.model]
        except KeyError:
            raise InfeasibleServiceError(
                f"{service.id}: model {service.model!r} was never profiled"
            ) from None

    @staticmethod
    def _opt_segment_entry(tri: Mapping[int, ProfileEntry]) -> ProfileEntry:
        """``OPTSEG``: maximize throughput / instance size (Eq. 2)."""
        return max(
            tri.values(),
            key=lambda e: (e.throughput_per_gpc, -e.instance_size),
        )

    @staticmethod
    def _last_segment_entry(
        tri: Mapping[int, ProfileEntry], left_rate: float
    ) -> Optional[ProfileEntry]:
        """``LASTSEG``: smallest instance size covering ``left_rate``."""
        for size in sorted(tri):
            entry = tri[size]
            if entry.throughput >= left_rate - _EPS:
                return entry
        return None

    def _rate_matched_entry(
        self, service: Service, candidate: ProfileEntry, left_rate: float
    ) -> ProfileEntry:
        """Tightest SLO-feasible point of ``candidate``'s size >= the rate."""
        table = self._table(service)
        best = candidate
        for e in table.entries_for_size(candidate.instance_size):
            if e.num_processes > self.max_processes:
                continue
            if e.latency_ms >= service.effective_slo_ms:
                continue
            if e.throughput >= left_rate - _EPS and e.throughput < best.throughput:
                best = e
        return best
