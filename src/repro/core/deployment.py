"""Deployment and the SIII-F SLO-update path.

``DeploymentManager`` owns a :class:`~repro.gpu.cluster.Cluster` and keeps
it in sync with the latest placement.  The SLO-update path re-runs the
Segment Configurator for *one* service, removes only that service's
segments from the deployment map, re-relocates them into the existing map
and re-optimizes — so services whose placement did not change are not
reconfigured (the paper's reconfiguration-overhead argument).

The manager also tracks **spare GPUs**: devices that are known-good but
currently host nothing, e.g. a preempted spot GPU that came back
(:meth:`~repro.core.failover.FailoverController.restore_gpu`).  Every
incremental re-plan rebuilds its allocator state through
:meth:`build_states`, which appends the spares as empty per-GPU states
*after* the live GPUs — restored capacity is visible to the very next
re-plan, but first-fit still prefers holes in the live fleet, so a spare
is only drafted when no existing hole fits.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.allocator import (
    SegmentAllocator,
    _GPUState,
    states_from_placement,
)
from repro.core.configurator import SegmentConfigurator
from repro.core.placement import Placement
from repro.core.service import Service
from repro.gpu.cluster import Cluster, ReconfigurationPlan
from repro.gpu.geometry import PartitionGeometry
from repro.gpu.mig import MIG_GEOMETRY
from repro.profiler.table import ProfileTable


class DeploymentManager:
    """Keeps a physical (simulated) cluster in sync with placements.

    ``geometry`` is the geometry of the *profiles* handed in — the one the
    SLO-update path re-plans with (MIG by default).  Per-GPU state during
    incremental re-planning always follows each plan's own geometry.
    """

    def __init__(
        self,
        profiles: Mapping[str, ProfileTable],
        cluster: Optional[Cluster] = None,
        geometry: PartitionGeometry = MIG_GEOMETRY,
    ) -> None:
        self.profiles = profiles
        self.geometry = geometry
        self.cluster = (
            cluster if cluster is not None else Cluster(geometry=geometry)
        )
        self.current: Optional[Placement] = None
        #: Known-good empty GPUs available to re-plans: gpu_id -> geometry
        #: name.  Populated by ``FailoverController.restore_gpu``.
        self.spare_gpus: dict[int, str] = {}
        #: GPUs out of service (failed/preempted, not yet restored):
        #: gpu_id -> geometry name.  Their ids stay reserved — a re-plan
        #: must never hand a dead device's id to a fresh GPU, or a later
        #: restore would collide with live capacity.
        self.retired_gpus: dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # initial deployment
    # ------------------------------------------------------------------ #

    def deploy(self, placement: Placement) -> ReconfigurationPlan:
        """Reconfigure the cluster to host ``placement``.

        Returns the reconfiguration plan that was executed; its
        ``unchanged`` list is the set of instances that kept serving
        throughout (the paper's shadow-process-free fast path).
        """
        placement.validate()
        plan = self.cluster.plan_reconfiguration(placement.to_instance_specs())
        self.cluster.execute(plan)
        self.current = placement
        # A spare that the re-plan drafted is spare no longer.
        if self.spare_gpus:
            occupied = {g.gpu_id for g in placement.gpus if not g.is_empty}
            self.spare_gpus = {
                gid: name
                for gid, name in self.spare_gpus.items()
                if gid not in occupied
            }
        return plan

    # ------------------------------------------------------------------ #
    # incremental allocator state
    # ------------------------------------------------------------------ #

    def build_states(
        self,
        exclude_service: Optional[str] = None,
        skip_gpu: Optional[int] = None,
    ) -> list[_GPUState]:
        """Allocator build-state of the live map, spares included.

        The shared entry point of every incremental re-plan (SLO updates,
        failover, departures): per-GPU states are rebuilt from the current
        placement (each under its own geometry) and the registered spare
        GPUs are appended as empty states in gpu-id order, so restored
        capacity is drafted only when no hole in the live fleet fits.

        Retired GPUs (failed, not yet restored) are appended as *blocked*
        sentinel states: first-fit can never place on them and
        ``_to_placement`` drops them, but their presence keeps the
        allocator's fresh-GPU id counter above every dead device's id —
        so a later restore never collides with live capacity.
        """
        from repro.gpu.geometry import get_geometry

        if self.current is None:
            raise RuntimeError("nothing deployed yet")
        states = states_from_placement(
            self.current, exclude_service=exclude_service, skip_gpu=skip_gpu
        )
        live = {s.gpu_id for s in states}
        for gid in sorted(self.spare_gpus):
            if gid in live or gid == skip_gpu:
                continue
            states.append(
                _GPUState(gpu_id=gid, geometry=get_geometry(self.spare_gpus[gid]))
            )
        for gid in sorted(self.retired_gpus):
            if gid in live:
                continue
            states.append(
                _GPUState(
                    gpu_id=gid,
                    geometry=get_geometry(self.retired_gpus[gid]),
                    blocked=True,
                )
            )
        return states

    # ------------------------------------------------------------------ #
    # service departure
    # ------------------------------------------------------------------ #

    def remove_service(
        self, services: Sequence[Service], departed_id: str
    ) -> tuple[Placement, ReconfigurationPlan]:
        """Tear down one service, leaving every other segment in place.

        ``services`` is the *remaining* fleet (the departed service
        excluded) — its rates are re-assigned over the surviving map.
        GPUs fully emptied by the departure are released (scale-in), not
        kept as spares: a spare records restored capacity, not a tenant
        leaving.
        """
        if self.current is None:
            raise RuntimeError("nothing deployed yet")
        if not self.current.segments_of(departed_id):
            raise ValueError(f"service {departed_id!r} hosts no segments")
        gpus = self.build_states(exclude_service=departed_id)
        allocator = SegmentAllocator(geometry=self.geometry)
        placement = allocator._to_placement(gpus)
        placement.framework = self.current.framework
        placement.assign_rates({s.id: s.request_rate for s in services})
        plan = self.deploy(placement)
        return placement, plan

    # ------------------------------------------------------------------ #
    # SLO update (SIII-F)
    # ------------------------------------------------------------------ #

    def update_slo(
        self,
        services: Sequence[Service],
        changed: Service,
        new_slo_ms: Optional[float] = None,
        new_rate: Optional[float] = None,
        use_mps: bool = True,
        optimize: bool = True,
        fast_path: bool = True,
    ) -> tuple[Placement, ReconfigurationPlan]:
        """Re-plan one service without re-profiling or moving the others.

        Implements SIII-F: the Segment Configurator reconstructs only the
        changed service's segments; the deployment map keeps every other
        service where it is; relocation + optimization run for the changed
        service's segments only.  ``fast_path=False`` re-plans on the
        naive scans (identical placements, reference baseline).
        """
        if self.current is None:
            raise RuntimeError("nothing deployed yet")
        if new_slo_ms is not None:
            changed.slo_latency_ms = new_slo_ms
        if new_rate is not None:
            changed.request_rate = new_rate
        changed.reset_plan()

        configurator = SegmentConfigurator(
            self.profiles, max_processes=3 if use_mps else 1,
            geometry=self.geometry, memoize=fast_path,
        )
        configurator.configure([changed])

        # Rebuild allocator state from the current map (each plan under its
        # own geometry) plus any spare GPUs, minus the changed service's
        # segments; the slot index is rebuilt over the surviving states
        # once and shared by relocation and optimization.
        gpus: list[_GPUState] = self.build_states(exclude_service=changed.id)

        allocator = SegmentAllocator(
            optimize=optimize, geometry=self.geometry, indexed=fast_path
        )
        index = allocator.make_index(gpus)
        queues = allocator._new_queues(self.geometry.instance_sizes)
        for seg in changed.segments():
            allocator._enqueue(queues, seg)
        allocator._allocation(queues, gpus, self.geometry, index=index)
        if optimize:
            gpus = allocator.allocation_optimization(
                gpus, list(services), index=index
            )
        placement = allocator._to_placement(gpus)
        placement.framework = self.current.framework
        placement.assign_rates({s.id: s.request_rate for s in services})
        plan = self.deploy(placement)
        return placement, plan
