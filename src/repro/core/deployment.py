"""Deployment and the SIII-F SLO-update path.

``DeploymentManager`` owns a :class:`~repro.gpu.cluster.Cluster` and keeps
it in sync with the latest placement.  The SLO-update path re-runs the
Segment Configurator for *one* service, removes only that service's
segments from the deployment map, re-relocates them into the existing map
and re-optimizes — so services whose placement did not change are not
reconfigured (the paper's reconfiguration-overhead argument).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.allocator import (
    SegmentAllocator,
    _GPUState,
    states_from_placement,
)
from repro.core.configurator import SegmentConfigurator
from repro.core.placement import Placement
from repro.core.service import Service
from repro.gpu.cluster import Cluster, ReconfigurationPlan
from repro.gpu.geometry import PartitionGeometry
from repro.gpu.mig import MIG_GEOMETRY
from repro.profiler.table import ProfileTable


class DeploymentManager:
    """Keeps a physical (simulated) cluster in sync with placements.

    ``geometry`` is the geometry of the *profiles* handed in — the one the
    SLO-update path re-plans with (MIG by default).  Per-GPU state during
    incremental re-planning always follows each plan's own geometry.
    """

    def __init__(
        self,
        profiles: Mapping[str, ProfileTable],
        cluster: Optional[Cluster] = None,
        geometry: PartitionGeometry = MIG_GEOMETRY,
    ) -> None:
        self.profiles = profiles
        self.geometry = geometry
        self.cluster = (
            cluster if cluster is not None else Cluster(geometry=geometry)
        )
        self.current: Optional[Placement] = None

    # ------------------------------------------------------------------ #
    # initial deployment
    # ------------------------------------------------------------------ #

    def deploy(self, placement: Placement) -> ReconfigurationPlan:
        """Reconfigure the cluster to host ``placement``.

        Returns the reconfiguration plan that was executed; its
        ``unchanged`` list is the set of instances that kept serving
        throughout (the paper's shadow-process-free fast path).
        """
        placement.validate()
        plan = self.cluster.plan_reconfiguration(placement.to_instance_specs())
        self.cluster.execute(plan)
        self.current = placement
        return plan

    # ------------------------------------------------------------------ #
    # SLO update (SIII-F)
    # ------------------------------------------------------------------ #

    def update_slo(
        self,
        services: Sequence[Service],
        changed: Service,
        new_slo_ms: Optional[float] = None,
        new_rate: Optional[float] = None,
        use_mps: bool = True,
        optimize: bool = True,
        fast_path: bool = True,
    ) -> tuple[Placement, ReconfigurationPlan]:
        """Re-plan one service without re-profiling or moving the others.

        Implements SIII-F: the Segment Configurator reconstructs only the
        changed service's segments; the deployment map keeps every other
        service where it is; relocation + optimization run for the changed
        service's segments only.  ``fast_path=False`` re-plans on the
        naive scans (identical placements, reference baseline).
        """
        if self.current is None:
            raise RuntimeError("nothing deployed yet")
        if new_slo_ms is not None:
            changed.slo_latency_ms = new_slo_ms
        if new_rate is not None:
            changed.request_rate = new_rate
        changed.reset_plan()

        configurator = SegmentConfigurator(
            self.profiles, max_processes=3 if use_mps else 1,
            geometry=self.geometry, memoize=fast_path,
        )
        configurator.configure([changed])

        # Rebuild allocator state from the current map (each plan under its
        # own geometry), minus the changed service's segments; the slot
        # index is rebuilt over the surviving states once and shared by
        # relocation and optimization.
        gpus: list[_GPUState] = states_from_placement(
            self.current, exclude_service=changed.id
        )

        allocator = SegmentAllocator(
            optimize=optimize, geometry=self.geometry, indexed=fast_path
        )
        index = allocator.make_index(gpus)
        queues = allocator._new_queues(self.geometry.instance_sizes)
        for seg in changed.segments():
            allocator._enqueue(queues, seg)
        allocator._allocation(queues, gpus, self.geometry, index=index)
        if optimize:
            gpus = allocator.allocation_optimization(
                gpus, list(services), index=index
            )
        placement = allocator._to_placement(gpus)
        placement.framework = self.current.framework
        placement.assign_rates({s.id: s.request_rate for s in services})
        plan = self.deploy(placement)
        return placement, plan
