"""Deployment maps: where every partition of every service lives.

:class:`Placement` is the common result type of *all* schedulers in this
repository (ParvaGPU and every baseline), so the metrics layer, simulator
and experiment harnesses are framework-agnostic.  Three partition kinds
exist:

- ``"mig"`` — a MIG-backed GPU segment with an integral size and start slot
  (ParvaGPU, MIG-serving);
- ``"mps"`` — an MPS percentage slice of a whole GPU with a fractional GPC
  share and no slot (gpulet, iGniter);
- ``"xcd"`` — an AMD XCD compute partition with an integral size and start
  slot (the MI300X geometry).

Every segment and GPU plan additionally carries the *name* of the
partition geometry it was scheduled against (default ``"mig"``), which is
how heterogeneous placements keep A100 and MI300X devices apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Literal, Optional

from repro.gpu.geometry import PartitionLayout, get_geometry
from repro.gpu.cluster import InstanceSpec
from repro.gpu.mig import SMS_PER_GPC

PartitionKind = Literal["mig", "mps", "xcd"]


@dataclass(frozen=True)
class PlacedSegment:
    """One partition of one service pinned to a GPU."""

    service_id: str
    model: str
    kind: PartitionKind
    gpcs: float  #: integral slice count for MIG/XCD; fractional share * 7 for MPS
    batch_size: int
    num_processes: int
    capacity: float  #: requests/s the partition sustains at this point
    latency_ms: float  #: expected per-batch latency (incl. interference)
    sm_activity: float  #: SM activity when fully loaded
    start: Optional[int] = None  #: slice start slot; None for MPS
    served_rate: float = 0.0  #: requests/s actually routed here
    geometry: str = "mig"  #: partition-geometry registry name

    def __post_init__(self) -> None:
        if self.kind in ("mig", "xcd"):
            if self.start is None:
                raise ValueError(f"{self.kind} partitions need a start slot")
            if abs(self.gpcs - round(self.gpcs)) > 1e-9:
                raise ValueError(
                    f"{self.kind} partitions have integral slice sizes"
                )
        limit = get_geometry(self.geometry).num_slices
        if self.gpcs <= 0 or self.gpcs > limit:
            raise ValueError(f"partition size {self.gpcs} outside (0, {limit}]")
        if self.capacity <= 0:
            raise ValueError("partition capacity must be positive")

    @property
    def sm_count(self) -> float:
        """Compute units in the device's own accounting (SMs or CUs)."""
        return get_geometry(self.geometry).sms_of(self.gpcs)

    @property
    def effective_gpcs(self) -> float:
        """Compute share in A100-GPC equivalents (the perf-model's unit)."""
        return get_geometry(self.geometry).gpc_equivalent(self.gpcs)

    @property
    def sm_equiv(self) -> float:
        """A100-SM equivalents (``SMS_PER_GPC`` x GPC-equivalents).

        The cross-vendor weight for metrics: raw ``sm_count`` mixes SMs
        and CUs on heterogeneous placements.  Identical to ``sm_count``
        for MIG segments.
        """
        return SMS_PER_GPC * self.effective_gpcs

    @property
    def load_fraction(self) -> float:
        """Fraction of capacity actually exercised by routed traffic."""
        return min(1.0, self.served_rate / self.capacity)

    def with_served_rate(self, rate: float) -> "PlacedSegment":
        # __dict__-level clone: assign_rates calls this once per segment
        # per re-plan, and both dataclasses.replace() and the generated
        # frozen __init__ (object.__setattr__ per field + __post_init__
        # revalidation of fields that cannot have changed) are measurable
        # at fleet scale.  served_rate is the only field that differs and
        # __post_init__ never constrains it.
        clone = object.__new__(PlacedSegment)
        d = clone.__dict__
        d.update(self.__dict__)
        d["served_rate"] = rate
        return clone


@dataclass
class GPUPlan:
    """All partitions assigned to one GPU."""

    gpu_id: int
    segments: list[PlacedSegment] = field(default_factory=list)
    geometry: str = "mig"  #: partition-geometry registry name of the device

    @property
    def used_gpcs(self) -> float:
        return sum(s.gpcs for s in self.segments)

    @property
    def total_sms(self) -> float:
        return float(get_geometry(self.geometry).total_sms)

    @property
    def is_empty(self) -> bool:
        return not self.segments

    def validate(self) -> None:
        """Check partition legality / MPS quota on this GPU."""
        geo = get_geometry(self.geometry)
        layout = PartitionLayout(geo)
        mps_share = 0.0
        for seg in self.segments:
            if seg.kind in ("mig", "xcd"):
                layout.add(geo.place(int(seg.gpcs), seg.start))  # raises
            else:
                mps_share += seg.gpcs / 7.0
        if mps_share > 1.0 + 1e-9:
            raise ValueError(
                f"GPU {self.gpu_id}: MPS shares sum to {mps_share:.2f} > 1"
            )
        if mps_share > 0 and len(layout):
            raise ValueError(
                f"GPU {self.gpu_id}: mixing whole-GPU MPS partitions with MIG"
            )


@dataclass
class Placement:
    """A full deployment map plus scheduling metadata."""

    framework: str
    gpus: list[GPUPlan] = field(default_factory=list)
    scheduling_delay_ms: float = 0.0
    rates_assigned: bool = False  #: set when the scheduler routed traffic itself

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def gpu(self, gpu_id: int) -> GPUPlan:
        while len(self.gpus) <= gpu_id:
            self.gpus.append(GPUPlan(gpu_id=len(self.gpus)))
        return self.gpus[gpu_id]

    def add(self, gpu_id: int, segment: PlacedSegment) -> None:
        plan = self.gpu(gpu_id)
        if plan.is_empty:
            plan.geometry = segment.geometry
        elif segment.geometry != plan.geometry:
            raise ValueError(
                f"GPU {gpu_id} is {plan.geometry}; cannot add a "
                f"{segment.geometry} segment"
            )
        plan.segments.append(segment)

    def drop_empty_gpus(self) -> None:
        """Renumber away trailing/interior empty GPUs."""
        live = [g for g in self.gpus if not g.is_empty]
        for new_id, plan in enumerate(live):
            plan.gpu_id = new_id
        self.gpus = live

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def num_gpus(self) -> int:
        """GPUs hosting at least one partition (Fig. 5's metric)."""
        return sum(1 for g in self.gpus if not g.is_empty)

    def geometries(self) -> tuple[str, ...]:
        """Distinct geometry names used by non-empty plans, sorted."""
        return tuple(sorted({g.geometry for g in self.gpus if not g.is_empty}))

    def iter_segments(self) -> Iterator[tuple[int, PlacedSegment]]:
        for g in self.gpus:
            for s in g.segments:
                yield g.gpu_id, s

    def segments_of(self, service_id: str) -> list[PlacedSegment]:
        return [s for _, s in self.iter_segments() if s.service_id == service_id]

    def service_ids(self) -> tuple[str, ...]:
        return tuple(sorted({s.service_id for _, s in self.iter_segments()}))

    def total_capacity(self, service_id: str) -> float:
        return sum(s.capacity for s in self.segments_of(service_id))

    def allocated_sms(self) -> float:
        return sum(s.sm_count for _, s in self.iter_segments())

    def total_sms(self) -> float:
        return sum(g.total_sms for g in self.gpus if not g.is_empty)

    def validate(self) -> None:
        for g in self.gpus:
            g.validate()

    def fingerprint(self) -> str:
        """Canonical byte-form of the deployment map.

        Covers every non-empty GPU plan and segment field but excludes
        timing metadata (``scheduling_delay_ms``) and the framework label,
        so two schedulers that produce the same map — e.g. the indexed
        and naive allocator paths — fingerprint identically.
        """
        # Direct f-string rendering instead of json.dumps over per-segment
        # dicts: fingerprints are only ever *compared*, never parsed, and
        # JSON encoding dominated fleet-scale identity checking (several
        # fingerprints per ops interval at 10k services).  Floats render
        # via repr, so distinct values never collide.
        if len(PlacedSegment.__dataclass_fields__) != 12:
            raise AssertionError(
                "PlacedSegment grew a field; extend fingerprint() to cover it"
            )
        return "\n".join(
            f"{g.gpu_id}|{g.geometry}"
            + "".join(
                f";{s.service_id},{s.model},{s.kind},{s.gpcs!r},"
                f"{s.batch_size},{s.num_processes},{s.capacity!r},"
                f"{s.latency_ms!r},{s.sm_activity!r},{s.start},"
                f"{s.served_rate!r},{s.geometry}"
                for s in g.segments
            )
            for g in self.gpus
            if not g.is_empty
        )

    # ------------------------------------------------------------------ #
    # traffic assignment
    # ------------------------------------------------------------------ #

    def assign_rates(
        self, rates: dict[str, float], policy: str = "proportional"
    ) -> None:
        """Distribute each service's request rate over its partitions.

        ``"proportional"`` (default) spreads the rate according to
        capacity, which is the steady state of a least-loaded router and
        keeps every partition's utilization strictly below one.  ``"fill"``
        saturates partitions in descending throughput-per-GPC order
        instead (optimal segments at capacity, the rate-matched last
        segment absorbing the remainder).
        """
        # One pass over the map groups partitions by service; the old
        # per-service rescan was O(services x segments) and dominated
        # fleet-scale scheduling wall-clock.
        refs_by_service: dict[str, list[tuple[GPUPlan, int]]] = {}
        for g in self.gpus:
            for i, s in enumerate(g.segments):
                refs_by_service.setdefault(s.service_id, []).append((g, i))
        for service_id, rate in rates.items():
            refs = refs_by_service.get(service_id, [])
            if not refs:
                raise ValueError(f"no partitions for service {service_id!r}")
            if policy == "proportional":
                total = sum(g.segments[i].capacity for g, i in refs)
                for g, i in refs:
                    s = g.segments[i]
                    share = rate * s.capacity / total
                    if s.served_rate != share:  # skip the no-op copy
                        g.segments[i] = s.with_served_rate(share)
            elif policy == "fill":
                refs.sort(
                    key=lambda ref: ref[0].segments[ref[1]].capacity
                    / ref[0].segments[ref[1]].gpcs,
                    reverse=True,
                )
                remaining = rate
                for g, i in refs:
                    s = g.segments[i]
                    share = min(s.capacity, remaining)
                    g.segments[i] = s.with_served_rate(share)
                    remaining -= share
                if remaining > 1e-6:
                    # Demand beyond planned capacity: overload the largest
                    # partition (the simulator will show the violations).
                    g, i = refs[0]
                    s = g.segments[i]
                    g.segments[i] = s.with_served_rate(s.served_rate + remaining)
            else:
                raise ValueError(f"unknown routing policy {policy!r}")
        self.rates_assigned = True

    # ------------------------------------------------------------------ #
    # deployment
    # ------------------------------------------------------------------ #

    def to_instance_specs(self) -> list[InstanceSpec]:
        """Slotted deployments as cluster instance specs (SIII-F)."""
        specs: list[InstanceSpec] = []
        for gpu_id, seg in self.iter_segments():
            if seg.kind not in ("mig", "xcd"):
                raise ValueError(
                    "only slotted (MIG/XCD) placements deploy to clusters"
                )
            specs.append(
                InstanceSpec(
                    gpu_id=gpu_id,
                    size=int(seg.gpcs),
                    start=seg.start,  # type: ignore[arg-type]
                    owner=seg.service_id,
                    num_processes=seg.num_processes,
                    batch_size=seg.batch_size,
                    geometry=seg.geometry,
                )
            )
        return specs


def merge_gpu_plans(framework: str, plans: Iterable[GPUPlan]) -> Placement:
    """Assemble a placement from per-GPU plans (renumbering empties away)."""
    p = Placement(framework=framework, gpus=list(plans))
    p.drop_empty_gpus()
    return p
