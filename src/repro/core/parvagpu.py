"""The end-to-end ParvaGPU scheduler facade.

``ParvaGPU.schedule(services)`` runs Algorithm 1 (Segment Configurator)
followed by Algorithm 2 (Segment Allocator) and returns a validated
:class:`~repro.core.placement.Placement` with the measured scheduling
delay attached.  The two ablation variants of the evaluation are flags:

- ``use_mps=False``  -> ParvaGPU-single (process count capped at 1);
- ``optimize=False`` -> ParvaGPU-unoptimized (no Allocation Optimization).

``geometry`` retargets the whole pipeline at another partition geometry
(e.g. :data:`repro.gpu.amd.MI300X_GEOMETRY`); the supplied profiles must
then have been measured on that geometry
(``profile_workloads(geometry=...)``).  For clusters mixing geometries use
:class:`repro.core.hetero.HeterogeneousParvaGPU`.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional, Sequence

from repro.core.allocator import OPTIMIZATION_GPC_THRESHOLD, SegmentAllocator
from repro.core.configurator import SegmentConfigurator
from repro.core.placement import Placement
from repro.core.service import Service
from repro.gpu.geometry import PartitionGeometry
from repro.gpu.mig import MIG_GEOMETRY
from repro.profiler.table import ProfileTable


class ParvaGPU:
    """Configurator + Allocator pipeline (Fig. 2)."""

    def __init__(
        self,
        profiles: Mapping[str, ProfileTable],
        use_mps: bool = True,
        optimize: bool = True,
        threshold: int = OPTIMIZATION_GPC_THRESHOLD,
        geometry: Optional[PartitionGeometry] = None,
        fast_path: bool = True,
    ) -> None:
        self.profiles = profiles
        self.use_mps = use_mps
        self.optimize = optimize
        self.geometry = geometry or MIG_GEOMETRY
        # ``fast_path`` turns on the indexed allocator and memoized
        # configurator together; placements are byte-identical either way,
        # so False exists only as the reference baseline for the perf
        # harness and identity tests.
        self.fast_path = fast_path
        self.configurator = SegmentConfigurator(
            profiles, max_processes=3 if use_mps else 1,
            geometry=self.geometry, memoize=fast_path,
        )
        self.allocator = SegmentAllocator(
            optimize=optimize, threshold=threshold, geometry=self.geometry,
            indexed=fast_path,
        )

    @property
    def name(self) -> str:
        suffix = "" if self.geometry is MIG_GEOMETRY else f"@{self.geometry.name}"
        if not self.use_mps:
            return f"parvagpu-single{suffix}"
        if not self.optimize:
            return f"parvagpu-unoptimized{suffix}"
        return f"parvagpu{suffix}"

    def schedule(self, services: Sequence[Service]) -> Placement:
        """Run the full pipeline, timing it (Fig. 9's scheduling delay)."""
        t0 = time.perf_counter()  # repro-lint: disable=D002 (scheduling delay is fig9's measured quantity, not simulated state)
        self.configurator.configure(services)
        placement = self.allocator.allocate(services)
        delay_ms = (time.perf_counter() - t0) * 1e3  # repro-lint: disable=D002 (stopwatch stop for the fig9 delay measurement)
        placement.framework = self.name
        placement.scheduling_delay_ms = delay_ms
        placement.assign_rates({s.id: s.request_rate for s in services})
        placement.validate()
        return placement
