"""The Profiler of SIII-C.

Sweeps each workload over the active geometry's instance sizes x eight
batch sizes (1..128, powers of two) x process counts {1,2,3}, recording
throughput and latency and *omitting* operating points that would exhaust
the instance's framebuffer — exactly the grid (and the OOM gaps) visible
in Figures 3/4.  The default geometry is A100-class MIG (sizes
{1,2,3,4,7}); pass ``geometry=get_geometry("mi300x")`` to sweep the AMD
XCD sizes {1,2,4,8} against the MI300X memory maps instead.

On real hardware this step launches inference servers on reconfigured
instances; here each measurement is an
:class:`~repro.models.perf.PerfModel` evaluation, optionally perturbed by
a small deterministic measurement noise so that downstream algorithms
cannot overfit to an exact analytic surface.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.gpu.geometry import PartitionGeometry
from repro.models.perf import (
    PROFILE_BATCH_SIZES,
    PROFILE_PROCESS_COUNTS,
    PerfModel,
)
from repro.models.zoo import ModelSpec, WORKLOADS, get_model
from repro.profiler.table import ProfileEntry, ProfileTable


def _noise_factor(key: str, amplitude: float) -> float:
    """Deterministic multiplicative noise in [1-amplitude, 1+amplitude]."""
    digest = hashlib.sha256(key.encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2**64
    return 1.0 + amplitude * (2.0 * unit - 1.0)


@dataclass
class Profiler:
    """Produces :class:`ProfileTable` objects for registered services.

    ``noise`` is the relative amplitude of simulated measurement jitter
    (default 1%).  Zero gives the exact analytic surface, which the
    calibration tests use.  ``geometry=None`` keeps the historical
    MIG sweep (and its exact noise stream) bit-for-bit.
    """

    instance_sizes: Optional[tuple[int, ...]] = None
    batch_sizes: tuple[int, ...] = PROFILE_BATCH_SIZES
    process_counts: tuple[int, ...] = PROFILE_PROCESS_COUNTS
    noise: float = 0.01
    geometry: Optional[PartitionGeometry] = None
    _cache: dict[str, ProfileTable] = field(default_factory=dict)

    def _sizes(self) -> tuple[int, ...]:
        if self.instance_sizes is not None:
            return self.instance_sizes
        if self.geometry is not None:
            return self.geometry.instance_sizes
        from repro.gpu.mig import INSTANCE_SIZES

        return INSTANCE_SIZES

    def _perf(self, spec: ModelSpec) -> PerfModel:
        return PerfModel(spec, geometry=self.geometry)

    def _cache_key(self, spec: ModelSpec) -> str:
        geo = self.geometry.name if self.geometry is not None else "mig"
        return f"{geo}/{spec.name}"

    def profile(self, spec: ModelSpec) -> ProfileTable:
        """Measure the full grid for one workload (cached)."""
        key = self._cache_key(spec)
        if key in self._cache:
            return self._cache[key]
        perf = self._perf(spec)
        table = ProfileTable(spec.name)
        for g in self._sizes():
            for b in self.batch_sizes:
                for p in self.process_counts:
                    if not perf.fits(g, b, p):
                        continue  # OOM: point absent, as in Fig. 3/4
                    point = perf.evaluate(g, b, p)
                    lat = point.latency_ms * _noise_factor(
                        f"{spec.name}/{g}/{b}/{p}/lat", self.noise
                    )
                    tp = point.throughput * _noise_factor(
                        f"{spec.name}/{g}/{b}/{p}/tp", self.noise
                    )
                    table.add(
                        ProfileEntry(
                            model=spec.name,
                            instance_size=g,
                            batch_size=b,
                            num_processes=p,
                            latency_ms=lat,
                            throughput=tp,
                            memory_gb=point.memory_gb,
                            sm_activity=point.sm_activity,
                        )
                    )
        if not len(table):
            raise RuntimeError(
                f"{spec.name}: no feasible operating point fits any instance"
            )
        self._cache[key] = table
        return table

    def profile_by_name(self, name: str) -> ProfileTable:
        return self.profile(get_model(name))

    def estimated_profiling_cost_s(self, spec: ModelSpec, per_point_s: float = 10.0) -> float:
        """Rough wall-clock a real profiling run would take (for reports)."""
        perf = self._perf(spec)
        n = sum(
            1
            for g in self._sizes()
            for b in self.batch_sizes
            for p in self.process_counts
            if perf.fits(g, b, p)
        )
        return n * per_point_s


def profile_workloads(
    names: Iterable[str] | None = None,
    noise: float = 0.01,
    geometry: Optional[PartitionGeometry] = None,
) -> Mapping[str, ProfileTable]:
    """Profile a set of workloads (default: the full Table-IV zoo).

    ``geometry`` retargets the sweep (sizes + memory maps + compute scale)
    at another partition geometry; omit it for the paper's A100 MIG grid.
    """
    profiler = Profiler(noise=noise, geometry=geometry)
    selected = list(names) if names is not None else sorted(WORKLOADS)
    return {name: profiler.profile_by_name(name) for name in selected}
