"""Profile storage: the ``P`` array consumed by Algorithm 1.

A :class:`ProfileTable` holds every measured operating point of one
workload.  The Segment Configurator's TRIPLETDECISION iterates over it;
lookup helpers keep the baselines honest (they may only use profiled
points, never the analytic model directly).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Iterator, Optional

#: Relative tolerance when comparing profiled throughputs: profile noise
#: below this level must not flip a triplet decision (shared with the
#: Segment Configurator's demand-matching comparisons).
PROFILE_EPS = 1e-12


@dataclass(frozen=True)
class ProfileEntry:
    """One measured operating point — a row of ``P`` in Algorithm 1."""

    model: str
    instance_size: int  #: GPCs: 1, 2, 3, 4 or 7
    batch_size: int
    num_processes: int
    latency_ms: float  #: ``P[j].lat``
    throughput: float  #: ``P[j].tp`` (requests/s)
    memory_gb: float
    sm_activity: float

    @property
    def triplet(self) -> tuple[int, int, int]:
        """The (instance, batch, procs) triplet identity."""
        return (self.instance_size, self.batch_size, self.num_processes)

    @property
    def throughput_per_gpc(self) -> float:
        return self.throughput / self.instance_size


class ProfileTable:
    """All profiled operating points of one workload."""

    def __init__(self, model: str, entries: Iterable[ProfileEntry] = ()):
        self.model = model
        self._entries: list[ProfileEntry] = []
        self._by_triplet: dict[tuple[int, int, int], ProfileEntry] = {}
        self._by_size: dict[int, list[ProfileEntry]] = {}
        #: (effective SLO ms, max processes) -> TRIPLETDECISION result.
        self._triplet_cache: dict[tuple[float, int], dict[int, ProfileEntry]] = {}
        for e in entries:
            self.add(e)

    def add(self, entry: ProfileEntry) -> None:
        if entry.model != self.model:
            raise ValueError(
                f"entry for {entry.model!r} added to table of {self.model!r}"
            )
        if entry.triplet in self._by_triplet:
            raise ValueError(f"duplicate profile point {entry.triplet}")
        self._entries.append(entry)
        self._by_triplet[entry.triplet] = entry
        self._by_size.setdefault(entry.instance_size, []).append(entry)
        self._triplet_cache.clear()  # new points can change any decision

    def __iter__(self) -> Iterator[ProfileEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, instance_size: int, batch_size: int, num_processes: int
    ) -> Optional[ProfileEntry]:
        """Exact operating-point lookup, ``None`` when unprofiled/OOM."""
        return self._by_triplet.get((instance_size, batch_size, num_processes))

    def entries_for_size(self, instance_size: int) -> list[ProfileEntry]:
        """Points of one instance size, in insertion order (pre-indexed)."""
        return list(self._by_size.get(instance_size, ()))

    def has_triplet_decision(self, slo_ms: float, max_processes: int) -> bool:
        """Whether a TRIPLETDECISION result is already memoized."""
        return (slo_ms, max_processes) in self._triplet_cache

    def seed_triplet_decision(
        self,
        slo_ms: float,
        max_processes: int,
        triplets: Iterable[tuple[int, tuple[int, int, int]]],
    ) -> None:
        """Install a TRIPLETDECISION result computed elsewhere.

        ``triplets`` is ``(instance_size, (size, batch, procs))`` pairs
        in decision-scan order — operating-point *identities*, as a
        shard worker returns them after scoring a pickled copy of this
        table (:func:`repro.parallel.warm_triplet_decisions`).  Each
        identity must resolve against this table; the seeded cache entry
        is then indistinguishable from one :meth:`best_triplets` would
        have memoized itself, because the decision is a pure function of
        the table's contents.
        """
        best: dict[int, ProfileEntry] = {}
        for size, tri in triplets:
            entry = self._by_triplet.get(tuple(tri))
            if entry is None:
                raise ValueError(
                    f"cannot seed {self.model!r}: operating point "
                    f"{tuple(tri)} is not in this table"
                )
            best[size] = entry
        self._triplet_cache[(slo_ms, max_processes)] = best

    def clear_caches(self) -> None:
        """Drop memoized triplet decisions (pure cache; results identical).

        Cache hygiene for long-lived processes: profiles are produced
        once and reused (SIII-C), so the cache otherwise only grows with
        the set of distinct (SLO, max-processes) keys ever scheduled.
        """
        self._triplet_cache.clear()

    def best_triplets(
        self, slo_ms: float, max_processes: int, memoize: bool = True
    ) -> dict[int, ProfileEntry]:
        """``TRIPLETDECISION``'s per-table core: instance size -> the
        maximum-throughput point whose latency beats ``slo_ms`` among
        points of at most ``max_processes`` processes.

        The result is memoized per ``(slo_ms, max_processes)`` — services
        sharing a model and an effective SLO re-derive identical
        ``opt_tri_array``s, so fleet-scale re-scheduling (the autoscaler
        re-running every epoch) hits the cache instead of rescanning the
        table.  The cache is invalidated when a point is added, and
        callers get a fresh dict so mutating it never poisons the cache.
        """
        key = (slo_ms, max_processes)
        if memoize:
            hit = self._triplet_cache.get(key)
            if hit is not None:
                return dict(hit)
        best: dict[int, ProfileEntry] = {}
        for entry in self._entries:
            if entry.num_processes > max_processes:
                continue
            if entry.latency_ms >= slo_ms:
                continue
            cur = best.get(entry.instance_size)
            if cur is None or entry.throughput > cur.throughput * (1 + PROFILE_EPS):
                best[entry.instance_size] = entry
        if memoize:
            self._triplet_cache[key] = best
            return dict(best)
        return best

    def filtered(self, predicate: Callable[[ProfileEntry], bool]) -> list[ProfileEntry]:
        return [e for e in self._entries if predicate(e)]

    def under_latency(self, latency_ms: float) -> list[ProfileEntry]:
        """Points satisfying a latency bound (Algorithm 1 line 6)."""
        return [e for e in self._entries if e.latency_ms < latency_ms]

    def instance_sizes(self) -> tuple[int, ...]:
        return tuple(sorted({e.instance_size for e in self._entries}))

    # ------------------------------------------------------------------ #
    # serialization (profiles are produced once and reused, SIII-C)
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        return json.dumps(
            {"model": self.model, "entries": [asdict(e) for e in self._entries]},
            indent=2,
        )

    @classmethod
    def from_json(cls, payload: str) -> "ProfileTable":
        doc = json.loads(payload)
        return cls(
            doc["model"], (ProfileEntry(**entry) for entry in doc["entries"])
        )
