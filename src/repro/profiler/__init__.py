"""The ParvaGPU Profiler (SIII-C) and its profile store."""

from repro.profiler.table import ProfileEntry, ProfileTable
from repro.profiler.profiler import Profiler, profile_workloads

__all__ = ["ProfileEntry", "ProfileTable", "Profiler", "profile_workloads"]
