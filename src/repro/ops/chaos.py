"""Seeded disturbance generators for fleet-operations timelines.

Every generator is a pure function of its arguments — two processes (or
the fast-path and naive-reference replays of one recorded run) that build
a timeline from the same seed see the exact same events.  Generators
return plain event tuples; compose them with
:func:`~repro.ops.events.merge_timeline`.

Wall-clock never enters a timeline; times are simulated seconds from the
start of the run.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    OpsEvent,
    RateEpoch,
    ServiceArrival,
    ServiceDeparture,
    SloChange,
    SpotPreemptionWave,
)
from repro.sim.traces import RateTrace


def rate_epochs(
    traces: Sequence[RateTrace], horizon_s: float | None = None
) -> tuple[RateEpoch, ...]:
    """Every trace epoch as a :class:`RateEpoch` event.

    The piecewise-constant :class:`~repro.sim.traces.RateTrace` is the
    repo's existing load model (diurnal, surge, flash crowd); this is the
    bridge that lets those traces ride the same timeline as failures and
    churn.  Epochs at ``t >= horizon_s`` are dropped.
    """
    out = [
        RateEpoch(time_s=e.start_s, service_id=t.service_id, rate=e.rate)
        for t in traces
        for e in t.epochs
        if horizon_s is None or e.start_s < horizon_s
    ]
    return tuple(out)


def flash_crowds(
    traces: Sequence[RateTrace],
    horizon_s: float,
    num_crowds: int,
    seed: int,
    factor_range: tuple[float, float] = (2.0, 4.0),
    duration_range_s: tuple[float, float] = (300.0, 900.0),
) -> tuple[RateEpoch, ...]:
    """Flash-crowd overlays on existing traces.

    Each crowd picks one traced service and a start time, multiplies the
    trace's rate at that instant by a drawn factor, and drops back to the
    trace's own rate when the crowd passes.  A trace epoch boundary
    falling *inside* a crowd wins (later events override earlier ones in
    the controller), which reads as the crowd ebbing early — acceptable
    for a disturbance generator and keeps the semantics of the merged
    stream trivial: the last rate written is the rate.
    """
    if num_crowds < 0:
        raise ValueError("num_crowds must be non-negative")
    rng = random.Random(f"{seed}:flash:{num_crowds}:{horizon_s}")
    out: list[RateEpoch] = []
    for _ in range(num_crowds):
        trace = rng.choice(list(traces))
        start = rng.uniform(0.0, horizon_s * 0.9)
        duration = rng.uniform(*duration_range_s)
        factor = rng.uniform(*factor_range)
        end = min(start + duration, horizon_s * 0.999)
        out.append(
            RateEpoch(
                time_s=start,
                service_id=trace.service_id,
                rate=trace.rate_at(start) * factor,
            )
        )
        out.append(
            RateEpoch(
                time_s=end,
                service_id=trace.service_id,
                rate=trace.rate_at(end),
            )
        )
    return tuple(out)


def mtbf_failures(
    horizon_s: float,
    mtbf_s: float,
    seed: int,
    repair_s: float | None = None,
    prefix: str = "mtbf",
) -> tuple[OpsEvent, ...]:
    """Poisson-process GPU failures (exponential inter-arrival = MTBF).

    With ``repair_s`` each failure is followed by a :class:`GpuRecovery`
    of the same device after the repair time (possibly past the horizon,
    in which case the GPU stays down for the rest of the run).  Victims
    are draw-resolved by the controller against the occupied fleet.
    """
    if mtbf_s <= 0:
        raise ValueError("MTBF must be positive")
    rng = random.Random(f"{seed}:mtbf:{mtbf_s}:{horizon_s}")
    out: list[OpsEvent] = []
    t = rng.expovariate(1.0 / mtbf_s)
    k = 0
    while t < horizon_s:
        event_id = f"{prefix}-{k}"
        out.append(GpuFailure(time_s=t, event_id=event_id, draw=rng.random()))
        if repair_s is not None and t + repair_s < horizon_s:
            out.append(GpuRecovery(time_s=t + repair_s, ref=event_id))
        t += rng.expovariate(1.0 / mtbf_s)
        k += 1
    return tuple(out)


def spot_preemption_waves(
    horizon_s: float,
    every_s: float,
    fraction: float,
    seed: int,
    restore_delay_s: float | None = None,
    jitter: float = 0.25,
    prefix: str = "wave",
) -> tuple[SpotPreemptionWave, ...]:
    """Periodic spot-reclaim waves with jittered spacing.

    A wave every ``every_s`` (1 ± ``jitter``) preempts ``fraction`` of the
    occupied fleet; ``restore_delay_s`` makes the controller schedule each
    victim's return (the SpotServe-style preempt/restore cycle).
    """
    if every_s <= 0:
        raise ValueError("wave interval must be positive")
    if not 0.0 <= jitter < 1.0:
        raise ValueError("jitter must be in [0, 1)")
    rng = random.Random(f"{seed}:waves:{every_s}:{fraction}")
    out: list[SpotPreemptionWave] = []
    t = every_s * rng.uniform(1.0 - jitter, 1.0 + jitter)
    k = 0
    while t < horizon_s:
        out.append(
            SpotPreemptionWave(
                time_s=t,
                event_id=f"{prefix}-{k}",
                fraction=fraction,
                draw=rng.random(),
                restore_delay_s=restore_delay_s,
            )
        )
        t += every_s * rng.uniform(1.0 - jitter, 1.0 + jitter)
        k += 1
    return tuple(out)


def tenant_churn(
    horizon_s: float,
    arrivals: int,
    departures: int,
    seed: int,
    base_ids: Sequence[str] = (),
    rate_scale: float = 1.0,
    id_prefix: str = "tenant",
) -> tuple[OpsEvent, ...]:
    """A tenant-churn process: services arriving and leaving.

    Arriving tenants resample the Table-IV load population exactly like
    :func:`repro.scenarios.fleet.fleet_loads` (real (model, SLO) cells,
    bounded jitter, SLOs only relaxed — every synthetic arrival is
    feasible on every registered geometry).  Departures pick uniformly
    from the currently-departable pool: ``base_ids`` plus every tenant
    this process already admitted and has not yet removed.  Departures
    drawn while the pool is empty are dropped.
    """
    from repro.scenarios.fleet import _base_loads

    if arrivals < 0 or departures < 0:
        raise ValueError("arrival/departure counts must be non-negative")
    rng = random.Random(f"{seed}:churn:{arrivals}:{departures}")
    marks = [("arrive", rng.uniform(0.0, horizon_s)) for _ in range(arrivals)]
    marks += [("depart", rng.uniform(0.0, horizon_s)) for _ in range(departures)]
    marks.sort(key=lambda m: (m[1], m[0]))

    base = _base_loads()
    pool = list(base_ids)
    out: list[OpsEvent] = []
    k = 0
    for action, t in marks:
        if action == "arrive":
            cell = rng.choice(base)
            sid = f"{id_prefix}-{k}"
            k += 1
            out.append(
                ServiceArrival(
                    time_s=t,
                    service_id=sid,
                    model=cell.model,
                    request_rate=round(
                        cell.request_rate * rng.uniform(0.2, 2.0) * rate_scale,
                        1,
                    ),
                    slo_latency_ms=round(
                        cell.slo_latency_ms * rng.uniform(1.0, 1.5)
                    ),
                )
            )
            pool.append(sid)
        else:
            if not pool:
                continue
            sid = pool.pop(rng.randrange(len(pool)))
            out.append(ServiceDeparture(time_s=t, service_id=sid))
    return tuple(out)


def slo_renegotiations(
    services: Sequence[tuple[str, float]],
    horizon_s: float,
    count: int,
    seed: int,
    relax_range: tuple[float, float] = (1.2, 1.6),
) -> tuple[SloChange, ...]:
    """Mid-flight SLO renegotiations, always reverting before the horizon.

    ``services`` is ``(service_id, slo_latency_ms)`` pairs.  Each episode
    relaxes one service's SLO by a drawn factor at ``t1`` and reverts to
    the original at ``t2 > t1`` — relax-then-revert keeps every
    renegotiated state feasible by construction (the original SLO was
    schedulable, and relaxing never removes operating points).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if relax_range[0] < 1.0:
        raise ValueError("renegotiation only relaxes SLOs (factor >= 1)")
    rng = random.Random(f"{seed}:slo:{count}:{horizon_s}")
    out: list[SloChange] = []
    for _ in range(count):
        sid, slo = rng.choice(list(services))
        t1 = rng.uniform(0.0, horizon_s * 0.7)
        t2 = rng.uniform(t1 + horizon_s * 0.05, horizon_s * 0.95)
        out.append(
            SloChange(
                time_s=t1,
                service_id=sid,
                slo_latency_ms=round(slo * rng.uniform(*relax_range)),
            )
        )
        out.append(SloChange(time_s=t2, service_id=sid, slo_latency_ms=slo))
    return tuple(out)
