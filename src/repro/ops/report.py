"""What a fleet-operations run measured: the OpsReport.

The controller appends one :class:`IntervalRecord` per timeline instant
(the state the fleet served in until the next instant) and one
:class:`FailureRecord` per GPU lost.  The report aggregates what users
actually experienced: compliance over time, GPU-hours burned,
reconfiguration downtime, time-to-restore per failure, and per-tenant SLO
attainment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional


@dataclass
class IntervalRecord:
    """The fleet's state from ``time_s`` until the next timeline instant."""

    time_s: float
    duration_s: float  #: until the next instant (or the horizon)
    path: str  #: "full" (re-schedule) or "incremental"
    #: due events by kind — includes the ``skipped`` ones, so summing a
    #: kind here over-counts actions actually taken when skips occurred
    events: Mapping[str, int]
    skipped: int  #: events that could not apply (unknown ids, empty fleet)
    services: int
    num_gpus: int
    spare_gpus: int
    reconfig_ops: int
    reconfig_work_s: float
    max_downtime_s: float  #: worst per-service serving gap this interval
    downtime_total_s: float
    zero_downtime: bool  #: shadow budget absorbed the whole transition
    compliance: Optional[float] = None  #: measured, when serving was simulated
    worst_service: Optional[str] = None
    worst_service_compliance: Optional[float] = None
    fingerprint: str = ""  #: placement fingerprint (identity checks)
    sim_fingerprint: Optional[str] = None  #: simulation stats fingerprint
    #: per-service measured compliance (kept in memory for attainment;
    #: not serialized per interval — to_doc() emits aggregates only)
    per_service_compliance: Mapping[str, float] = field(default_factory=dict)
    #: wall-clock sidecars (live gateway sessions only): never part of
    #: the fingerprint, surfaced in to_doc() only when present, so
    #: replayed documents are byte-identical to offline ones
    obs_sidecar: dict[str, float] = field(default_factory=dict)

    def to_doc(self) -> dict:
        doc = {
            "time_s": round(self.time_s, 3),
            "duration_s": round(self.duration_s, 3),
            "path": self.path,
            "events": dict(sorted(self.events.items())),
            "skipped": self.skipped,
            "services": self.services,
            "gpus": self.num_gpus,
            "spares": self.spare_gpus,
            "reconfig_ops": self.reconfig_ops,
            "reconfig_work_s": round(self.reconfig_work_s, 3),
            "max_downtime_s": round(self.max_downtime_s, 3),
            "zero_downtime": self.zero_downtime,
            "compliance": (
                None if self.compliance is None else round(self.compliance, 6)
            ),
            "worst_service": self.worst_service,
            "worst_service_compliance": (
                None
                if self.worst_service_compliance is None
                else round(self.worst_service_compliance, 6)
            ),
        }
        if self.obs_sidecar:
            doc["obs"] = {
                k: round(v, 6) for k, v in sorted(self.obs_sidecar.items())
            }
        return doc


@dataclass
class FailureRecord:
    """One GPU leaving the fleet and (maybe) coming back."""

    time_s: float
    gpu_id: int
    kind: str  #: "failure" or "preemption"
    event_id: str
    affected_services: tuple[str, ...]
    lost_capacity: float  #: requests/s that vanished with the device
    replan_work_s: float  #: reconfiguration work to relocate its segments
    max_downtime_s: float  #: worst affected-service gap during relocation
    restored_at_s: Optional[float] = None  #: set when the GPU rejoined

    @property
    def time_to_restore_s(self) -> Optional[float]:
        if self.restored_at_s is None:
            return None
        return self.restored_at_s - self.time_s

    def to_doc(self) -> dict:
        return {
            "time_s": round(self.time_s, 3),
            "gpu": self.gpu_id,
            "kind": self.kind,
            "event_id": self.event_id,
            "affected_services": len(self.affected_services),
            "lost_capacity": round(self.lost_capacity, 1),
            "replan_work_s": round(self.replan_work_s, 3),
            "max_downtime_s": round(self.max_downtime_s, 3),
            "restored_at_s": (
                None if self.restored_at_s is None else round(self.restored_at_s, 3)
            ),
            "time_to_restore_s": (
                None
                if self.time_to_restore_s is None
                else round(self.time_to_restore_s, 3)
            ),
        }


@dataclass
class OpsReport:
    """The full closed-loop run."""

    horizon_s: float
    geometry: str = "mig"
    fast_path: bool = True
    #: shard count of the parallel control plane (0 = serial reference)
    workers: int = 0
    intervals: list[IntervalRecord] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # fleet-cost aggregates
    # ------------------------------------------------------------------ #

    @property
    def gpu_hours(self) -> float:
        """Device-hours the run consumed (spares excluded — they idle)."""
        return sum(r.num_gpus * r.duration_s for r in self.intervals) / 3600.0

    @property
    def peak_gpus(self) -> int:
        return max((r.num_gpus for r in self.intervals), default=0)

    @property
    def total_reconfig_ops(self) -> int:
        return sum(r.reconfig_ops for r in self.intervals)

    @property
    def total_reconfig_work_s(self) -> float:
        return sum(r.reconfig_work_s for r in self.intervals)

    @property
    def total_downtime_s(self) -> float:
        """Summed per-service serving gaps (zero under shadow admission)."""
        return sum(
            r.downtime_total_s for r in self.intervals if not r.zero_downtime
        )

    # ------------------------------------------------------------------ #
    # serving-quality aggregates
    # ------------------------------------------------------------------ #

    def _measured(self) -> list[IntervalRecord]:
        return [r for r in self.intervals if r.compliance is not None]

    @property
    def mean_compliance(self) -> Optional[float]:
        """Duration-weighted mean measured compliance (or None)."""
        rows = self._measured()
        total = sum(r.duration_s for r in rows)
        if not rows or total <= 0:
            return None
        return sum(r.compliance * r.duration_s for r in rows) / total

    @property
    def min_compliance(self) -> Optional[float]:
        rows = self._measured()
        if not rows:
            return None
        return min(r.compliance for r in rows)

    def compliance_series(self) -> list[tuple[float, float]]:
        """(time, measured compliance) over the run."""
        return [(r.time_s, r.compliance) for r in self._measured()]

    def slo_attainment(self, target: float = 0.99) -> dict[str, float]:
        """Per-tenant fraction of measured intervals at/above ``target``.

        A tenant only counts in intervals where it existed and was
        measured, so a mid-run arrival is judged on its own lifetime.
        """
        present: dict[str, int] = {}
        attained: dict[str, int] = {}
        for r in self._measured():
            for sid, c in r.per_service_compliance.items():
                present[sid] = present.get(sid, 0) + 1
                if c >= target:
                    attained[sid] = attained.get(sid, 0) + 1
        return {
            sid: attained.get(sid, 0) / n for sid, n in sorted(present.items())
        }

    # ------------------------------------------------------------------ #
    # failure aggregates
    # ------------------------------------------------------------------ #

    @property
    def restored_count(self) -> int:
        return sum(1 for f in self.failures if f.restored_at_s is not None)

    @property
    def mean_time_to_restore_s(self) -> Optional[float]:
        vals = [
            f.time_to_restore_s
            for f in self.failures
            if f.time_to_restore_s is not None
        ]
        if not vals:
            return None
        return sum(vals) / len(vals)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_doc(self, attainment_target: float = 0.99) -> dict:
        """JSON-ready document (committed as BENCH_ops evidence)."""
        attainment = self.slo_attainment(attainment_target)
        doc = {
            "horizon_s": self.horizon_s,
            "geometry": self.geometry,
            "fast_path": self.fast_path,
            "workers": self.workers,
            "intervals": [r.to_doc() for r in self.intervals],
            "failures": [f.to_doc() for f in self.failures],
            "gpu_hours": round(self.gpu_hours, 3),
            "peak_gpus": self.peak_gpus,
            "reconfig_ops": self.total_reconfig_ops,
            "reconfig_work_s": round(self.total_reconfig_work_s, 3),
            "downtime_s": round(self.total_downtime_s, 3),
            "mean_compliance": (
                None
                if self.mean_compliance is None
                else round(self.mean_compliance, 6)
            ),
            "min_compliance": (
                None
                if self.min_compliance is None
                else round(self.min_compliance, 6)
            ),
            "restored": self.restored_count,
            "mean_time_to_restore_s": (
                None
                if self.mean_time_to_restore_s is None
                else round(self.mean_time_to_restore_s, 3)
            ),
        }
        if attainment:
            doc["attainment_target"] = attainment_target
            doc["tenants_measured"] = len(attainment)
            doc["tenants_attaining"] = sum(
                1 for v in attainment.values() if v >= 1.0 - 1e-12
            )
            worst = sorted(attainment.items(), key=lambda kv: kv[1])[:5]
            doc["worst_tenants"] = [
                {"service": sid, "attainment": round(v, 4)} for sid, v in worst
            ]
        return doc
