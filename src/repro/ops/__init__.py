"""Fleet operations: the closed-loop control plane.

The paper's SIII-F deployment story exists because real clusters are
never static.  This package turns the repo's three independent
disturbance mechanisms — the autoscaler's rate epochs, the failover
controller's GPU loss, the SLO-update path — into one operable system:

- :mod:`repro.ops.events` — typed timeline events
  (:class:`~repro.ops.events.RateEpoch`,
  :class:`~repro.ops.events.GpuFailure`,
  :class:`~repro.ops.events.GpuRecovery`,
  :class:`~repro.ops.events.SpotPreemptionWave`,
  :class:`~repro.ops.events.ServiceArrival`,
  :class:`~repro.ops.events.ServiceDeparture`,
  :class:`~repro.ops.events.SloChange`) merged into one deterministic
  stream;
- :mod:`repro.ops.chaos` — seeded disturbance generators (MTBF failure
  injection, spot preemption/restore waves, tenant churn, flash-crowd
  overlays, SLO renegotiation);
- :mod:`repro.ops.controller` — the
  :class:`~repro.ops.controller.FleetController` that consumes the
  stream through the cheapest correct path and identity-checks itself;
- :mod:`repro.ops.report` — the :class:`~repro.ops.report.OpsReport` of
  what tenants actually experienced.

Scenarios S12-S14 (:mod:`repro.scenarios.ops`) package ready-made runs;
``parvagpu ops --scenario s13`` drives one from the CLI.
"""

from repro.ops.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.ops.controller import (
    FleetController,
    OpsIdentityError,
    OutOfOrderEventError,
    assert_reports_identical,
    run_identity_checked,
)
from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    OpsEvent,
    RateEpoch,
    ServiceArrival,
    ServiceDeparture,
    SloChange,
    SpotPreemptionWave,
    merge_timeline,
)
from repro.ops.report import FailureRecord, IntervalRecord, OpsReport

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "read_checkpoint",
    "write_checkpoint",
    "FleetController",
    "OpsIdentityError",
    "OutOfOrderEventError",
    "assert_reports_identical",
    "run_identity_checked",
    "OpsEvent",
    "RateEpoch",
    "SloChange",
    "ServiceArrival",
    "ServiceDeparture",
    "GpuFailure",
    "GpuRecovery",
    "SpotPreemptionWave",
    "merge_timeline",
    "OpsReport",
    "IntervalRecord",
    "FailureRecord",
]
