"""The closed-loop fleet controller.

``FleetController.run`` drives a deployment through an adversarial
operational timeline: at every timeline instant it applies the batch of
due events through the *cheapest correct path* — the SIII-F incremental
machinery (one-service SLO updates, single-GPU failover, spare restores,
service teardown) for single-service and single-GPU deltas, a full
re-schedule only when the structural delta demands it (bootstrap, or a
churn burst touching more than ``full_replan_fraction`` of the fleet) —
prices every transition with the reconfiguration cost model, and (when
asked) measures each interval's serving quality with the simulation fast
path.

Two identity checks guard every run:

- **state round-trip** (always on with ``check=True``): after each
  interval the placement must survive
  ``build_states() -> _to_placement() -> assign_rates()`` byte-identically
  — incremental bookkeeping (spares, preserved GPU ids, partial updates)
  cannot have corrupted the map — and the live cluster's instances must
  mirror the map exactly;
- **fast vs naive replay** (:func:`run_identity_checked`): the same
  timeline replayed from scratch on the naive reference machinery
  (unindexed allocator, unmemoized configurator, per-request event-driven
  simulator) must produce fingerprint-identical placements — and
  fingerprint-identical serving statistics — at every interval.

Determinism: timelines are pure data, victim selection derives from event
draws plus the controller seed, and the simulator is seeded — two runs
(or the fast/naive pair) see the exact same trajectory.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from heapq import heappop, heappush
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.core.allocator import SegmentAllocator
from repro.core.deployment import DeploymentManager
from repro.core.failover import FailoverController
from repro.core.parvagpu import ParvaGPU
from repro.core.placement import Placement
from repro.core.service import Service
from repro.gpu.geometry import get_geometry
from repro.gpu.reconfig import ReconfigurationCost, ShadowBudget, price_plan
from repro.ops.checkpoint import (
    CheckpointError,
    event_doc,
    event_from_wire_doc,
    placement_from_doc,
    placement_to_doc,
    report_from_doc,
    report_to_doc,
    resolve_resume,
    service_from_doc,
    service_to_doc,
    timeline_digest,
    write_checkpoint,
)
from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    OpsEvent,
    RateEpoch,
    ServiceArrival,
    ServiceDeparture,
    SloChange,
    SpotPreemptionWave,
    timeline_key,
)
from repro.obs import ObsHub
from repro.ops.report import FailureRecord, IntervalRecord, OpsReport
from repro.parallel import FaultInjector, ShardHealth
from repro.profiler.table import ProfileTable


def _record_digest(canonical: str) -> str:
    """Collapse a canonical fingerprint string to its sha256 hex digest.

    Interval records store digests, not the multi-hundred-KB canonical
    renderings: identity checks only ever compare fingerprints for
    equality (between replays, across resume, fast vs. naive), and a
    digest comparison is the same check — while keeping fleet-scale
    reports and their checkpoints a couple of MB instead of hundreds.
    """
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class OpsIdentityError(RuntimeError):
    """An identity check failed: incremental state diverged from reference."""


class OutOfOrderEventError(ValueError):
    """The step API received an instant or event that moves time backwards.

    :meth:`FleetController.step` requires monotonically non-decreasing
    instants and refuses events stamped *after* the instant they are
    applied at — the two ways an unsorted input stream would silently
    corrupt a replay.
    """


@dataclass
class _RunState:
    """Everything one begin()/step()/finish() cycle carries between steps."""

    work: list[Service]
    by_id: dict[str, Service]
    report: OpsReport
    horizon_s: float
    measure_s: float
    warmup_s: float
    sim_seed: int
    sim_fast: bool
    check: bool
    #: serve every Nth interval only (1 = every interval; the
    #: ``--verify-every`` sampling knob for expensive dual replays)
    measure_every: int
    #: controller-scheduled events (wave restores): (key, seq, event)
    pending: list[tuple[tuple[float, int, str], int, OpsEvent]] = field(
        default_factory=list
    )
    last_t: Optional[float] = None
    steps: int = 0


class FleetController:
    """Consumes an event timeline, keeping one deployment correct throughout."""

    def __init__(
        self,
        profiles: Optional[Mapping[str, ProfileTable]] = None,
        geometry: str = "mig",
        use_mps: bool = True,
        optimize: bool = True,
        fast_path: bool = True,
        seed: int = 0,
        spare_shadow_gpus: int = 4,
        full_replan_fraction: float = 0.5,
        workers: int = 0,
        fault_injector: Optional["FaultInjector"] = None,
        obs: Optional[ObsHub] = None,
    ) -> None:
        geo = get_geometry(geometry)
        if profiles is None:
            from repro.profiler import profile_workloads

            profiles = (
                profile_workloads()
                if geo.name == "mig"
                else profile_workloads(geometry=geo)
            )
        self.profiles = profiles
        self.geometry = geo
        self.fast_path = fast_path
        self.seed = seed
        if not 0.0 < full_replan_fraction <= 1.0:
            raise ValueError("full_replan_fraction must be in (0, 1]")
        #: fraction of the fleet an interval's arrivals+departures must
        #: exceed before a full re-schedule replaces per-service updates
        self.full_replan_fraction = full_replan_fraction
        self.scheduler = ParvaGPU(
            profiles,
            use_mps=use_mps,
            optimize=optimize,
            geometry=geo,
            fast_path=fast_path,
        )
        self.spare_shadow_gpus = spare_shadow_gpus
        if workers < 0:
            raise ValueError("workers must be >= 0")
        #: shard count for the parallel control plane: 0 keeps every
        #: stage on the serial reference path; N >= 1 fans per-interval
        #: serving measurement (and, for N > 1, replan triplet scoring)
        #: across N shards with bit-identical results (repro.sim.shard)
        self.workers = workers
        #: infrastructure fault-injection hook handed to the shard pool
        #: (tests and the resilience benchmark suite; None in production)
        self.fault_injector = fault_injector
        #: the run-scoped ShardContext (pool + segment memo); live only
        #: inside :meth:`run` when ``workers >= 1``
        self._shard_ctx = None
        #: the last closed run's pool health (what the run survived)
        self.last_shard_health: Optional[ShardHealth] = None
        #: failure event_id -> the GPU id the draw resolved to
        self._eid_to_gpu: dict[str, int] = {}
        #: the active begin()/step()/finish() cycle, if any
        self._run: Optional[_RunState] = None
        self._pending_seq = 0
        #: the observability hub: metrics + spans + flight recorder.
        #: Recording is sidecar-only — nothing the hub stores ever
        #: reaches fingerprinted state, so replays stay bit-identical
        #: with observability enabled (the default).
        self.obs = obs if obs is not None else ObsHub()
        self._m_intervals = self.obs.counter(
            "ops_intervals_total", "intervals the controller closed"
        )
        self._m_events = self.obs.counter(
            "ops_events_applied_total",
            "timeline events applied, by event kind",
            ("kind",),
        )
        self._m_replans = self.obs.counter(
            "ops_replans_total",
            "interval re-plans taken, by path (full vs incremental)",
            ("path",),
        )
        self._m_failures = self.obs.counter(
            "ops_failures_total", "GPU failures/preemptions handled"
        )
        self._m_services = self.obs.gauge(
            "ops_fleet_services", "services currently deployed"
        )
        self._m_gpus = self.obs.gauge(
            "ops_fleet_gpus", "GPUs in the deployed placement"
        )
        self._m_spares = self.obs.gauge(
            "ops_spare_gpus", "spare GPUs held back for failover"
        )
        self._m_ckpt_writes = self.obs.counter(
            "ops_checkpoint_writes_total", "checkpoints flushed to disk"
        )
        self._m_stage_wall = self.obs.histogram(
            "ops_stage_wall_seconds",
            "wall-clock sidecar per decision-path stage (0 when "
            "deterministic)",
            ("stage",),
        )
        self._reset_deployment()

    def _reset_deployment(self) -> None:
        """Fresh deployment state: manager, failover, shadow budget.

        Called at construction *and* at the top of every :meth:`run`, so
        a controller is reentrant — a second run bootstraps from scratch
        instead of silently continuing from the previous run's final
        deployment (the module's determinism guarantee).  The final
        state of the last run stays inspectable on ``self.manager``
        until the next run begins.
        """
        self.manager = DeploymentManager(self.profiles, geometry=self.geometry)
        self.failover = FailoverController(
            self.profiles,
            self.manager,
            optimize=self.scheduler.optimize,
            fast_path=self.fast_path,
        )
        self.shadows = ShadowBudget(spare_gpus=self.spare_shadow_gpus)
        self._eid_to_gpu = {}

    # ------------------------------------------------------------------ #
    # the re-entrant step API
    # ------------------------------------------------------------------ #

    def begin(
        self,
        services: Sequence[Service],
        horizon_s: float,
        measure_s: float = 0.0,
        warmup_s: float = 0.1,
        sim_seed: int = 0,
        sim_fast_path: Optional[bool] = None,
        check: bool = True,
        measure_every: int = 1,
    ) -> OpsReport:
        """Open a run: fresh deployment state, an empty report, no steps.

        The returned :class:`OpsReport` is *live* — :meth:`step` appends
        to it in place, so a long-running caller (the serve gateway) can
        snapshot it between steps.  ``measure_every`` samples serving
        measurement to every Nth interval (1 = every interval).
        """
        if self._run is not None:
            raise RuntimeError(
                "a run is already active on this controller; call finish()"
            )
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if measure_every < 1:
            raise ValueError("measure_every must be >= 1")
        self._reset_deployment()
        sim_fast = self.fast_path if sim_fast_path is None else sim_fast_path
        # Private copies: the run rewrites rates/SLOs/plan state, and
        # callers reasonably reuse their Service objects afterwards.
        work = [
            Service(
                id=s.id,
                model=s.model,
                slo_latency_ms=s.slo_latency_ms,
                request_rate=s.request_rate,
                slo_factor=s.slo_factor,
            )
            for s in services
        ]
        by_id = {s.id: s for s in work}
        if len(by_id) != len(work):
            raise ValueError("duplicate service ids")
        report = OpsReport(
            horizon_s=horizon_s,
            geometry=self.geometry.name,
            fast_path=self.fast_path,
            workers=self.workers,
        )
        self._pending_seq = 0
        self._eid_to_gpu = {}
        if self.workers >= 1:
            from repro.sim.shard import ShardContext

            # One context for the whole run: the worker pool spawns once
            # and the segment memo carries across intervals — an event
            # only perturbs a handful of services, so most segments
            # resolve from cache and only the changed ones are shipped.
            self._shard_ctx = ShardContext(
                self.workers, fault_injector=self.fault_injector,
                obs=self.obs,
            )
            self.obs.registry.attach("shard", self._shard_ctx.pool.health)
        self._run = _RunState(
            work=work,
            by_id=by_id,
            report=report,
            horizon_s=horizon_s,
            measure_s=measure_s,
            warmup_s=warmup_s,
            sim_seed=sim_seed,
            sim_fast=sim_fast,
            check=check,
            measure_every=measure_every,
        )
        return report

    def _require_run(self) -> _RunState:
        if self._run is None:
            raise RuntimeError("no active run; call begin() first")
        return self._run

    def step(self, t: float, events: Sequence[OpsEvent] = ()) -> IntervalRecord:
        """Apply one instant's event batch and record the interval.

        Instants must be monotonically non-decreasing across steps, and
        every event must be stamped at or before the instant it is
        applied at; violating either raises
        :class:`OutOfOrderEventError` (the run loop used to silently
        assume sorted input).  Events inside the batch are applied in
        :func:`~repro.ops.events.timeline_key` order regardless of the
        order given.

        The previous interval's duration is closed off as ``t`` minus
        its instant; the new interval provisionally extends to the
        horizon until a later step (or nothing) supersedes it — interval
        accounting therefore never looks ahead, which is what lets a
        live gateway drive this API one instant at a time.
        """
        run = self._require_run()
        if t < 0:
            raise ValueError("step instant must be non-negative")
        if t >= run.horizon_s:
            raise ValueError(
                f"step instant t={t:g} is at or beyond the horizon "
                f"({run.horizon_s:g} s)"
            )
        if run.last_t is not None and t < run.last_t:
            raise OutOfOrderEventError(
                f"step instant t={t:g} precedes the already-applied instant "
                f"t={run.last_t:g}; instants must be monotonically "
                "non-decreasing"
            )
        batch = sorted(events, key=timeline_key)
        for e in batch:
            if e.time_s > t:
                raise OutOfOrderEventError(
                    f"{e.kind} stamped time_s={e.time_s:g} cannot apply at "
                    f"the earlier instant t={t:g}"
                )
        if run.report.intervals:
            prev = run.report.intervals[-1]
            prev.duration_s = t - prev.time_s
        failures_before = len(run.report.failures)
        with self.obs.span(
            "interval", t_s=t, cat="interval", step=run.steps,
            events=len(batch),
        ) as interval_span:
            with self.obs.span("apply", t_s=t, cat="interval") as sp:
                record = self._apply_batch(
                    t, batch, run.work, run.by_id, run.report, run.pending
                )
                sp.args["path"] = record.path
            self._m_stage_wall.observe(sp.wall_s, stage="apply")
            if run.check:
                with self.obs.span("check", t_s=t, cat="interval") as sp:
                    self._check_state(run.work)
                self._m_stage_wall.observe(sp.wall_s, stage="check")
            placement = self.manager.current
            with self.obs.span("fingerprint", t_s=t, cat="interval") as sp:
                record.fingerprint = _record_digest(placement.fingerprint())
            self._m_stage_wall.observe(sp.wall_s, stage="fingerprint")
            if run.measure_s > 0 and run.steps % run.measure_every == 0:
                with self.obs.span(
                    "measure", t_s=t, cat="interval",
                    services=len(run.work), workers=self.workers,
                ) as sp:
                    self._measure(
                        record, placement, run.work, run.measure_s,
                        run.warmup_s, run.sim_seed, run.sim_fast,
                    )
                self._m_stage_wall.observe(sp.wall_s, stage="measure")
            with self.obs.span("report", t_s=t, cat="interval") as sp:
                record.duration_s = run.horizon_s - t
                run.report.intervals.append(record)
            interval_span.args["path"] = record.path
        self._m_stage_wall.observe(interval_span.wall_s, stage="interval")
        self._m_intervals.inc()
        self._m_replans.inc(path=record.path)
        for kind in sorted(record.events):
            self._m_events.inc(record.events[kind], kind=kind)
        new_failures = len(run.report.failures) - failures_before
        if new_failures:
            self._m_failures.inc(new_failures)
        self._m_services.set(len(run.work))
        self._m_gpus.set(record.num_gpus)
        self._m_spares.set(record.spare_gpus)
        self.obs.note(
            "decision", t_s=t, step=run.steps, path=record.path,
            events=dict(record.events), skipped=record.skipped,
            failures=new_failures,
        )
        run.last_t = t
        run.steps += 1
        return record

    def pending_due(self, t: float) -> list[OpsEvent]:
        """Pop controller-scheduled events (wave restores) due at ``t``."""
        run = self._require_run()
        out: list[OpsEvent] = []
        while run.pending and run.pending[0][0][0] <= t:
            out.append(heappop(run.pending)[2])
        return out

    def next_pending_time(self) -> Optional[float]:
        """Earliest controller-scheduled event time, or None."""
        run = self._require_run()
        return run.pending[0][0][0] if run.pending else None

    def would_full_replan(self, events: Iterable[OpsEvent]) -> bool:
        """Would this batch take the full re-schedule path if stepped now?

        The serve gateway's deadline scheduler asks this *before*
        committing to a step, so it can defer an expensive full re-plan
        past a blown budget; the predicate is exactly the branch
        :meth:`step` takes.
        """
        run = self._require_run()
        if self.manager.current is None:
            return True
        structural = sum(
            1
            for e in events
            if isinstance(e, (ServiceDeparture, ServiceArrival))
        )
        return structural > self.full_replan_fraction * max(1, len(run.work))

    def finish(self) -> OpsReport:
        """Close the run and return its report.

        The last interval keeps its provisional duration (to the
        horizon); the final deployment stays inspectable on
        ``self.manager`` until the next :meth:`begin`.
        """
        run = self._require_run()
        if self._shard_ctx is not None:
            self.last_shard_health = self._shard_ctx.pool.health
            self._shard_ctx.close()
            self._shard_ctx = None
        self._run = None
        return run.report

    def shard_health(self) -> Optional[ShardHealth]:
        """The shard pool's survival counters — live during a sharded
        run, the last run's afterwards, None on the serial path."""
        if self._shard_ctx is not None:
            return self._shard_ctx.pool.health
        return self.last_shard_health

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    #: controller configuration a checkpoint must match to be restorable
    #: (``workers`` is deliberately absent: results are worker-count-
    #: invariant, so a resumed run may shard differently)
    _CONFIG_FIELDS = (
        "geometry",
        "seed",
        "fast_path",
        "use_mps",
        "optimize",
        "full_replan_fraction",
        "spare_shadow_gpus",
    )

    def _config_doc(self) -> dict[str, Any]:
        return {
            "geometry": self.geometry.name,
            "seed": self.seed,
            "fast_path": self.fast_path,
            "use_mps": self.scheduler.use_mps,
            "optimize": self.scheduler.optimize,
            "full_replan_fraction": self.full_replan_fraction,
            "spare_shadow_gpus": self.spare_shadow_gpus,
        }

    def checkpoint(
        self, cursor: int = 0, timeline_sha: Optional[str] = None
    ) -> dict[str, Any]:
        """Freeze the active run's full control-plane state as a document.

        Everything a resumed run needs to be bit-identical to an
        uninterrupted one is captured: the fleet's services (in work-list
        order — full replans iterate it), the deployed placement and the
        spare/retired GPU ledgers, the pending (controller-scheduled)
        event heap with its tie-break sequence, the live report with
        every accumulator, and the caller's timeline ``cursor``.  Memo
        caches are *not* captured — a rewarmed memo is bit-identical to
        a restored one by purity.  Pass the result to
        :func:`~repro.ops.checkpoint.write_checkpoint` (or use the
        ``run(..., checkpoint_path=...)`` wiring).
        """
        run = self._require_run()
        state: dict[str, Any] = {
            "kind": "fleet-controller",
            "config": self._config_doc(),
            "cursor": cursor,
            "timeline_sha": timeline_sha,
            # post-mortem breadcrumb only: where the last automatic
            # flight-recorder dump landed (None almost always); restore
            # ignores it, so it never influences a resumed run
            "flight_dump": self.obs.flight.last_dump_path,
            "pending_seq": self._pending_seq,
            "eid_to_gpu": sorted(self._eid_to_gpu.items()),
            "run": {
                "horizon_s": run.horizon_s,
                "measure_s": run.measure_s,
                "warmup_s": run.warmup_s,
                "sim_seed": run.sim_seed,
                "sim_fast": run.sim_fast,
                "check": run.check,
                "measure_every": run.measure_every,
                "last_t": run.last_t,
                "steps": run.steps,
                "services": [service_to_doc(s) for s in run.work],
                "pending": [
                    {"seq": seq, "event": event_doc(ev)}
                    for _key, seq, ev in sorted(run.pending)
                ],
            },
            "manager": {
                "placement": (
                    None
                    if self.manager.current is None
                    else placement_to_doc(self.manager.current)
                ),
                "spare_gpus": sorted(self.manager.spare_gpus.items()),
                "retired_gpus": sorted(self.manager.retired_gpus.items()),
            },
            "report": report_to_doc(run.report),
        }
        return state

    def restore(self, state: Mapping[str, Any]) -> OpsReport:
        """Rehydrate a checkpointed run; the next :meth:`step` continues it.

        The checkpoint's controller configuration must match this
        controller exactly (geometry, seed, path flags, replan fraction,
        shadow budget) — anything less would diverge silently; a
        mismatch raises :class:`~repro.ops.checkpoint.CheckpointError`.
        ``workers`` may differ: sharding is bit-identical at any width.

        Restore order matters: the placement is re-deployed onto a
        fresh cluster first (``deploy`` prunes drafted spares), *then*
        the spare/retired ledgers are overlaid, then the pending heap
        and the live report.  The returned report is the same live
        object later steps append to.
        """
        if self._run is not None:
            raise RuntimeError(
                "a run is already active on this controller; call finish()"
            )
        if state.get("kind") != "fleet-controller":
            raise CheckpointError(
                f"not a fleet-controller checkpoint: kind={state.get('kind')!r}"
            )
        config = state["config"]
        mine = self._config_doc()
        mismatched = [
            f"{name} (checkpoint {config.get(name)!r} != controller "
            f"{mine[name]!r})"
            for name in self._CONFIG_FIELDS
            if config.get(name) != mine[name]
        ]
        if mismatched:
            raise CheckpointError(
                "checkpoint was taken under a different controller "
                "configuration: " + ", ".join(mismatched)
            )
        run_doc = state["run"]
        self._reset_deployment()
        work = [service_from_doc(d) for d in run_doc["services"]]
        by_id = {s.id: s for s in work}
        if len(by_id) != len(work):
            raise CheckpointError("checkpoint carries duplicate service ids")
        mgr_doc = state["manager"]
        if mgr_doc["placement"] is not None:
            self.manager.deploy(placement_from_doc(mgr_doc["placement"]))
        self.manager.spare_gpus.clear()
        self.manager.spare_gpus.update(
            (int(gid), name) for gid, name in mgr_doc["spare_gpus"]
        )
        self.manager.retired_gpus.clear()
        self.manager.retired_gpus.update(
            (int(gid), name) for gid, name in mgr_doc["retired_gpus"]
        )
        self._eid_to_gpu = {
            eid: int(gid) for eid, gid in state["eid_to_gpu"]
        }
        self._pending_seq = int(state["pending_seq"])
        pending: list[tuple[tuple[float, int, str], int, OpsEvent]] = []
        for entry in run_doc["pending"]:
            ev = event_from_wire_doc(entry["event"])
            heappush(pending, (timeline_key(ev), int(entry["seq"]), ev))
        report = report_from_doc(state["report"])
        # The report describes the *resumed* run from here on.
        report.workers = self.workers
        if self.workers >= 1:
            from repro.sim.shard import ShardContext

            self._shard_ctx = ShardContext(
                self.workers, fault_injector=self.fault_injector,
                obs=self.obs,
            )
            self.obs.registry.attach("shard", self._shard_ctx.pool.health)
        self._run = _RunState(
            work=work,
            by_id=by_id,
            report=report,
            horizon_s=run_doc["horizon_s"],
            measure_s=run_doc["measure_s"],
            warmup_s=run_doc["warmup_s"],
            sim_seed=run_doc["sim_seed"],
            sim_fast=run_doc["sim_fast"],
            check=run_doc["check"],
            measure_every=run_doc["measure_every"],
            pending=pending,
            last_t=run_doc["last_t"],
            steps=run_doc["steps"],
        )
        return report

    # ------------------------------------------------------------------ #
    # the offline run loop (a driver over the step API)
    # ------------------------------------------------------------------ #

    def run(
        self,
        services: Sequence[Service],
        timeline: Iterable[OpsEvent],
        horizon_s: float,
        measure_s: float = 0.0,
        warmup_s: float = 0.1,
        sim_seed: int = 0,
        sim_fast_path: Optional[bool] = None,
        check: bool = True,
        measure_every: int = 1,
        *,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[str | Path] = None,
        resume: Optional[str | Path | Mapping[str, Any]] = None,
        max_steps: Optional[int] = None,
    ) -> OpsReport:
        """Drive ``services`` through ``timeline`` until ``horizon_s``.

        With ``measure_s > 0`` every ``measure_every``-th interval's
        deployment is *served* for that long (after ``warmup_s`` of
        warmup) and per-tenant SLO compliance is recorded.
        ``sim_fast_path`` defaults to the controller's own ``fast_path``,
        so a naive-reference replay also exercises the event-driven
        simulation engine.

        Crash resilience: ``checkpoint_path`` (with ``checkpoint_every=N``)
        writes an atomic checkpoint after every Nth interval boundary, and
        ``resume`` (a checkpoint path or an in-memory state document)
        restores one and continues — bit-identical, interval for
        interval, to the run that was never interrupted.  The resume's
        run parameters and timeline must match the checkpointed run's
        (verified; the timeline via a stored digest).  ``max_steps``
        stops after that many total intervals, flushing a final
        checkpoint first — the planned-drain counterpart of a crash.
        """
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        static = sorted(
            (e for e in timeline if e.time_s < horizon_s), key=timeline_key
        )
        digest = timeline_digest(static)
        if resume is not None:
            try:
                state = resolve_resume(resume)
                self._check_resume_args(
                    state,
                    horizon_s=horizon_s,
                    measure_s=measure_s,
                    warmup_s=warmup_s,
                    sim_seed=sim_seed,
                    sim_fast=(
                        self.fast_path
                        if sim_fast_path is None
                        else sim_fast_path
                    ),
                    check=check,
                    measure_every=measure_every,
                    timeline_sha=digest,
                )
                report = self.restore(state)
            except CheckpointError:
                self.obs.dump_flight("checkpoint-error")
                raise
            si = int(state["cursor"])
            t = self._next_instant(static, si)
        else:
            report = self.begin(
                services,
                horizon_s,
                measure_s=measure_s,
                warmup_s=warmup_s,
                sim_seed=sim_seed,
                sim_fast_path=sim_fast_path,
                check=check,
                measure_every=measure_every,
            )
            si = 0
            # the bootstrap interval exists even on an empty timeline
            t = 0.0
        def flush_checkpoint() -> None:
            assert checkpoint_path is not None
            try:
                write_checkpoint(
                    checkpoint_path,
                    self.checkpoint(cursor=si, timeline_sha=digest),
                )
            except (CheckpointError, OSError):
                # Post-mortem evidence first, then the crash proceeds.
                self.obs.dump_flight("checkpoint-error")
                raise
            self._m_ckpt_writes.inc()

        try:
            while t is not None:
                batch: list[OpsEvent] = []
                while si < len(static) and static[si].time_s <= t:
                    batch.append(static[si])
                    si += 1
                batch.extend(self.pending_due(t))
                self.step(t, batch)
                steps = self._require_run().steps
                if (
                    checkpoint_path is not None
                    and checkpoint_every
                    and steps % checkpoint_every == 0
                ):
                    flush_checkpoint()
                if max_steps is not None and steps >= max_steps:
                    if checkpoint_path is not None:
                        flush_checkpoint()
                    break
                t = self._next_instant(static, si)
        finally:
            report = self.finish()
        return report

    def _next_instant(
        self, static: Sequence[OpsEvent], si: int
    ) -> Optional[float]:
        """The run loop's next step instant, or None when drained."""
        next_times = []
        if si < len(static):
            next_times.append(static[si].time_s)
        pt = self.next_pending_time()
        if pt is not None:
            next_times.append(pt)
        return min(next_times) if next_times else None

    @staticmethod
    def _check_resume_args(
        state: Mapping[str, Any],
        *,
        horizon_s: float,
        measure_s: float,
        warmup_s: float,
        sim_seed: int,
        sim_fast: bool,
        check: bool,
        measure_every: int,
        timeline_sha: str,
    ) -> None:
        """Resuming under different run parameters would diverge silently."""
        run_doc = state.get("run", {})
        wanted = {
            "horizon_s": horizon_s,
            "measure_s": measure_s,
            "warmup_s": warmup_s,
            "sim_seed": sim_seed,
            "sim_fast": sim_fast,
            "check": check,
            "measure_every": measure_every,
        }
        mismatched = [
            f"{name} (checkpoint {run_doc.get(name)!r} != {value!r})"
            for name, value in wanted.items()
            if run_doc.get(name) != value
        ]
        if mismatched:
            raise CheckpointError(
                "resume parameters differ from the checkpointed run: "
                + ", ".join(mismatched)
            )
        stored_sha = state.get("timeline_sha")
        if stored_sha is not None and stored_sha != timeline_sha:
            raise CheckpointError(
                "resume timeline differs from the checkpointed run's "
                "(digest mismatch) — continuing would silently diverge"
            )

    # ------------------------------------------------------------------ #
    # event application
    # ------------------------------------------------------------------ #

    def _apply_batch(
        self,
        t: float,
        batch: list[OpsEvent],
        work: list[Service],
        by_id: dict[str, Service],
        report: OpsReport,
        pending: list,
    ) -> IntervalRecord:
        counts: dict[str, int] = {}
        skipped = 0
        costs: list[ReconfigurationCost] = []
        ops = 0
        path = "incremental"

        def count(e: OpsEvent) -> None:
            counts[e.kind] = counts.get(e.kind, 0) + 1

        service_events = [
            e
            for e in batch
            if isinstance(e, (ServiceDeparture, ServiceArrival, SloChange, RateEpoch))
        ]
        gpu_events = [
            e
            for e in batch
            if isinstance(e, (GpuRecovery, GpuFailure, SpotPreemptionWave))
        ]

        structural = sum(
            1
            for e in service_events
            if isinstance(e, (ServiceDeparture, ServiceArrival))
        )
        bootstrap = self.manager.current is None
        if bootstrap or structural > self.full_replan_fraction * max(1, len(work)):
            # The delta demands a full re-plan: fold every service-level
            # event into the fleet state, then schedule from scratch.
            path = "full"
            for e in service_events:
                skipped += 0 if self._apply_to_state(e, work, by_id) else 1
                count(e)
            for svc in work:
                svc.request_rate = max(svc.request_rate, 1e-6)
                svc.reset_plan()
            if (
                self._shard_ctx is not None
                and self.workers > 1
                and self.fast_path
            ):
                # Per-service triplet scoring is independent: fan the
                # uncached TRIPLETDECISION keys across the shard pool
                # and seed the memo caches before the serial schedule.
                from repro.parallel import warm_triplet_decisions

                warm_triplet_decisions(
                    self.profiles,
                    work,
                    self.scheduler.configurator.max_processes,
                    self._shard_ctx.pool,
                )
            placement = self.scheduler.schedule(work)
            plan = self.manager.deploy(placement)
            cost = price_plan(plan)
            if bootstrap:
                # Initial deployment precedes serving: the setup work is
                # real, but no tenant was interrupted — recording the
                # instance-creation time as per-service downtime would
                # dominate every run's headline downtime with a gap
                # nobody experienced.
                cost = ReconfigurationCost(
                    total_work_s=cost.total_work_s,
                    downtime_s={},
                    shadow_gpus=0,
                )
            costs.append(cost)
            ops += plan.num_operations
            # A from-scratch map renumbers GPUs: failed/spare ids recorded
            # against the old map are meaningless now.
            self.failover.reset()
            self._eid_to_gpu.clear()
        else:
            for e in service_events:
                applied, cost, n = self._apply_incremental(e, work, by_id)
                if not applied:
                    skipped += 1
                if cost is not None:
                    costs.append(cost)
                    ops += n
                count(e)

        for e in gpu_events:
            applied, applied_costs, n = self._apply_gpu_event(
                t, e, work, report, pending
            )
            if not applied:
                skipped += 1
            costs.extend(applied_costs)
            ops += n
            count(e)

        total = ReconfigurationCost.combine(costs)
        return IntervalRecord(
            time_s=t,
            duration_s=0.0,  # filled by the run loop
            path=path,
            events=counts,
            skipped=skipped,
            services=len(work),
            num_gpus=self.manager.current.num_gpus,
            spare_gpus=len(self.manager.spare_gpus),
            reconfig_ops=ops,
            reconfig_work_s=total.total_work_s,
            max_downtime_s=total.max_downtime_s,
            downtime_total_s=sum(total.downtime_s.values()),
            zero_downtime=self.shadows.admit(t, total),
        )

    def _apply_to_state(
        self, e: OpsEvent, work: list[Service], by_id: dict[str, Service]
    ) -> bool:
        """Fold one service-level event into the fleet state (no re-plan)."""
        if isinstance(e, ServiceDeparture):
            svc = by_id.pop(e.service_id, None)
            if svc is None:
                return False
            work.remove(svc)
            return True
        if isinstance(e, ServiceArrival):
            if e.service_id in by_id:
                return False
            svc = Service(
                id=e.service_id,
                model=e.model,
                slo_latency_ms=e.slo_latency_ms,
                request_rate=e.request_rate,
            )
            work.append(svc)
            by_id[svc.id] = svc
            return True
        if isinstance(e, SloChange):
            svc = by_id.get(e.service_id)
            if svc is None:
                return False
            svc.slo_latency_ms = e.slo_latency_ms
            return True
        if isinstance(e, RateEpoch):
            svc = by_id.get(e.service_id)
            if svc is None:
                return False
            svc.request_rate = max(e.rate, 1e-6)
            return True
        raise TypeError(f"not a service-level event: {e!r}")  # pragma: no cover

    def _apply_incremental(
        self, e: OpsEvent, work: list[Service], by_id: dict[str, Service]
    ) -> tuple[bool, Optional[ReconfigurationCost], int]:
        """One service-level event through the SIII-F incremental path."""
        kw = dict(
            use_mps=self.scheduler.use_mps,
            optimize=self.scheduler.optimize,
            fast_path=self.fast_path,
        )
        # Departures/arrivals mutate the fleet state through the same
        # code path the full-replan branch uses; SLO/rate changes are
        # applied by update_slo itself (the old value is needed first
        # for the no-op check).
        if isinstance(e, ServiceDeparture):
            if not self._apply_to_state(e, work, by_id):
                return False, None, 0
            _, plan = self.manager.remove_service(work, e.service_id)
            return True, price_plan(plan), plan.num_operations
        if isinstance(e, ServiceArrival):
            if not self._apply_to_state(e, work, by_id):
                return False, None, 0
            _, plan = self.manager.update_slo(work, by_id[e.service_id], **kw)
            return True, price_plan(plan), plan.num_operations
        if isinstance(e, SloChange):
            svc = by_id.get(e.service_id)
            if svc is None:
                return False, None, 0
            if svc.slo_latency_ms == e.slo_latency_ms:
                return True, None, 0
            _, plan = self.manager.update_slo(
                work, svc, new_slo_ms=e.slo_latency_ms, **kw
            )
            return True, price_plan(plan), plan.num_operations
        if isinstance(e, RateEpoch):
            svc = by_id.get(e.service_id)
            if svc is None:
                return False, None, 0
            rate = max(e.rate, 1e-6)
            if svc.request_rate == rate:
                return True, None, 0
            _, plan = self.manager.update_slo(work, svc, new_rate=rate, **kw)
            return True, price_plan(plan), plan.num_operations
        raise TypeError(f"not a service-level event: {e!r}")  # pragma: no cover

    def _occupied(self) -> list[int]:
        current = self.manager.current
        if current is None:
            return []
        return sorted(g.gpu_id for g in current.gpus if not g.is_empty)

    def _fail_one(
        self,
        t: float,
        gpu_id: int,
        kind: str,
        event_id: str,
        work: list[Service],
        report: OpsReport,
    ) -> tuple[ReconfigurationCost, int]:
        result = self.failover.fail_gpu(gpu_id, work)
        report.failures.append(
            FailureRecord(
                time_s=t,
                gpu_id=gpu_id,
                kind=kind,
                event_id=event_id,
                affected_services=result.affected_services,
                lost_capacity=sum(result.lost_capacity.values()),
                replan_work_s=result.cost.total_work_s,
                max_downtime_s=result.cost.max_downtime_s,
            )
        )
        return result.cost, result.reconfig_ops

    def _apply_gpu_event(
        self,
        t: float,
        e: OpsEvent,
        work: list[Service],
        report: OpsReport,
        pending: list,
    ) -> tuple[bool, list[ReconfigurationCost], int]:
        if isinstance(e, GpuRecovery):
            gid = e.gpu_id if e.gpu_id is not None else self._eid_to_gpu.get(e.ref)
            if gid is None or gid not in self.failover.failed:
                return False, [], 0
            self.failover.restore_gpu(gid)
            for rec in reversed(report.failures):
                if rec.gpu_id == gid and rec.restored_at_s is None:
                    rec.restored_at_s = t
                    break
            return True, [], 0
        if isinstance(e, GpuFailure):
            if e.gpu_id is not None and e.gpu_id in self.manager.spare_gpus:
                # Losing a spare tears down nothing: drop it from the
                # free pool and remember it as failed so it can return.
                # Still a real GPU loss — record it (zero lost capacity,
                # zero relocation work) so restores find their failure
                # and the report's failure tally matches the timeline.
                geometry = self.manager.spare_gpus.pop(e.gpu_id)
                self.failover.failed[e.gpu_id] = geometry
                self._eid_to_gpu[e.event_id] = e.gpu_id
                report.failures.append(
                    FailureRecord(
                        time_s=t,
                        gpu_id=e.gpu_id,
                        kind="failure",
                        event_id=e.event_id,
                        affected_services=(),
                        lost_capacity=0.0,
                        replan_work_s=0.0,
                        max_downtime_s=0.0,
                    )
                )
                return True, [], 0
            occupied = self._occupied()
            if not occupied:
                return False, [], 0
            if e.gpu_id is not None:
                if e.gpu_id not in occupied:
                    return False, [], 0
                gid = e.gpu_id
            else:
                gid = occupied[int(e.draw * len(occupied))]
            cost, ops = self._fail_one(t, gid, "failure", e.event_id, work, report)
            self._eid_to_gpu[e.event_id] = gid
            return True, [cost], ops
        if isinstance(e, SpotPreemptionWave):
            occupied = self._occupied()
            if not occupied:
                return False, [], 0
            count = min(
                len(occupied), max(1, math.ceil(e.fraction * len(occupied)))
            )
            rng = random.Random(f"{self.seed}:{e.event_id}:{e.draw}")
            victims = sorted(rng.sample(occupied, count))
            costs: list[ReconfigurationCost] = []
            ops = 0
            for gid in victims:
                if gid not in self._occupied():
                    # an earlier victim's relocation drained this GPU;
                    # preempting idle hardware tears down nothing
                    continue
                cost, n = self._fail_one(
                    t, gid, "preemption", f"{e.event_id}/{gid}", work, report
                )
                costs.append(cost)
                ops += n
                if e.restore_delay_s is not None:
                    back = t + e.restore_delay_s
                    if back < report.horizon_s:
                        ev = GpuRecovery(time_s=back, gpu_id=gid)
                        heappush(
                            pending,
                            (timeline_key(ev), self._pending_seq, ev),
                        )
                        self._pending_seq += 1
            return True, costs, ops
        raise TypeError(f"not a GPU-level event: {e!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # identity checks & measurement
    # ------------------------------------------------------------------ #

    def _check_state(self, work: Sequence[Service]) -> None:
        """The per-interval round-trip + cluster-mirror identity check."""
        placement = self.manager.current
        fp = placement.fingerprint()
        rebuilt = SegmentAllocator(geometry=self.geometry)._to_placement(
            self.manager.build_states()
        )
        rebuilt.framework = placement.framework
        rebuilt.assign_rates({s.id: s.request_rate for s in work})
        if rebuilt.fingerprint() != fp:
            raise OpsIdentityError(
                "incremental placement does not survive the allocator-state "
                "round trip (build_states -> _to_placement)"
            )
        want = {
            (s.gpu_id, s.start, s.size, s.owner)
            for s in placement.to_instance_specs()
        }
        have = {
            (g.gpu_id, inst.start, inst.size, inst.owner or "")
            for g, inst in self.manager.cluster.instances()
        }
        if want != have:
            raise OpsIdentityError(
                "live cluster instances do not mirror the deployment map"
            )

    def _measure(
        self,
        record: IntervalRecord,
        placement: Placement,
        work: Sequence[Service],
        measure_s: float,
        warmup_s: float,
        sim_seed: int,
        sim_fast: bool,
    ) -> None:
        from repro.sim.runner import measure_interval

        m = measure_interval(
            placement,
            work,
            measure_s=measure_s,
            warmup_s=warmup_s,
            seed=sim_seed,
            fast_path=sim_fast,
            workers=self.workers if sim_fast else 0,
            shard_context=self._shard_ctx if sim_fast else None,
        )
        record.compliance = m.compliance
        record.sim_fingerprint = _record_digest(m.fingerprint)
        record.per_service_compliance = m.per_service
        if m.per_service:
            record.worst_service = m.worst_service
            record.worst_service_compliance = m.worst_compliance


def assert_reports_identical(fast: OpsReport, naive: OpsReport) -> None:
    """Raise :class:`OpsIdentityError` unless two replays of one timeline
    agree on every interval's time, placement fingerprint, and (when
    measured) simulation stats fingerprint.

    The single definition of the replay identity contract — shared by
    :func:`run_identity_checked` and the perf harness's recorded runs.
    """
    if len(fast.intervals) != len(naive.intervals):
        raise OpsIdentityError(
            f"interval counts differ: {len(fast.intervals)} vs "
            f"{len(naive.intervals)}"
        )
    for a, b in zip(fast.intervals, naive.intervals):
        if a.time_s != b.time_s or a.fingerprint != b.fingerprint:
            raise OpsIdentityError(
                f"placement fingerprints diverge at t={a.time_s}"
            )
        # Intervals one side skipped (``measure_every`` sampling) carry
        # no stats fingerprint; the contract binds the measured pairs.
        if (
            a.sim_fingerprint is not None
            and b.sim_fingerprint is not None
            and a.sim_fingerprint != b.sim_fingerprint
        ):
            raise OpsIdentityError(
                f"simulation fingerprints diverge at t={a.time_s}"
            )


def run_identity_checked(
    services: Sequence[Service],
    timeline: Iterable[OpsEvent],
    horizon_s: float,
    measure_s: float = 0.0,
    warmup_s: float = 0.1,
    sim_seed: int = 0,
    naive_sim: bool = True,
    workers: int = 0,
    verify_every: int = 1,
    **controller_kwargs: object,
) -> tuple[OpsReport, OpsReport]:
    """Replay one timeline on the fast path *and* the naive reference.

    Both controllers consume the identical timeline from scratch; every
    interval's placement fingerprint — and, when serving is measured, its
    simulation stats fingerprint — must match exactly, or
    :class:`OpsIdentityError` is raised.  ``naive_sim=False`` keeps the
    reference replay on the simulation fast path (the event-driven engine
    is O(requests) and can dominate large fleets' replay time).

    ``workers`` applies to the fast replay only — the naive reference
    always runs serial, so a nonzero worker count additionally asserts
    that the sharded parallel control plane matches the serial reference
    machinery interval-for-interval.

    ``verify_every=N`` samples the naive replay's *serving measurement*
    to every Nth interval — the event-driven simulator dominates big
    dual replays, so sampling buys a cheap smoke mode.  Placement
    fingerprints are still checked at every interval; simulation
    fingerprints at the sampled ones.  ``N=1`` (the default) is the full
    contract, byte-identical to what this function always did.

    Returns ``(fast_report, naive_report)``.
    """
    if verify_every < 1:
        raise ValueError("verify_every must be >= 1")
    timeline = tuple(timeline)
    fast = FleetController(
        fast_path=True, workers=workers, **controller_kwargs
    ).run(
        services, timeline, horizon_s,
        measure_s=measure_s, warmup_s=warmup_s, sim_seed=sim_seed,
    )
    naive = FleetController(fast_path=False, **controller_kwargs).run(
        services, timeline, horizon_s,
        measure_s=measure_s, warmup_s=warmup_s, sim_seed=sim_seed,
        sim_fast_path=None if naive_sim else True,
        measure_every=verify_every,
    )
    assert_reports_identical(fast, naive)
    return fast, naive
