"""Versioned, checksummed control-plane checkpoints.

A checkpoint freezes everything a :class:`~repro.ops.controller.
FleetController` run carries between interval boundaries — the deployed
placement, the spare/retired GPU ledgers, the live
:class:`~repro.ops.report.OpsReport` accumulators, the pending
(controller-scheduled) event heap, and the offline run loop's static
timeline cursor — as one JSON document.  Restoring it and continuing
the run is **bit-identical** to never having stopped: every value that
feeds a fingerprint round-trips exactly (JSON floats serialize via
``repr`` and parse back to the same IEEE-754 double), and everything
that is *derived* (triplet memos, the shard segment memo, slot indexes)
is deliberately left out and rewarmed, because a memo hit is by
construction bit-identical to a fresh computation.

File format::

    {"format": "parvagpu-checkpoint", "version": 1,
     "sha256": <hex digest of the canonical state payload>,
     "state": {...}}

The digest is computed over the canonical compact-JSON rendering of
``state`` (sorted keys, no whitespace), so any bit flip in the payload
— the fault injector's favourite — fails verification before a single
field is trusted.  Writes are atomic (temp file + fsync + rename): a
crash mid-write leaves the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.core.placement import GPUPlan, PlacedSegment, Placement
from repro.core.segments import Segment
from repro.core.service import Service
from repro.gpu.geometry import get_geometry
from repro.ops.events import OpsEvent
from repro.ops.report import FailureRecord, IntervalRecord, OpsReport
from repro.profiler.table import ProfileEntry

#: Bump on any incompatible change to the state payload layout.
CHECKPOINT_VERSION = 1

_FORMAT = "parvagpu-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint is unreadable, corrupt, or from an incompatible run."""


# --------------------------------------------------------------------- #
# scalar / structural codecs (exact round-trips, no lossy conversions)
# --------------------------------------------------------------------- #


def _entry_to_doc(entry: ProfileEntry) -> dict[str, Any]:
    return {
        "model": entry.model,
        "instance_size": entry.instance_size,
        "batch_size": entry.batch_size,
        "num_processes": entry.num_processes,
        "latency_ms": entry.latency_ms,
        "throughput": entry.throughput,
        "memory_gb": entry.memory_gb,
        "sm_activity": entry.sm_activity,
    }


def _entry_from_doc(doc: Mapping[str, Any]) -> ProfileEntry:
    return ProfileEntry(
        model=doc["model"],
        instance_size=doc["instance_size"],
        batch_size=doc["batch_size"],
        num_processes=doc["num_processes"],
        latency_ms=doc["latency_ms"],
        throughput=doc["throughput"],
        memory_gb=doc["memory_gb"],
        sm_activity=doc["sm_activity"],
    )


def _plan_segment_to_doc(seg: Segment) -> dict[str, Any]:
    return {
        "service_id": seg.service_id,
        "model": seg.model,
        "instance_size": seg.instance_size,
        "batch_size": seg.batch_size,
        "num_processes": seg.num_processes,
        "throughput": seg.throughput,
        "latency_ms": seg.latency_ms,
        "sm_activity": seg.sm_activity,
        "geometry": seg.geometry.name,
    }


def _plan_segment_from_doc(doc: Mapping[str, Any]) -> Segment:
    return Segment(
        service_id=doc["service_id"],
        model=doc["model"],
        instance_size=doc["instance_size"],
        batch_size=doc["batch_size"],
        num_processes=doc["num_processes"],
        throughput=doc["throughput"],
        latency_ms=doc["latency_ms"],
        sm_activity=doc["sm_activity"],
        geometry=get_geometry(doc["geometry"]),
    )


def service_to_doc(svc: Service) -> dict[str, Any]:
    """The identity-bearing service fields *including* Configurator state.

    The Algorithm-1 outputs (``opt_tri_array``/``opt_seg``/``num_opt_seg``/
    ``last_seg``) are not scratch: the SIII-F incremental paths read the
    previous plan between intervals, so a resumed run without them would
    take different placement decisions than the uninterrupted one.
    """
    return {
        "id": svc.id,
        "model": svc.model,
        "slo_latency_ms": svc.slo_latency_ms,
        "request_rate": svc.request_rate,
        "slo_factor": svc.slo_factor,
        "opt_tri_array": [
            [size, _entry_to_doc(entry)]
            for size, entry in svc.opt_tri_array.items()
        ],
        "opt_seg": (
            None if svc.opt_seg is None else _plan_segment_to_doc(svc.opt_seg)
        ),
        "num_opt_seg": svc.num_opt_seg,
        "last_seg": (
            None
            if svc.last_seg is None
            else _plan_segment_to_doc(svc.last_seg)
        ),
    }


def service_from_doc(doc: Mapping[str, Any]) -> Service:
    svc = Service(
        id=doc["id"],
        model=doc["model"],
        slo_latency_ms=doc["slo_latency_ms"],
        request_rate=doc["request_rate"],
        slo_factor=doc["slo_factor"],
    )
    svc.opt_tri_array = {
        int(size): _entry_from_doc(entry)
        for size, entry in doc["opt_tri_array"]
    }
    if doc["opt_seg"] is not None:
        svc.opt_seg = _plan_segment_from_doc(doc["opt_seg"])
    svc.num_opt_seg = doc["num_opt_seg"]
    if doc["last_seg"] is not None:
        svc.last_seg = _plan_segment_from_doc(doc["last_seg"])
    return svc


def _segment_to_doc(seg: PlacedSegment) -> dict[str, Any]:
    return {
        "service_id": seg.service_id,
        "model": seg.model,
        "kind": seg.kind,
        "gpcs": seg.gpcs,
        "batch_size": seg.batch_size,
        "num_processes": seg.num_processes,
        "capacity": seg.capacity,
        "latency_ms": seg.latency_ms,
        "sm_activity": seg.sm_activity,
        "start": seg.start,
        "served_rate": seg.served_rate,
        "geometry": seg.geometry,
    }


def _segment_from_doc(doc: Mapping[str, Any]) -> PlacedSegment:
    return PlacedSegment(
        service_id=doc["service_id"],
        model=doc["model"],
        kind=doc["kind"],
        gpcs=doc["gpcs"],
        batch_size=doc["batch_size"],
        num_processes=doc["num_processes"],
        capacity=doc["capacity"],
        latency_ms=doc["latency_ms"],
        sm_activity=doc["sm_activity"],
        start=doc["start"],
        served_rate=doc["served_rate"],
        geometry=doc["geometry"],
    )


def placement_to_doc(placement: Placement) -> dict[str, Any]:
    """Every fingerprint-bearing field of a deployment map, in order."""
    return {
        "framework": placement.framework,
        "scheduling_delay_ms": placement.scheduling_delay_ms,
        "rates_assigned": placement.rates_assigned,
        "gpus": [
            {
                "gpu_id": plan.gpu_id,
                "geometry": plan.geometry,
                "segments": [_segment_to_doc(s) for s in plan.segments],
            }
            for plan in placement.gpus
        ],
    }


def placement_from_doc(doc: Mapping[str, Any]) -> Placement:
    gpus = [
        GPUPlan(
            gpu_id=g["gpu_id"],
            geometry=g["geometry"],
            segments=[_segment_from_doc(s) for s in g["segments"]],
        )
        for g in doc["gpus"]
    ]
    return Placement(
        framework=doc["framework"],
        gpus=gpus,
        scheduling_delay_ms=doc["scheduling_delay_ms"],
        rates_assigned=doc["rates_assigned"],
    )


def _interval_to_doc(rec: IntervalRecord) -> dict[str, Any]:
    # Full fidelity — unlike IntervalRecord.to_doc(), which is a summary
    # view: per_service_compliance is in-memory-only there but feeds the
    # restored report's slo_attainment, so it must survive here.
    return {
        "time_s": rec.time_s,
        "duration_s": rec.duration_s,
        "path": rec.path,
        "events": dict(rec.events),
        "skipped": rec.skipped,
        "services": rec.services,
        "num_gpus": rec.num_gpus,
        "spare_gpus": rec.spare_gpus,
        "reconfig_ops": rec.reconfig_ops,
        "reconfig_work_s": rec.reconfig_work_s,
        "max_downtime_s": rec.max_downtime_s,
        "downtime_total_s": rec.downtime_total_s,
        "zero_downtime": rec.zero_downtime,
        "compliance": rec.compliance,
        "worst_service": rec.worst_service,
        "worst_service_compliance": rec.worst_service_compliance,
        "fingerprint": rec.fingerprint,
        "sim_fingerprint": rec.sim_fingerprint,
        "per_service_compliance": (
            None
            if rec.per_service_compliance is None
            else dict(rec.per_service_compliance)
        ),
    }


def _interval_from_doc(doc: Mapping[str, Any]) -> IntervalRecord:
    return IntervalRecord(
        time_s=doc["time_s"],
        duration_s=doc["duration_s"],
        path=doc["path"],
        events=dict(doc["events"]),
        skipped=doc["skipped"],
        services=doc["services"],
        num_gpus=doc["num_gpus"],
        spare_gpus=doc["spare_gpus"],
        reconfig_ops=doc["reconfig_ops"],
        reconfig_work_s=doc["reconfig_work_s"],
        max_downtime_s=doc["max_downtime_s"],
        downtime_total_s=doc["downtime_total_s"],
        zero_downtime=doc["zero_downtime"],
        compliance=doc["compliance"],
        worst_service=doc["worst_service"],
        worst_service_compliance=doc["worst_service_compliance"],
        fingerprint=doc["fingerprint"],
        sim_fingerprint=doc["sim_fingerprint"],
        per_service_compliance=doc["per_service_compliance"],
    )


def _failure_to_doc(rec: FailureRecord) -> dict[str, Any]:
    return {
        "time_s": rec.time_s,
        "gpu_id": rec.gpu_id,
        "kind": rec.kind,
        "event_id": rec.event_id,
        "affected_services": list(rec.affected_services),
        "lost_capacity": rec.lost_capacity,
        "replan_work_s": rec.replan_work_s,
        "max_downtime_s": rec.max_downtime_s,
        "restored_at_s": rec.restored_at_s,
    }


def _failure_from_doc(doc: Mapping[str, Any]) -> FailureRecord:
    return FailureRecord(
        time_s=doc["time_s"],
        gpu_id=doc["gpu_id"],
        kind=doc["kind"],
        event_id=doc["event_id"],
        affected_services=tuple(doc["affected_services"]),
        lost_capacity=doc["lost_capacity"],
        replan_work_s=doc["replan_work_s"],
        max_downtime_s=doc["max_downtime_s"],
        restored_at_s=doc["restored_at_s"],
    )


def report_to_doc(report: OpsReport) -> dict[str, Any]:
    """Full-fidelity report state (richer than ``OpsReport.to_doc``)."""
    return {
        "horizon_s": report.horizon_s,
        "geometry": report.geometry,
        "fast_path": report.fast_path,
        "workers": report.workers,
        "intervals": [_interval_to_doc(r) for r in report.intervals],
        "failures": [_failure_to_doc(r) for r in report.failures],
    }


def report_from_doc(doc: Mapping[str, Any]) -> OpsReport:
    return OpsReport(
        horizon_s=doc["horizon_s"],
        geometry=doc["geometry"],
        fast_path=doc["fast_path"],
        workers=doc["workers"],
        intervals=[_interval_from_doc(r) for r in doc["intervals"]],
        failures=[_failure_from_doc(r) for r in doc["failures"]],
    )


def event_doc(event: OpsEvent) -> dict[str, Any]:
    """One timeline event as its canonical wire document."""
    # Lazy import: repro.serve pulls in the controller at package import
    # time, so a top-level import here would be circular.
    from repro.serve.sources import event_to_doc

    return dict(event_to_doc(event))


def event_from_wire_doc(doc: Mapping[str, Any]) -> OpsEvent:
    from repro.serve.sources import event_from_doc

    return event_from_doc(doc)


def timeline_digest(events: Sequence[OpsEvent]) -> str:
    """Order-sensitive digest of a (sorted, filtered) static timeline.

    Stored in every checkpoint and re-verified on resume: resuming
    against a *different* timeline would not crash — it would silently
    diverge from the uninterrupted run, which is worse.
    """
    h = hashlib.sha256()
    for event in events:
        h.update(_canonical(event_doc(event)))
        h.update(b"\n")
    return h.hexdigest()


# --------------------------------------------------------------------- #
# the checkpoint file
# --------------------------------------------------------------------- #


def _canonical(state: Mapping[str, Any]) -> bytes:
    """The canonical byte rendering the checksum is computed over."""
    return json.dumps(
        state, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def state_digest(state: Mapping[str, Any]) -> str:
    return hashlib.sha256(_canonical(state)).hexdigest()


def write_checkpoint(path: str | Path, state: Mapping[str, Any]) -> None:
    """Atomically write ``state`` as a versioned, checksummed checkpoint.

    The document is staged to a temp file in the target directory,
    flushed and fsynced, then renamed over ``path`` — a crash at any
    point leaves either the old checkpoint or the new one, never a torn
    hybrid (which the checksum would reject anyway).
    """
    target = Path(path)
    # Serialize the state payload exactly once: the canonical rendering
    # both feeds the digest and is spliced verbatim into the envelope.
    # (The payload dominates write cost; a second json.dumps of the
    # envelope-with-state would double it.)
    payload = _canonical(state)
    digest = hashlib.sha256(payload).hexdigest()
    head = json.dumps(
        {"format": _FORMAT, "version": CHECKPOINT_VERSION, "sha256": digest},
        separators=(",", ":"),
    )
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(head[:-1].encode("ascii"))
        fh.write(b',"state":')
        fh.write(payload)
        fh.write(b"}\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)


def read_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read, verify, and return a checkpoint's state payload.

    Raises :class:`CheckpointError` on a missing file, unparseable
    JSON, wrong format marker, unsupported version, or — the case the
    fault injector drills — a checksum mismatch.
    """
    target = Path(path)
    try:
        raw = target.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {target} is not valid UTF-8: the file is corrupt"
        ) from exc
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {target}: {exc}") from exc
    try:
        doc = json.loads(raw)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {target} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise CheckpointError(f"{target} is not a {_FORMAT} file")
    version = doc.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {target} has version {version!r}; this build "
            f"reads version {CHECKPOINT_VERSION}"
        )
    state = doc.get("state")
    if not isinstance(state, dict):
        raise CheckpointError(f"checkpoint {target} carries no state payload")
    digest = state_digest(state)
    if digest != doc.get("sha256"):
        raise CheckpointError(
            f"checkpoint {target} failed checksum verification "
            f"(expected {doc.get('sha256')!r}, computed {digest!r}): "
            "the file is corrupt"
        )
    return state


def resolve_resume(
    resume: str | Path | Mapping[str, Any],
) -> dict[str, Any]:
    """A resume argument is either a checkpoint path or an in-memory state."""
    if isinstance(resume, Mapping):
        return dict(resume)
    return read_checkpoint(resume)


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "event_doc",
    "event_from_wire_doc",
    "placement_from_doc",
    "placement_to_doc",
    "read_checkpoint",
    "report_from_doc",
    "report_to_doc",
    "resolve_resume",
    "service_from_doc",
    "service_to_doc",
    "state_digest",
    "timeline_digest",
    "write_checkpoint",
]
