"""The fleet-operations event timeline.

Real clusters are never static: rates move, GPUs die and come back, spot
capacity is preempted in waves, tenants arrive and leave, SLOs get
renegotiated mid-flight.  Each disturbance is a typed, immutable event;
:func:`merge_timeline` folds any number of generated streams into one
deterministic time-ordered stream that a
:class:`~repro.ops.controller.FleetController` consumes.

Ordering is total and reproducible: events sort by ``(time_s, PRIORITY,
sort_token)``.  The per-type ``PRIORITY`` fixes the application order
*within* one instant — departures free capacity before arrivals claim it,
service-level changes land before GPU-level disturbances, and recoveries
land before new failures so a restore-then-fail at the same instant is
well defined.

GPU-targeting events may name a ``gpu_id`` explicitly, but generated
timelines usually cannot know the ids of a placement that does not exist
yet.  They carry a ``draw`` in ``[0, 1)`` instead; the controller resolves
it against the GPUs occupied *at that moment* (``occupied[int(draw *
len(occupied))]``), which keeps victim selection deterministic without
coupling generators to placements.  A :class:`GpuRecovery` references the
failure it undoes via the failure's ``event_id``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional


@dataclass(frozen=True)
class OpsEvent:
    """Base of every timeline event."""

    time_s: float

    #: application order within one instant (lower applies first)
    PRIORITY = 50

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("event time must be non-negative")

    @property
    def kind(self) -> str:
        """Registry/reporting name of the event type."""
        return type(self).__name__

    @property
    def sort_token(self) -> str:
        """Deterministic tie-break among same-type events at one instant."""
        return ""


@dataclass(frozen=True)
class ServiceDeparture(OpsEvent):
    """A tenant leaves: its segments are torn down, capacity freed."""

    service_id: str = ""

    PRIORITY = 10

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.service_id:
            raise ValueError("departure needs a service id")

    @property
    def sort_token(self) -> str:
        return self.service_id


@dataclass(frozen=True)
class ServiceArrival(OpsEvent):
    """A new tenant registers a service (model + SLO + rate)."""

    service_id: str = ""
    model: str = ""
    request_rate: float = 0.0
    slo_latency_ms: float = 0.0

    PRIORITY = 20

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.service_id or not self.model:
            raise ValueError("arrival needs a service id and model")
        if self.request_rate <= 0 or self.slo_latency_ms <= 0:
            raise ValueError("arrival rate and SLO must be positive")

    @property
    def sort_token(self) -> str:
        return self.service_id


@dataclass(frozen=True)
class SloChange(OpsEvent):
    """A tenant renegotiates its client-facing SLO latency."""

    service_id: str = ""
    slo_latency_ms: float = 0.0

    PRIORITY = 30

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.service_id:
            raise ValueError("SLO change needs a service id")
        if self.slo_latency_ms <= 0:
            raise ValueError("renegotiated SLO must be positive")

    @property
    def sort_token(self) -> str:
        return self.service_id


@dataclass(frozen=True)
class RateEpoch(OpsEvent):
    """One service's request rate changes (trace epoch, flash crowd)."""

    service_id: str = ""
    rate: float = 0.0

    PRIORITY = 40

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.service_id:
            raise ValueError("rate epoch needs a service id")
        if self.rate < 0:
            raise ValueError("rate must be non-negative")

    @property
    def sort_token(self) -> str:
        return self.service_id


@dataclass(frozen=True)
class GpuRecovery(OpsEvent):
    """A failed/preempted GPU comes back and rejoins the free pool."""

    gpu_id: Optional[int] = None  #: explicit target, or None to use ``ref``
    ref: str = ""  #: ``event_id`` of the failure this recovery undoes

    PRIORITY = 50

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gpu_id is None and not self.ref:
            raise ValueError("recovery needs a gpu_id or a failure ref")

    @property
    def sort_token(self) -> str:
        return self.ref or f"gpu{self.gpu_id}"


@dataclass(frozen=True)
class GpuFailure(OpsEvent):
    """One GPU dies (hardware fault, permanent until recovered)."""

    event_id: str = ""  #: stable handle recoveries reference
    gpu_id: Optional[int] = None  #: explicit victim, or None to use ``draw``
    draw: float = 0.0  #: victim selector over the occupied GPUs at apply time

    PRIORITY = 60

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.event_id:
            raise ValueError("failure needs an event id")
        if not 0.0 <= self.draw < 1.0:
            raise ValueError("draw must be in [0, 1)")

    @property
    def sort_token(self) -> str:
        return self.event_id


@dataclass(frozen=True)
class SpotPreemptionWave(OpsEvent):
    """A fraction of the fleet is preempted at once (spot reclaim).

    The controller fails ``ceil(fraction * occupied)`` victims chosen by a
    seeded shuffle keyed on ``(run seed, event_id, draw)`` and — when
    ``restore_delay_s`` is set — schedules a :class:`GpuRecovery` for each
    victim ``restore_delay_s`` later (the spot market giving capacity
    back).
    """

    event_id: str = ""
    fraction: float = 0.0
    draw: float = 0.0
    restore_delay_s: Optional[float] = None

    PRIORITY = 70

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.event_id:
            raise ValueError("preemption wave needs an event id")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("preempted fraction must be in (0, 1]")
        if not 0.0 <= self.draw < 1.0:
            raise ValueError("draw must be in [0, 1)")
        if self.restore_delay_s is not None and self.restore_delay_s <= 0:
            raise ValueError("restore delay must be positive")

    @property
    def sort_token(self) -> str:
        return self.event_id


def timeline_key(event: OpsEvent) -> tuple[float, int, str]:
    """The total order every timeline consumer sorts by."""
    return (event.time_s, event.PRIORITY, event.sort_token)


def merge_timeline(*streams: Iterable[OpsEvent]) -> tuple[OpsEvent, ...]:
    """Merge event streams into one deterministic time-ordered timeline."""
    events = [e for stream in streams for e in stream]
    events.sort(key=timeline_key)
    return tuple(events)
