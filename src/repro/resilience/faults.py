"""Seeded fault plans: break the infrastructure on purpose.

The determinism contract makes resilience claims cheap to *verify*
(recovered must be bit-identical to uninterrupted), but only if the
failure paths actually run.  This module injects the five infrastructure
faults the control plane claims to survive:

- **worker aborts** — :class:`WorkerFaultInjector` rides into shard-pool
  worker processes (it implements :class:`repro.parallel.FaultInjector`)
  and ``os._exit``\\ s designated jobs on their first attempt, forcing
  the ``BrokenProcessPool`` → rebuild → retry ladder;
- **job delays** — the same hook sleeps designated jobs past a pool's
  per-job timeout, forcing the hung-worker path;
- **journal truncation/corruption** — :func:`truncate_journal` tears the
  final write off a segment (the crash-mid-append case recovery must
  tolerate), :func:`corrupt_journal` flips a bit mid-segment (which
  replay must *count*, not silently absorb);
- **source stalls** — :func:`stalling_source_factory` builds intake
  sources that die mid-stream, for the gateway's retry/backoff ladder;
- **checkpoint bit-flips** — :func:`flip_bit` damages one bit of a
  checkpoint file, which the checksum in
  :mod:`repro.ops.checkpoint` must catch before any field is trusted.

Every fault site is drawn from a seeded ``random.Random`` stream —
two runs of one plan inject identically.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, AsyncIterator, Callable, Sequence


@dataclass(frozen=True)
class WorkerFaultInjector:
    """Picklable pre-job hook killing/delaying designated jobs once.

    ``crash_jobs`` and ``delay_jobs`` are ``(batch, index)`` pairs —
    the shard pool's monotonically increasing dispatch counter plus the
    job's position within the batch.  Faults fire only on ``attempt 0``
    (the first execution), so the post-recovery retry deterministically
    succeeds; process kills fire only ``in_worker`` (never in the
    parent, which the inline recovery floor runs in).
    """

    crash_jobs: tuple[tuple[int, int], ...] = ()
    delay_jobs: tuple[tuple[int, int], ...] = ()
    delay_s: float = 0.0
    exit_code: int = 43

    def before(
        self, batch: int, attempt: int, index: int, in_worker: bool
    ) -> None:
        if attempt != 0:
            return
        if (batch, index) in self.delay_jobs:
            time.sleep(self.delay_s)
        if in_worker and (batch, index) in self.crash_jobs:
            os._exit(self.exit_code)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded draw over the worker-fault space.

    ``worker_crashes`` jobs are killed and ``job_delays`` jobs slept for
    ``delay_s``, at ``(batch, index)`` sites sampled without replacement
    from ``range(max_batch) x range(max_index)``.  Sites beyond what a
    run actually dispatches are harmless no-ops, which is what lets a
    property fuzz draw plans independently of the workload's shape.
    """

    seed: int = 0
    worker_crashes: int = 0
    job_delays: int = 0
    delay_s: float = 0.0
    max_batch: int = 8
    max_index: int = 4

    def injector(self) -> WorkerFaultInjector:
        rng = random.Random(f"faultplan:{self.seed}")
        space = [
            (b, i)
            for b in range(self.max_batch)
            for i in range(self.max_index)
        ]
        crashes = tuple(
            sorted(rng.sample(space, min(self.worker_crashes, len(space))))
        )
        taken = set(crashes)
        remaining = [p for p in space if p not in taken]
        delays = tuple(
            sorted(rng.sample(remaining, min(self.job_delays, len(remaining))))
        )
        return WorkerFaultInjector(
            crash_jobs=crashes, delay_jobs=delays, delay_s=self.delay_s
        )


# --------------------------------------------------------------------- #
# file faults: checkpoints and journal segments
# --------------------------------------------------------------------- #


def flip_bit(path: str | Path, *, seed: int = 0) -> int:
    """Flip one seeded-random bit of ``path``; returns the byte offset.

    The canonical checkpoint-corruption fault: exactly one bit differs,
    which only a real checksum (not a length or version check) catches.
    """
    target = Path(path)
    data = bytearray(target.read_bytes())
    if not data:
        raise ValueError(f"cannot flip a bit of empty file {target}")
    rng = random.Random(f"flip:{seed}")
    offset = rng.randrange(len(data))
    data[offset] ^= 1 << rng.randrange(8)
    target.write_bytes(bytes(data))
    return offset


def truncate_tail(path: str | Path, nbytes: int) -> int:
    """Chop ``nbytes`` off the end of ``path`` (a torn final write).

    Returns the new size.  Truncating more than the file holds leaves
    an empty file — the crash-before-first-flush case.
    """
    target = Path(path)
    size = target.stat().st_size
    new_size = max(0, size - nbytes)
    os.truncate(target, new_size)
    return new_size


def truncate_journal(dir_path: str | Path, nbytes: int = 16) -> Path:
    """Tear ``nbytes`` off the journal's *last* segment (crash mid-append)."""
    segment = _last_segment(dir_path)
    truncate_tail(segment, nbytes)
    return segment


def corrupt_journal(dir_path: str | Path, *, seed: int = 0) -> Path:
    """Flip a bit somewhere in the journal's last segment."""
    segment = _last_segment(dir_path)
    flip_bit(segment, seed=seed)
    return segment


def _last_segment(dir_path: str | Path) -> Path:
    from repro.serve.journal import journal_segments

    segments = journal_segments(dir_path)
    if not segments:
        raise ValueError(f"no journal segments under {dir_path}")
    return segments[-1]


# --------------------------------------------------------------------- #
# source stalls
# --------------------------------------------------------------------- #


def stalling_source_factory(
    events: Sequence[Any],
    *,
    fail_after: int,
    failures: int = 1,
    exc_type: type[Exception] = ConnectionError,
) -> Callable[[], AsyncIterator[Any]]:
    """A source factory whose first ``failures`` streams die mid-flight.

    Each construction yields ``events`` from the start; the first
    ``failures`` constructions raise ``exc_type`` after ``fail_after``
    events.  Built for :func:`repro.serve.sources.resilient_source`,
    which restarts the factory and skips what was already delivered —
    so the recovered stream is exactly ``events``, once.
    """
    if fail_after < 0:
        raise ValueError("fail_after must be >= 0")
    state = {"constructions": 0}

    def factory() -> AsyncIterator[Any]:
        construction = state["constructions"]
        state["constructions"] += 1

        async def source() -> AsyncIterator[Any]:
            for n, event in enumerate(events):
                if construction < failures and n >= fail_after:
                    raise exc_type(
                        f"injected source stall after {n} events "
                        f"(construction {construction})"
                    )
                yield event

        return source()

    return factory
