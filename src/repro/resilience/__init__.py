"""Infrastructure fault injection for the crash-resilient control plane.

Everything the resilience layer claims to survive — worker death, hung
jobs, torn journal writes, corrupted checkpoints, stalling sources — is
injectable on purpose from here, seeded and deterministic, so the
recovery paths are *exercised* in CI rather than trusted.
"""

from repro.resilience.faults import (
    FaultPlan,
    WorkerFaultInjector,
    corrupt_journal,
    flip_bit,
    stalling_source_factory,
    truncate_journal,
    truncate_tail,
)

__all__ = [
    "FaultPlan",
    "WorkerFaultInjector",
    "corrupt_journal",
    "flip_bit",
    "stalling_source_factory",
    "truncate_journal",
    "truncate_tail",
]
