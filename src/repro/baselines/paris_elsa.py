"""PARIS and ELSA (DAC'22), reimplemented — the remaining MIG row of Table I.

PARIS ("PARtition Intelligently by Size") picks a MIG instance size per
workload from its batch-size distribution: the partition must meet the SLO
at the distribution's upper percentile, not just the mean.  ELSA ("ELastic
Scheduling Algorithm") then schedules request batches *temporally* across
the heterogeneously-partitioned GPU pool.

Table I's characterization, reproduced here:

- MIG yes / MPS no (one process per instance);
- internal slack **not** prevented: sizing to the upper batch percentile
  over-provisions for the common case, and without MPS the instances idle
  during host-side phases;
- external fragmentation **not** prevented: instances are packed first-fit
  with no slot-preference or splitting machinery;
- no high-request-rate support in the original (single-node focus) — but
  unlike GSLICE it degrades by adding GPUs rather than failing, since MIG
  instances replicate naturally; we follow the charitable reading and
  replicate (its Table-I "N/A" spatial scheduling).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.baselines.base import Framework, InfeasibleScheduleError
from repro.core.placement import GPUPlan, PlacedSegment, Placement
from repro.core.service import Service
from repro.gpu.mig import INSTANCE_SIZES, MigLayout, PlacedInstance, legal_starts
from repro.profiler.table import ProfileEntry

#: PARIS sizes against this percentile of the batch-size distribution: the
#: chosen instance must meet the SLO even for upper-tail batches.
TAIL_FACTOR = 2.0


class ParisElsa(Framework):
    """The PARIS (sizing) + ELSA (placement) pipeline."""

    @property
    def name(self) -> str:
        return "paris-elsa"

    # ------------------------------------------------------------------ #
    # PARIS: instance sizing from the batch distribution
    # ------------------------------------------------------------------ #

    def _paris_size(self, service: Service) -> tuple[int, ProfileEntry]:
        """Smallest instance size whose *tail-batch* latency meets the SLO.

        The batch distribution is summarized by its mean entry (max
        throughput under SLO) and a tail batch ``TAIL_FACTOR`` times
        larger; the instance must satisfy the SLO at the tail too.
        """
        table = self._table(service)
        for size in INSTANCE_SIZES:
            best: Optional[ProfileEntry] = None
            for e in table.entries_for_size(size):
                if e.num_processes != 1:
                    continue
                if e.latency_ms >= service.effective_slo_ms:
                    continue
                tail_batch = min(128, int(e.batch_size * TAIL_FACTOR))
                tail = table.lookup(size, tail_batch, 1)
                if tail is not None and tail.latency_ms >= service.effective_slo_ms:
                    continue  # tail batches would violate: size up
                if best is None or e.throughput > best.throughput:
                    best = e
            if best is not None:
                return size, best
        raise InfeasibleScheduleError(
            f"paris-elsa: {service.id} meets its SLO on no instance size"
        )

    # ------------------------------------------------------------------ #
    # ELSA: first-fit placement over heterogeneously partitioned GPUs
    # ------------------------------------------------------------------ #

    def _schedule(self, services: Sequence[Service]) -> Placement:
        demands: list[tuple[Service, int, ProfileEntry, int]] = []
        for svc in services:
            size, entry = self._paris_size(svc)
            count = max(1, math.ceil(svc.request_rate / entry.throughput))
            demands.append((svc, size, entry, count))
        # largest instances first (plain FFD, no slot preferences)
        demands.sort(key=lambda d: d[1], reverse=True)

        layouts: list[MigLayout] = []
        plans: list[GPUPlan] = []

        def place(size: int) -> tuple[int, int]:
            for gpu_id, layout in enumerate(layouts):
                for start in legal_starts(size, extended=False):
                    if layout.can_add(size, start, extended=False):
                        layout.add(PlacedInstance(size, start))
                        return gpu_id, start
            layout = MigLayout()
            start = legal_starts(size, extended=False)[0]
            layout.add(PlacedInstance(size, start))
            layouts.append(layout)
            plans.append(GPUPlan(gpu_id=len(plans)))
            return len(layouts) - 1, start

        for svc, size, entry, count in demands:
            for _ in range(count):
                gpu_id, start = place(size)
                plans[gpu_id].segments.append(
                    PlacedSegment(
                        service_id=svc.id,
                        model=svc.model,
                        kind="mig",
                        gpcs=float(size),
                        batch_size=entry.batch_size,
                        num_processes=1,
                        capacity=entry.throughput,
                        latency_ms=entry.latency_ms,
                        sm_activity=entry.sm_activity,
                        start=start,
                    )
                )
        return Placement(framework=self.name, gpus=plans)
