"""gpulet (Choi et al., USENIX ATC'22), reimplemented.

gpulet partitions whole GPUs with MPS percentage quotas ("gpulets") under
three structural rules the ParvaGPU paper calls out:

1. **At most two workloads per GPU.**  The interference predictor was only
   trained on pairs, so consolidation stops at two.
2. **The second partition gets *all* remaining resources.**  The first
   partition is sized to its workload's need (10% granularity); whatever is
   left goes wholesale to the partner — no external fragmentation, but
   plenty of *internal slack* (the partner rarely needs that much).
3. **Pairwise interference is predicted, with error.**  Sizing uses the
   error-prone predictor from :class:`repro.models.interference
   .InterferenceOracle`; the placement records ground-truth latency, so an
   underestimated pair can genuinely violate its SLO at serving time (the
   paper observed 3.5% violations in S2).

High request rates are supported by splitting a service into several
gpulets, each at most a full GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.base import Framework, InfeasibleScheduleError
from repro.core.placement import GPUPlan, PlacedSegment, Placement
from repro.core.service import Service
from repro.models.interference import Corunner, InterferenceOracle
from repro.models.perf import PROFILE_BATCH_SIZES, PerfModel
from repro.models.zoo import get_model

#: MPS quota granularity gpulet uses when sizing the first partition.
FRACTION_STEP = 0.10

#: Interference headroom gpulet budgets while sizing (it later verifies the
#: pair with the predictor, so sizing only needs a mild cushion).
SIZING_HEADROOM = 1.10

#: Share of the GPU gpulet refuses to promise to a pair: the sum of the two
#: partitions' base requirements plus this interference reserve must fit,
#: or the candidate partner goes to a fresh GPU (the "sum of their resource
#: usage and additional resources considering interference" test, SII-A).
PAIRING_RESERVE = 0.15


@dataclass
class _Gpulet:
    """One MPS partition request before placement."""

    service: Service
    fraction: float  #: share of a whole GPU, (0, 1]
    batch: int
    capacity: float  #: requests/s at this fraction, interference-free
    rate_share: float  #: portion of the service's rate this gpulet carries


class Gpulet(Framework):
    """The gpulet scheduler."""

    def __init__(self, profiles, oracle: Optional[InterferenceOracle] = None):
        super().__init__(profiles)
        self.oracle = oracle if oracle is not None else InterferenceOracle()

    @property
    def name(self) -> str:
        return "gpulet"

    # ------------------------------------------------------------------ #
    # sizing
    # ------------------------------------------------------------------ #

    def _best_point(
        self, service: Service, fraction: float
    ) -> Optional[tuple[int, float, float]]:
        """Best (batch, latency, throughput) at ``fraction`` under the SLO."""
        perf = PerfModel(get_model(service.model))
        gpcs = 7.0 * fraction
        best: Optional[tuple[int, float, float]] = None
        for b in PROFILE_BATCH_SIZES:
            if not perf.fits(7, b, 1):  # whole-GPU memory bound
                continue
            lat = perf.latency_ms(gpcs, b, 1) * SIZING_HEADROOM
            if lat >= service.effective_slo_ms:
                continue
            tp = perf.throughput(gpcs, b, 1)
            if best is None or tp > best[2]:
                best = (b, lat / SIZING_HEADROOM, tp)
        return best

    def _make_gpulets(self, service: Service) -> list[_Gpulet]:
        """Split a service into gpulets, each at most one full GPU."""
        remaining = service.request_rate
        out: list[_Gpulet] = []
        while remaining > 1e-9:
            chosen: Optional[_Gpulet] = None
            for step in range(1, int(round(1.0 / FRACTION_STEP)) + 1):
                fraction = step * FRACTION_STEP
                point = self._best_point(service, fraction)
                if point is None:
                    continue
                b, lat, tp = point
                # The chunk is sized against the interference-budgeted
                # throughput (latency inflated by SIZING_HEADROOM), so a
                # typical co-runner leaves utilization below one; only
                # pairs whose interference the predictor *underestimates*
                # beyond the budget drift into overload.
                budgeted = tp / SIZING_HEADROOM
                if budgeted >= remaining:
                    chosen = _Gpulet(service, fraction, b, tp, remaining)
                    break
            if chosen is None:
                point = self._best_point(service, 1.0)
                if point is None:
                    raise InfeasibleScheduleError(
                        f"gpulet: {service.id} cannot meet "
                        f"{service.effective_slo_ms:.0f} ms on a full GPU"
                    )
                b, lat, tp = point
                chosen = _Gpulet(service, 1.0, b, tp, tp / SIZING_HEADROOM)
            out.append(chosen)
            remaining -= chosen.rate_share
        return out

    # ------------------------------------------------------------------ #
    # pairing
    # ------------------------------------------------------------------ #

    def _pair_ok(self, first: _Gpulet, second: _Gpulet, f2: float) -> bool:
        """Predicted-interference SLO check for a candidate pair."""
        for victim, partner, vf, pf in (
            (first, second, first.fraction, f2),
            (second, first, f2, second.fraction),
        ):
            spec = get_model(victim.service.model)
            partner_spec = get_model(partner.service.model)
            slowdown = self.oracle.predicted_slowdown(
                spec, [Corunner(partner_spec, pf)]
            )
            perf = PerfModel(spec)
            lat = perf.latency_ms(7.0 * vf, victim.batch, 1) * slowdown
            if lat >= victim.service.effective_slo_ms:
                return False
        return True

    def _actual_point(
        self, glet: _Gpulet, fraction: float, partner: Optional[_Gpulet]
    ) -> tuple[float, float, float]:
        """Ground-truth (latency, capacity, activity) for the placed partition."""
        spec = get_model(glet.service.model)
        perf = PerfModel(spec)
        slowdown = 1.0
        if partner is not None:
            slowdown = self.oracle.actual_slowdown(
                spec, [Corunner(get_model(partner.service.model), partner.fraction)]
            )
        gpcs = 7.0 * fraction
        lat = perf.latency_ms(gpcs, glet.batch, 1) * slowdown
        capacity = 1000.0 * glet.batch / lat
        activity = perf.sm_activity(gpcs, glet.batch, 1)
        return lat, capacity, activity

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def _schedule(self, services: Sequence[Service]) -> Placement:
        gpulets: list[_Gpulet] = []
        for svc in services:
            gpulets.extend(self._make_gpulets(svc))
        gpulets.sort(key=lambda g: g.fraction, reverse=True)

        # Each entry: (first gpulet, second gpulet or None).
        gpus: list[list[_Gpulet]] = []
        free: list[float] = []  # remaining fraction of each GPU
        for glet in gpulets:
            placed = False
            for i, members in enumerate(gpus):
                if (
                    len(members) >= 2
                    or glet.fraction > free[i] - PAIRING_RESERVE + 1e-9
                ):
                    continue
                if self._pair_ok(members[0], glet, free[i]):
                    # Rule 2: the partner absorbs ALL remaining resources,
                    # and gpulet re-derives the best batch for the enlarged
                    # partition (part of its "medium" scheduling overhead).
                    glet.fraction = free[i]
                    rebatch = self._best_point(glet.service, glet.fraction)
                    if rebatch is not None:
                        glet.batch, _, glet.capacity = rebatch
                    members.append(glet)
                    free[i] = 0.0
                    placed = True
                    break
            if not placed:
                gpus.append([glet])
                free.append(1.0 - glet.fraction)

        placement = Placement(framework=self.name)
        for gpu_id, members in enumerate(gpus):
            plan = GPUPlan(gpu_id=gpu_id)
            for idx, glet in enumerate(members):
                partner = members[1 - idx] if len(members) == 2 else None
                lat, capacity, activity = self._actual_point(
                    glet, glet.fraction, partner
                )
                plan.segments.append(
                    PlacedSegment(
                        service_id=glet.service.id,
                        model=glet.service.model,
                        kind="mps",
                        gpcs=7.0 * glet.fraction,
                        batch_size=glet.batch,
                        num_processes=1,
                        capacity=capacity,
                        latency_ms=lat,
                        sm_activity=activity,
                        served_rate=glet.rate_share,
                    )
                )
            placement.gpus.append(plan)
        # Traffic was routed per-gpulet chunk above: the second partition of
        # a pair keeps only its chunk even though it owns all remaining
        # resources — that gap *is* gpulet's internal slack.
        placement.rates_assigned = True
        return placement
