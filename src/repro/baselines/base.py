"""Common scheduler interface + the Table-I capability matrix.

Every framework (ParvaGPU included) is a ``schedule(services) ->
Placement`` callable; the experiment harnesses treat them uniformly and
time the call for the scheduling-delay figures.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.placement import Placement
from repro.core.service import Service
from repro.profiler.table import ProfileTable


class InfeasibleScheduleError(RuntimeError):
    """The framework cannot produce a valid schedule for this scenario.

    iGniter raises this for S5/S6-class request rates, matching the paper's
    "unable to manage high request rates, leading to its failure to
    execute in S5 and S6".
    """


@dataclass(frozen=True)
class Capabilities:
    """One row of Table I."""

    name: str
    mps_support: bool
    mig_support: bool
    internal_slack_prevention: bool
    external_fragmentation_prevention: bool | None  #: None renders as N/A
    spatial_scheduling: bool | int | None  #: gpulet's "2" fits here
    high_request_rate_support: bool
    scheduling_overhead: str  #: "Low" / "Medium" / "Very high" / "N/A"


#: Table I of the paper, reproduced as data.
TABLE_I: tuple[Capabilities, ...] = (
    Capabilities("GSLICE", True, False, True, False, True, False, "Low"),
    Capabilities("gpulet", True, False, False, None, 2, True, "Medium"),
    Capabilities("iGniter", True, False, False, False, True, False, "Low"),
    Capabilities("PARIS and ELSA", False, True, False, False, None, False, "N/A"),
    Capabilities("MIG-serving", False, True, False, True, True, True, "Very high"),
    Capabilities("ParvaGPU", True, True, True, True, True, True, "Low"),
)


class Framework(abc.ABC):
    """A spatial GPU-sharing scheduler under evaluation."""

    def __init__(self, profiles: Mapping[str, ProfileTable]) -> None:
        self.profiles = profiles

    @property
    @abc.abstractmethod
    def name(self) -> str: ...

    @abc.abstractmethod
    def _schedule(self, services: Sequence[Service]) -> Placement:
        """Produce a placement; raise InfeasibleScheduleError if unable."""

    def schedule(self, services: Sequence[Service]) -> Placement:
        """Timed, validated scheduling entry point."""
        t0 = time.perf_counter()  # repro-lint: disable=D002 (scheduling delay is fig9's measured quantity, not simulated state)
        placement = self._schedule(services)
        placement.scheduling_delay_ms = (time.perf_counter() - t0) * 1e3  # repro-lint: disable=D002 (stopwatch stop for the fig9 delay measurement)
        placement.framework = self.name
        if not placement.rates_assigned:
            placement.assign_rates({s.id: s.request_rate for s in services})
        placement.validate()
        return placement

    def _table(self, service: Service) -> ProfileTable:
        try:
            return self.profiles[service.model]
        except KeyError:
            raise InfeasibleScheduleError(
                f"{self.name}: model {service.model!r} was never profiled"
            ) from None
