"""MIG-serving (Tan et al.), fast algorithm, reimplemented.

MIG-serving frames instance sizing *and* placement as one cutting-stock
problem: repeatedly choose a whole-GPU MIG configuration (one of the 19 of
Figure 1), assign its instance slots to services, and deduct the served
throughput — a greedy over scored configurations (their "fast algorithm";
the genetic/MCTS "slow algorithms" take hours and the paper only compares
against fast).

Behaviours the ParvaGPU paper attributes to it, which emerge here:

- **No MPS**: one process per instance, so instances idle while batches
  transfer — internal slack.
- **Heuristic over-allocation**: the slot score rewards raw instance
  throughput (``ALPHA`` bias) on top of matched demand, so low-rate
  services receive instances far larger than they need (the paper:
  "over-allocation resulting from its heuristic algorithm in scenarios
  with smaller request rates").
- **Fragmentation-averse scoring**: configurations with unassigned GPCs
  score poorly (``BETA`` penalty), so chosen GPUs are filled — external
  fragmentation stays low at the cost of more slack.
- **Very high scheduling overhead**: every GPU decision scans all 19
  configurations x 7 slots x N services; with demand-proportional GPU
  counts the delay grows superlinearly in scenario scale (Figs. 9/11).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.base import Framework, InfeasibleScheduleError
from repro.core.placement import GPUPlan, PlacedSegment, Placement
from repro.core.service import Service
from repro.gpu.mig import enumerate_configurations
from repro.profiler.table import ProfileEntry

#: Over-allocation bias: fraction of an instance's *raw* throughput counted
#: as benefit even beyond the service's remaining demand.  The high value is
#: what makes MIG-serving hand large instances to low-rate services (its
#: documented internal-slack failure mode at small scenarios).
ALPHA = 0.8

#: Score penalty per unassigned GPC in a candidate configuration.
BETA = 200.0

#: Safety derating MIG-serving applies to profiled throughput.
DERATE = 0.8

#: Conservative latency margin: MIG-serving only trusts operating points
#: comfortably inside the SLO, which pushes services onto larger instances
#: (more over-allocation, the paper's internal-slack observation).
LATENCY_MARGIN = 0.75


class MigServing(Framework):
    """The MIG-serving fast algorithm."""

    def __init__(self, profiles):
        super().__init__(profiles)
        self._configs = enumerate_configurations()

    @property
    def name(self) -> str:
        return "mig-serving"

    # ------------------------------------------------------------------ #
    # per-service instance performance (single process, no MPS)
    # ------------------------------------------------------------------ #

    def _best_entry(self, service: Service, size: int) -> Optional[ProfileEntry]:
        """Best single-process point of ``size`` under the service's SLO."""
        best: Optional[ProfileEntry] = None
        for e in self._table(service).entries_for_size(size):
            if e.num_processes != 1:
                continue
            if e.latency_ms >= service.effective_slo_ms * LATENCY_MARGIN:
                continue
            if best is None or e.throughput > best.throughput:
                best = e
        return best

    # ------------------------------------------------------------------ #
    # greedy cutting stock
    # ------------------------------------------------------------------ #

    def _schedule(self, services: Sequence[Service]) -> Placement:
        # NOTE: deliberately *not* memoized across the search.  MIG-serving
        # performs sizing and allocation jointly, re-deriving each service's
        # best operating point inside the per-GPU configuration scan; that
        # coupled search is precisely the "very high scheduling overhead"
        # the paper measures (Figs. 9/11), so the reimplementation pays it.
        def entry(svc: Service, size: int) -> Optional[ProfileEntry]:
            return self._best_entry(svc, size)

        remaining: dict[str, float] = {s.id: s.request_rate for s in services}
        by_id = {s.id: s for s in services}
        for svc in services:
            if all(entry(svc, sz) is None for sz in (1, 2, 3, 4, 7)):
                raise InfeasibleScheduleError(
                    f"mig-serving: {svc.id} meets its SLO on no instance size"
                )

        placement = Placement(framework=self.name)
        gpu_id = 0
        while any(r > 1e-9 for r in remaining.values()):
            best_score = float("-inf")
            best_assignment: Optional[
                list[tuple[str, int, int, ProfileEntry]]
            ] = None

            # The expensive joint search the paper criticizes: every
            # configuration is scored against every service, per GPU.
            for layout in self._configs:
                rem = dict(remaining)
                assignment: list[tuple[str, int, int, ProfileEntry]] = []
                score = 0.0
                unused_gpcs = 0
                for inst in sorted(
                    layout.instances, key=lambda i: i.size, reverse=True
                ):
                    slot_best: Optional[tuple[float, str, ProfileEntry]] = None
                    for sid, r in rem.items():
                        if r <= 1e-9:
                            continue
                        e = entry(by_id[sid], inst.size)
                        if e is None:
                            continue
                        tp = e.throughput * DERATE
                        benefit = min(r, tp) + ALPHA * tp
                        if slot_best is None or benefit > slot_best[0]:
                            slot_best = (benefit, sid, e)
                    if slot_best is None:
                        unused_gpcs += inst.size
                        continue
                    benefit, sid, e = slot_best
                    score += benefit
                    rem[sid] -= e.throughput * DERATE
                    assignment.append((sid, inst.size, inst.start, e))
                score -= BETA * unused_gpcs
                if assignment and score > best_score:
                    best_score = score
                    best_assignment = assignment

            if best_assignment is None:  # pragma: no cover - defensive
                raise InfeasibleScheduleError(
                    "mig-serving: no configuration makes progress"
                )

            plan = GPUPlan(gpu_id=gpu_id)
            for sid, size, start, e in best_assignment:
                remaining[sid] -= e.throughput * DERATE
                plan.segments.append(
                    PlacedSegment(
                        service_id=sid,
                        model=by_id[sid].model,
                        kind="mig",
                        gpcs=float(size),
                        batch_size=e.batch_size,
                        num_processes=1,
                        capacity=e.throughput,
                        latency_ms=e.latency_ms,
                        sm_activity=e.sm_activity,
                        start=start,
                    )
                )
            placement.gpus.append(plan)
            gpu_id += 1
        return placement
