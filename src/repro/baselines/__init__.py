"""Every comparison framework of the evaluation, reimplemented.

- :mod:`repro.baselines.base`        -- the common scheduler interface and
  the Table-I capability metadata.
- :mod:`repro.baselines.gpulet`      -- gpulet (USENIX ATC'22): MPS pairs.
- :mod:`repro.baselines.igniter`     -- iGniter (TPDS'22): interference-
  padded MPS partitions, one per service.
- :mod:`repro.baselines.mig_serving` -- MIG-serving (fast algorithm):
  cutting-stock greedy over whole-GPU MIG configurations.
- :mod:`repro.baselines.variants`    -- ParvaGPU-single / -unoptimized.
"""

from repro.baselines.base import (
    Capabilities,
    Framework,
    InfeasibleScheduleError,
    TABLE_I,
)
from repro.baselines.gpulet import Gpulet
from repro.baselines.gslice import GSlice
from repro.baselines.igniter import IGniter
from repro.baselines.mig_serving import MigServing
from repro.baselines.paris_elsa import ParisElsa
from repro.baselines.variants import make_framework, all_frameworks

__all__ = [
    "Capabilities",
    "Framework",
    "InfeasibleScheduleError",
    "TABLE_I",
    "Gpulet",
    "GSlice",
    "ParisElsa",
    "IGniter",
    "MigServing",
    "make_framework",
    "all_frameworks",
]
