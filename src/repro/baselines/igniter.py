"""iGniter (Xu et al., TPDS'22), reimplemented.

iGniter provisions one MPS partition per service on whole GPUs, sized by an
interference-aware performance model fitted from lightweight profiling.
The ParvaGPU paper highlights three behaviours we reproduce:

1. **Over-allocation against model error** — after computing the minimal
   resource share that meets the SLO at the target rate, iGniter adds a
   guard band (``GUARD_FRACTION``) because its lightweight profiling is
   imprecise; that guard band is pure internal slack.
2. **No fragmentation handling** — partitions are packed first-fit
   decreasing; leftover GPU fractions are simply wasted (Fig. 7 shows
   ~27% external fragmentation on average).
3. **No high-request-rate mechanism** — a service is a single partition;
   when its rate exceeds what a full GPU sustains under the SLO,
   scheduling fails.  This is why the paper's S5/S6 results omit iGniter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.base import Framework, InfeasibleScheduleError
from repro.core.placement import GPUPlan, PlacedSegment, Placement
from repro.core.service import Service
from repro.models.interference import Corunner, InterferenceModel
from repro.models.perf import PROFILE_BATCH_SIZES, PerfModel
from repro.models.zoo import get_model

#: Resource-share granularity of iGniter's provisioning model.
FRACTION_STEP = 0.05

#: Extra share added to every partition to absorb prediction error (SII-A of
#: the paper: "iGniter allocates additional GPU resources to each workload,
#: leading to internal slack").
GUARD_FRACTION = 0.10

#: iGniter budgets interference assuming a typical co-runner mix occupying
#: the rest of the GPU at average bandwidth intensity.
_ASSUMED_CORUNNER_BW = 0.6

#: Fraction of each GPU iGniter leaves unallocated as an interference
#: reserve when consolidating partitions (its provisioning model inflates
#: per-GPU demand; the reserve plus packing leftovers is the ~27% external
#: fragmentation Fig. 7 reports).
GPU_BUDGET = 0.85


@dataclass
class _Partition:
    service: Service
    fraction: float
    batch: int
    capacity: float
    latency_ms: float
    activity: float


class IGniter(Framework):
    """The iGniter scheduler."""

    def __init__(self, profiles, interference: Optional[InterferenceModel] = None):
        super().__init__(profiles)
        self.interference = (
            interference if interference is not None else InterferenceModel()
        )

    @property
    def name(self) -> str:
        return "igniter"

    # ------------------------------------------------------------------ #
    # sizing
    # ------------------------------------------------------------------ #

    def _size_partition(self, service: Service) -> _Partition:
        """Minimal share meeting SLO + rate, plus the guard band."""
        spec = get_model(service.model)
        perf = PerfModel(spec)
        steps = int(round(1.0 / FRACTION_STEP))
        for step in range(1, steps + 1):
            fraction = step * FRACTION_STEP
            gpcs = 7.0 * fraction
            # Interference budget: the rest of the GPU runs other services.
            assumed = Corunner(
                get_model(service.model), max(0.05, 1.0 - fraction)
            )
            slowdown = 1.0 + self.interference.kappa * (
                0.5 + 0.5 * spec.bw_intensity
            ) * _ASSUMED_CORUNNER_BW * assumed.share
            for b in PROFILE_BATCH_SIZES:
                if not perf.fits(7, b, 1):
                    continue
                lat = perf.latency_ms(gpcs, b, 1) * slowdown
                if lat >= service.effective_slo_ms:
                    continue
                tp = 1000.0 * b / lat
                if tp >= service.request_rate:
                    padded = min(1.0, fraction + GUARD_FRACTION)
                    pgpcs = 7.0 * padded
                    plat = perf.latency_ms(pgpcs, b, 1) * slowdown
                    return _Partition(
                        service=service,
                        fraction=padded,
                        batch=b,
                        capacity=1000.0 * b / plat,
                        latency_ms=plat,
                        activity=perf.sm_activity(pgpcs, b, 1),
                    )
        raise InfeasibleScheduleError(
            f"igniter: {service.id} needs more than one full GPU "
            f"({service.request_rate:.0f} req/s under "
            f"{service.effective_slo_ms:.0f} ms) and iGniter cannot split "
            "services across partitions"
        )

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def _schedule(self, services: Sequence[Service]) -> Placement:
        partitions = [self._size_partition(s) for s in services]
        partitions.sort(key=lambda p: p.fraction, reverse=True)

        gpus: list[list[_Partition]] = []
        free: list[float] = []
        for part in partitions:
            for i in range(len(gpus)):
                if part.fraction <= free[i] + 1e-9:
                    gpus[i].append(part)
                    free[i] -= part.fraction
                    break
            else:
                gpus.append([part])
                free.append(GPU_BUDGET - part.fraction)

        placement = Placement(framework=self.name)
        for gpu_id, members in enumerate(gpus):
            plan = GPUPlan(gpu_id=gpu_id)
            for part in members:
                plan.segments.append(
                    PlacedSegment(
                        service_id=part.service.id,
                        model=part.service.model,
                        kind="mps",
                        gpcs=7.0 * part.fraction,
                        batch_size=part.batch,
                        num_processes=1,
                        capacity=part.capacity,
                        latency_ms=part.latency_ms,
                        sm_activity=part.activity,
                    )
                )
            placement.gpus.append(plan)
        return placement
