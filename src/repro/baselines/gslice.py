"""GSLICE (SoCC'20), reimplemented — the remaining MPS-only row of Table I.

GSLICE self-tunes MPS partition sizes on a **single GPU**: it measures each
workload's latency/throughput at the current quota, grows partitions that
miss their SLO, shrinks over-provisioned ones (preventing internal slack),
and pairs this with adaptive batching.  Table I's characterization, which
this implementation reproduces:

- MPS yes / MIG no;
- internal-slack prevention **yes** (the self-tuning loop right-sizes);
- external-fragmentation prevention no;
- **no high-request-rate support**: one GPU only — demand beyond a single
  GPU raises :class:`InfeasibleScheduleError` (the ParvaGPU paper: "without
  considering multi-GPU environments, GSLICE is incapable of handling high
  request rates");
- low scheduling overhead (a handful of tuning iterations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.base import Framework, InfeasibleScheduleError
from repro.core.placement import GPUPlan, PlacedSegment, Placement
from repro.core.service import Service
from repro.models.interference import Corunner, InterferenceModel
from repro.models.perf import PROFILE_BATCH_SIZES, PerfModel
from repro.models.zoo import get_model

#: Quota adjustment step of the self-tuning loop (fraction of the GPU).
TUNING_STEP = 0.05

#: Iteration cap — GSLICE converges in a few rounds or not at all.
MAX_ROUNDS = 40


@dataclass
class _Tuned:
    service: Service
    fraction: float
    batch: int
    latency_ms: float
    capacity: float
    activity: float


class GSlice(Framework):
    """The GSLICE single-GPU self-tuning scheduler."""

    def __init__(self, profiles, interference: Optional[InterferenceModel] = None):
        super().__init__(profiles)
        self.interference = (
            interference if interference is not None else InterferenceModel()
        )

    @property
    def name(self) -> str:
        return "gslice"

    # ------------------------------------------------------------------ #
    # measurement (stands in for GSLICE's online latency/throughput probes)
    # ------------------------------------------------------------------ #

    def _measure(
        self, service: Service, fraction: float, others: Sequence[tuple[Service, float]]
    ) -> Optional[_Tuned]:
        """Best adaptive batch at ``fraction`` given the co-runner set."""
        spec = get_model(service.model)
        perf = PerfModel(spec)
        corunners = [
            Corunner(get_model(s.model), f) for s, f in others if f > 0
        ]
        slowdown = self.interference.slowdown(spec, corunners)
        best: Optional[_Tuned] = None
        for b in PROFILE_BATCH_SIZES:
            if not perf.fits(7, b, 1):
                continue
            lat = perf.latency_ms(7.0 * fraction, b, 1) * slowdown
            if lat >= service.effective_slo_ms:
                continue
            tp = 1000.0 * b / lat
            if best is None or tp > best.capacity:
                best = _Tuned(
                    service=service,
                    fraction=fraction,
                    batch=b,
                    latency_ms=lat,
                    capacity=tp,
                    activity=perf.sm_activity(7.0 * fraction, b, 1),
                )
        return best

    # ------------------------------------------------------------------ #
    # the self-tuning loop
    # ------------------------------------------------------------------ #

    def _schedule(self, services: Sequence[Service]) -> Placement:
        if not services:
            raise InfeasibleScheduleError("gslice: no services")
        n = len(services)
        fractions = {s.id: 1.0 / n for s in services}

        for _ in range(MAX_ROUNDS):
            changed = False
            tuned: dict[str, Optional[_Tuned]] = {}
            for svc in services:
                others = [
                    (o, fractions[o.id]) for o in services if o.id != svc.id
                ]
                tuned[svc.id] = self._measure(svc, fractions[svc.id], others)

            for svc in services:
                t = tuned[svc.id]
                free = 1.0 - sum(fractions.values())
                if (t is None or t.capacity < svc.request_rate) and (
                    free >= TUNING_STEP - 1e-9
                ):
                    fractions[svc.id] += TUNING_STEP  # grow under-performer
                    changed = True
                elif t is not None and t.capacity > 1.3 * svc.request_rate and (
                    fractions[svc.id] > TUNING_STEP + 1e-9
                ):
                    fractions[svc.id] -= TUNING_STEP  # shave slack
                    changed = True
            if not changed:
                break

        plan = GPUPlan(gpu_id=0)
        for svc in services:
            others = [(o, fractions[o.id]) for o in services if o.id != svc.id]
            t = self._measure(svc, fractions[svc.id], others)
            if t is None or t.capacity < svc.request_rate:
                raise InfeasibleScheduleError(
                    f"gslice: {svc.id} cannot be served on a single shared "
                    f"GPU ({svc.request_rate:.0f} req/s under "
                    f"{svc.effective_slo_ms:.0f} ms)"
                )
            plan.segments.append(
                PlacedSegment(
                    service_id=svc.id,
                    model=svc.model,
                    kind="mps",
                    gpcs=7.0 * t.fraction,
                    batch_size=t.batch,
                    num_processes=1,
                    capacity=t.capacity,
                    latency_ms=t.latency_ms,
                    sm_activity=t.activity,
                )
            )
        return Placement(framework=self.name, gpus=[plan])
