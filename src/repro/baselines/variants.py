"""ParvaGPU ablation variants and the framework factory.

- ``parvagpu-single``      — MPS disabled (one process per segment); used
  in Figs. 5/6/8/9/10/11 to isolate MPS's contribution.
- ``parvagpu-unoptimized`` — Allocation Optimization disabled; used in
  Fig. 7 to isolate the optimization's contribution.

``make_framework`` gives the experiment harnesses one uniform way to
instantiate any scheduler by name.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

from repro.baselines.gpulet import Gpulet
from repro.baselines.gslice import GSlice
from repro.baselines.igniter import IGniter
from repro.baselines.mig_serving import MigServing
from repro.baselines.paris_elsa import ParisElsa
from repro.core.parvagpu import ParvaGPU
from repro.core.placement import Placement
from repro.core.service import Service
from repro.profiler.table import ProfileTable


class Scheduler(Protocol):  # pragma: no cover - typing helper
    @property
    def name(self) -> str: ...

    def schedule(self, services: Sequence[Service]) -> Placement: ...


#: Evaluation order used by every per-scenario figure.
FRAMEWORK_NAMES: tuple[str, ...] = (
    "gpulet",
    "igniter",
    "mig-serving",
    "parvagpu-single",
    "parvagpu",
)


def make_framework(
    name: str, profiles: Mapping[str, ProfileTable], fast_path: bool = True
) -> Scheduler:
    """Instantiate a scheduler by its evaluation name.

    ``fast_path=False`` builds the ParvaGPU variants on the naive
    (unindexed, unmemoized) scans — placements are identical either way;
    the wall-clock experiments reproducing the paper's scheduling-delay
    figures use it so their timings measure the paper's algorithms.
    """
    key = name.strip().lower()
    if key == "gpulet":
        return Gpulet(profiles)
    if key == "gslice":
        return GSlice(profiles)
    if key == "paris-elsa":
        return ParisElsa(profiles)
    if key == "igniter":
        return IGniter(profiles)
    if key == "mig-serving":
        return MigServing(profiles)
    if key == "parvagpu":
        return ParvaGPU(profiles, fast_path=fast_path)
    if key == "parvagpu-single":
        return ParvaGPU(profiles, use_mps=False, fast_path=fast_path)
    if key == "parvagpu-unoptimized":
        return ParvaGPU(profiles, optimize=False, fast_path=fast_path)
    raise KeyError(
        f"unknown framework {name!r}; known: "
        f"{', '.join(FRAMEWORK_NAMES + ('parvagpu-unoptimized', 'gslice', 'paris-elsa'))}"
    )


def all_frameworks(
    profiles: Mapping[str, ProfileTable],
    names: Sequence[str] = FRAMEWORK_NAMES,
) -> dict[str, Scheduler]:
    """Instantiate the standard comparison set."""
    return {n: make_framework(n, profiles) for n in names}
