"""Gated wall-clock assertions for timing-sensitive benchmark checks.

Wall-clock comparisons (Figure 9's framework-delay orderings, and any
future timing bound) are correct on a quiet machine but inherently flaky
under CI load: a background process can swing a sub-millisecond median
past any fixed tolerance.  Instead of choosing between deleting the
check and living with flakes, the bound is *gated*:

- by default a violated bound emits a :class:`WallClockWarning` — the
  run stays green, the violation is visible in the warning summary;
- with ``REPRO_STRICT_WALL_CLOCK`` set (non-empty) in the environment —
  a quiet benchmarking box, or a CI lane dedicated to timing — the same
  violation raises ``AssertionError`` exactly like a plain ``assert``.

Correctness checks (placement identity, compliance, fingerprints) must
never go through this gate; they are load-independent and always hard.
"""

from __future__ import annotations

import os
import warnings
from typing import Mapping, Optional

#: Environment variable that turns gated wall-clock bounds into hard
#: assertions.  Any non-empty value counts.
STRICT_ENV = "REPRO_STRICT_WALL_CLOCK"


class WallClockWarning(UserWarning):
    """A timing bound was violated on a possibly-loaded machine."""


def strict_wall_clock(env: Optional[Mapping[str, str]] = None) -> bool:
    """Whether wall-clock bounds are currently hard (``STRICT_ENV`` set)."""
    source = os.environ if env is None else env
    return bool(source.get(STRICT_ENV))


def wall_clock_assert(
    condition: bool,
    message: str,
    env: Optional[Mapping[str, str]] = None,
) -> bool:
    """Assert a timing bound, honoring the strictness gate.

    Returns ``True`` when the bound holds.  When it does not: raises
    ``AssertionError`` under ``REPRO_STRICT_WALL_CLOCK``, otherwise emits
    a :class:`WallClockWarning` (with ``stacklevel=2``, so the warning
    points at the benchmark's own line) and returns ``False``.
    """
    if condition:
        return True
    if strict_wall_clock(env):
        raise AssertionError(message)
    warnings.warn(WallClockWarning(message), stacklevel=2)
    return False
