"""Figure 9 — scheduling delay (log10 ms) of each framework per scenario."""

from __future__ import annotations

from repro.experiments.common import (
    SCENARIO_NAMES,
    STANDARD_FRAMEWORKS,
    schedule_scenario,
)
from repro.experiments.registry import ExperimentResult
from repro.metrics import log_ms


def run(
    frameworks: tuple[str, ...] = STANDARD_FRAMEWORKS, repeats: int = 3
) -> ExperimentResult:
    """Median-of-``repeats`` wall-clock delay, reported as log10(ms)."""
    result = ExperimentResult(
        experiment_id="fig9",
        title="Scheduling delay (log10 ms) per scenario",
        columns=("scenario", *frameworks),
    )
    for scenario in SCENARIO_NAMES:
        row: list[object] = [scenario]
        for fw in frameworks:
            delays = []
            for _ in range(repeats):
                # fast_path=False: this figure reproduces the *paper's*
                # per-algorithm scheduling cost, so the ParvaGPU flavours
                # are timed on the naive scans — memoized state can never
                # leak between variants because memoize=False bypasses
                # the triplet cache entirely.  (The fast path's speedup
                # is benchmarked in benchmarks/perf/ instead; placements
                # are identical either way.)
                placement, _ = schedule_scenario(fw, scenario, fast_path=False)
                if placement is None:
                    break
                delays.append(placement.scheduling_delay_ms)
            if not delays:
                row.append(None)
            else:
                delays.sort()
                row.append(log_ms(delays[len(delays) // 2]))
        result.add(*row)
    result.notes.append(
        "paper: ParvaGPU averages 80% lower delay than gpulet and 97.2% "
        "lower than MIG-serving; iGniter ~35% lower than ParvaGPU; "
        "ParvaGPU-single ~1.1 ms faster than ParvaGPU"
    )
    return result
