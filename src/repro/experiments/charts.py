"""Terminal charts for experiment results.

The paper's figures are grouped bar charts (per-scenario, per-framework)
and line series (scaling factors).  For a terminal-only reproduction these
render as Unicode bar rows, one group per scenario — enough to eyeball the
shapes EXPERIMENTS.md discusses without leaving the shell.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.registry import ExperimentResult

#: glyph used for bar fills
_BAR = "█"
_HALF = "▌"


def render_bar_chart(
    result: ExperimentResult,
    width: int = 40,
    max_value: Optional[float] = None,
) -> str:
    """Render a grouped bar chart: first column = group, rest = series.

    ``None`` cells (e.g. iGniter on S5/S6) render as ``n/a`` rows, matching
    the missing bars in the paper's figures.
    """
    groups = [str(row[0]) for row in result.rows]
    series = result.columns[1:]
    values: list[list[Optional[float]]] = [
        [None if v is None else float(v) for v in row[1:]] for row in result.rows
    ]
    observed = [v for row in values for v in row if v is not None]
    if not observed:
        return f"{result.title}\n(no data)"
    peak = max_value if max_value is not None else max(observed)
    if peak <= 0:
        peak = 1.0

    label_w = max(len(s) for s in series)
    lines = [f"{result.experiment_id}: {result.title}"]
    for group, row in zip(groups, values):
        lines.append(f"{group}")
        for name, v in zip(series, row):
            if v is None:
                lines.append(f"  {name:<{label_w}} │ n/a")
                continue
            cells = v / peak * width
            bar = _BAR * int(cells)
            if cells - int(cells) >= 0.5:
                bar += _HALF
            lines.append(f"  {name:<{label_w}} │{bar} {v:g}")
    lines.append(f"  {'':<{label_w}} └{'─' * width}")
    lines.append(f"  scale: full bar = {peak:g}")
    return "\n".join(lines)


def render_series(
    result: ExperimentResult, height: int = 12, width: Optional[int] = None
) -> str:
    """Render line series (Fig. 10/11 style): x = first column, one mark
    per series using its initial letter."""
    xs = [row[0] for row in result.rows]
    series = result.columns[1:]
    cols = width if width is not None else len(xs)
    observed = [
        float(v) for row in result.rows for v in row[1:] if v is not None
    ]
    if not observed:
        return f"{result.title}\n(no data)"
    lo, hi = min(observed), max(observed)
    span = hi - lo or 1.0

    grid = [[" "] * cols for _ in range(height)]
    marks = {}
    for si, name in enumerate(series):
        mark = name[0].upper()
        if mark in marks.values():
            mark = name[0].lower()
        marks[name] = mark
        for xi, row in enumerate(result.rows[:cols]):
            v = row[1 + si]
            if v is None:
                continue
            yi = int((float(v) - lo) / span * (height - 1))
            grid[height - 1 - yi][xi] = mark

    lines = [f"{result.experiment_id}: {result.title}"]
    for ri, row in enumerate(grid):
        label = f"{hi:8.2f}" if ri == 0 else (f"{lo:8.2f}" if ri == height - 1 else " " * 8)
        lines.append(f"{label} │ " + " ".join(row))
    lines.append(" " * 8 + "└" + "──" * cols)
    lines.append(" " * 10 + " ".join(str(x)[-1] for x in xs[:cols]))
    lines.append(
        "legend: " + ", ".join(f"{m}={n}" for n, m in marks.items())
    )
    return "\n".join(lines)
