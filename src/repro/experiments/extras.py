"""Beyond the paper's figures: the full seven-framework comparison.

Table I lists GSLICE and PARIS+ELSA but the paper's evaluation omits them
(GSLICE cannot leave one GPU; PARIS/ELSA predates the scenarios).  Having
reimplemented both, this harness measures *every* Table-I row on S1 — the
one scenario all seven frameworks can attempt — plus a tenant mix small
enough for GSLICE, turning Table I's qualitative claims into numbers.
"""

from __future__ import annotations

from repro.baselines import InfeasibleScheduleError, make_framework
from repro.experiments.common import cached_profiles
from repro.experiments.registry import ExperimentResult
from repro.metrics import external_fragmentation, internal_slack
from repro.scenarios import scenario_services
from repro.sim import simulate_placement

ALL_FRAMEWORKS: tuple[str, ...] = (
    "gslice",
    "gpulet",
    "igniter",
    "paris-elsa",
    "mig-serving",
    "parvagpu-single",
    "parvagpu",
)


def run(
    scenario: str = "S1",
    duration_s: float = 1.5,
    fast_path: bool = True,
) -> ExperimentResult:
    profiles = cached_profiles()
    result = ExperimentResult(
        experiment_id="table1x",
        title=f"All seven Table-I frameworks measured on {scenario}",
        columns=("framework", "gpus", "slack %", "frag %", "delay ms", "slo %"),
    )
    for name in ALL_FRAMEWORKS:
        # The delay column reports the *shipped* scheduler (fast path on);
        # fig9 is the artifact that times the paper's algorithms cold.
        fw = make_framework(name, profiles)
        services = scenario_services(scenario)
        try:
            placement = fw.schedule(services)
        except InfeasibleScheduleError:
            result.add(name, None, None, None, None, None)
            continue
        report = simulate_placement(
            placement, services, duration_s=duration_s, fast_path=fast_path
        )
        result.add(
            name,
            placement.num_gpus,
            100.0 * internal_slack(placement),
            100.0 * external_fragmentation(placement),
            placement.scheduling_delay_ms,
            100.0 * report.overall_compliance,
        )
    result.notes.append(
        "GSLICE serves S1 on one GPU but cannot scale past it; PARIS+ELSA "
        "places legally but over-allocates (no MPS, tail-batch sizing)"
    )
    return result
