"""Figure 8 — SLO compliance rate, measured in the discrete-event simulator."""

from __future__ import annotations

from repro.experiments.common import (
    SCENARIO_NAMES,
    STANDARD_FRAMEWORKS,
    schedule_scenario,
)
from repro.experiments.registry import ExperimentResult
from repro.sim import simulate_placement


def run(
    frameworks: tuple[str, ...] = STANDARD_FRAMEWORKS,
    duration_s: float = 2.0,
    warmup_s: float = 0.5,
    seed: int = 0,
    fast_path: bool = True,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig8",
        title="SLO compliance rate (%) per scenario",
        columns=("scenario", *frameworks),
    )
    for scenario in SCENARIO_NAMES:
        row: list[object] = [scenario]
        for fw in frameworks:
            placement, services = schedule_scenario(fw, scenario)
            if placement is None:
                row.append(None)
                continue
            report = simulate_placement(
                placement,
                services,
                duration_s=duration_s,
                warmup_s=warmup_s,
                seed=seed,
                fast_path=fast_path,
            )
            row.append(100.0 * report.overall_compliance)
        result.add(*row)
    result.notes.append(
        "paper: no framework violates SLOs except gpulet (3.5% violations "
        "in S2, attributed to interference misprediction)"
    )
    return result
