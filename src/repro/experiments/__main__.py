"""CLI: ``python -m repro.experiments [ids...]`` renders experiment tables."""

from __future__ import annotations

import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    ids = args if args else list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for experiment_id in ids:
        print(run_experiment(experiment_id).render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
