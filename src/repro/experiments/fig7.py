"""Figure 7 — external fragmentation rate (Eq. 4), incl. the ablation."""

from __future__ import annotations

from repro.experiments.common import (
    FIG7_FRAMEWORKS,
    SCENARIO_NAMES,
    schedule_scenario,
)
from repro.experiments.registry import ExperimentResult
from repro.metrics import external_fragmentation


def run(frameworks: tuple[str, ...] = FIG7_FRAMEWORKS) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig7",
        title="External fragmentation rate (%) per scenario",
        columns=("scenario", *frameworks),
    )
    for scenario in SCENARIO_NAMES:
        row: list[object] = [scenario]
        for fw in frameworks:
            placement, _ = schedule_scenario(fw, scenario)
            row.append(
                None
                if placement is None
                else 100.0 * external_fragmentation(placement)
            )
        result.add(*row)
    result.notes.append(
        "paper: ParvaGPU eliminates fragmentation in all scenarios; "
        "iGniter averages 26.9%; gpulet and MIG-serving stay low by "
        "construction; the unoptimized ablation shows what Allocation "
        "Optimization removes"
    )
    return result
