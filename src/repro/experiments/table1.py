"""Table I — qualitative comparison of spatial GPU-sharing solutions."""

from __future__ import annotations

from repro.baselines.base import TABLE_I
from repro.experiments.registry import ExperimentResult


def _mark(v: object) -> str:
    if v is True:
        return "yes"
    if v is False:
        return "no"
    if v is None:
        return "N/A"
    return str(v)


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table1",
        title="Comparison of spatial GPU sharing solutions for inference servers",
        columns=(
            "framework",
            "MPS",
            "MIG",
            "slack prevention",
            "frag prevention",
            "spatial scheduling",
            "high request rate",
            "overhead",
        ),
    )
    for cap in TABLE_I:
        result.add(
            cap.name,
            _mark(cap.mps_support),
            _mark(cap.mig_support),
            _mark(cap.internal_slack_prevention),
            _mark(cap.external_fragmentation_prevention),
            _mark(cap.spatial_scheduling),
            _mark(cap.high_request_rate_support),
            cap.scheduling_overhead,
        )
    return result
