"""Experiment harnesses: one module per table/figure of the paper.

Every harness returns an :class:`ExperimentResult` whose rows mirror the
series the paper plots; ``python -m repro.experiments <id>`` renders them
as text tables.  The registry maps experiment ids (``fig5`` ... ``table1``)
to their runner functions.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    run_experiment,
)

__all__ = ["EXPERIMENTS", "ExperimentResult", "get_experiment", "run_experiment"]
