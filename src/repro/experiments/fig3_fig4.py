"""Figures 3/4 — InceptionV3 throughput/latency vs (instance, batch, procs).

The paper plots three surfaces per figure (one per MPS process count) over
instance size x batch size.  The harness emits the same grid, dropping OOM
points exactly as the paper does, and carries the four anchor measurements
quoted in SIII-B as notes.
"""

from __future__ import annotations

from repro.experiments.common import cached_profiles
from repro.experiments.registry import ExperimentResult
from repro.gpu.mig import INSTANCE_SIZES
from repro.models.perf import PROFILE_BATCH_SIZES, PROFILE_PROCESS_COUNTS

MODEL = "inceptionv3"


def _grid(metric: str, experiment_id: str, title: str) -> ExperimentResult:
    table = cached_profiles()[MODEL]
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=("procs", "instance", *[f"b{b}" for b in PROFILE_BATCH_SIZES]),
    )
    for p in PROFILE_PROCESS_COUNTS:
        for g in INSTANCE_SIZES:
            row: list[object] = [p, g]
            for b in PROFILE_BATCH_SIZES:
                e = table.lookup(g, b, p)
                if e is None:
                    row.append(None)  # OOM point, absent as in the paper
                elif metric == "throughput":
                    row.append(round(e.throughput))
                else:
                    row.append(round(e.latency_ms, 1))
            result.add(*row)
    return result


def run_fig3() -> ExperimentResult:
    result = _grid(
        "throughput",
        "fig3",
        "InceptionV3 throughput (req/s) by instance size, batch, process count",
    )
    result.notes.append(
        "paper anchors: size1/b4 -> 354/444/446 req/s for 1/2/3 procs; "
        "size4/b8 -> 786/1695/1810 req/s"
    )
    return result


def run_fig4() -> ExperimentResult:
    result = _grid(
        "latency",
        "fig4",
        "InceptionV3 latency (ms) by instance size, batch, process count",
    )
    result.notes.append(
        "paper anchors: size1/b4 -> 11/18/27 ms for 1/2/3 procs; "
        "size4/b8 -> 10/9/13 ms"
    )
    return result
