"""Table IV — the six scenarios (rates and SLOs per workload)."""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult
from repro.models.zoo import TABLE_IV_ORDER
from repro.scenarios.table4 import SCENARIO_NAMES, SCENARIOS


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table4",
        title="Six scenarios from eleven DNN inference models",
        columns=("scenario", "metric", *TABLE_IV_ORDER),
    )
    for name in SCENARIO_NAMES:
        sc = SCENARIOS[name]
        rates: list[object] = []
        lats: list[object] = []
        for model in TABLE_IV_ORDER:
            load = sc.load_for(model)
            rates.append(None if load is None else round(load.request_rate))
            lats.append(None if load is None else round(load.slo_latency_ms))
        result.add(name, "rate", *rates)
        result.add(name, "latency", *lats)
    result.notes.append("rates in requests/s, SLO latencies in ms; N/A cells absent in S1")
    return result
