"""Figure 6 — internal slack rate of each baseline and ParvaGPU.

Slack is Eq. 3 computed from DCGM-style SM activity.  By default the
harness uses the analytic activity (profiled operating-point activity
scaled by routed load); with ``simulate=True`` it measures activity in the
discrete-event simulator instead, which is slower but end-to-end.
"""

from __future__ import annotations

from repro.experiments.common import (
    SCENARIO_NAMES,
    STANDARD_FRAMEWORKS,
    schedule_scenario,
)
from repro.experiments.registry import ExperimentResult
from repro.metrics import internal_slack
from repro.sim import simulate_placement


def run(
    frameworks: tuple[str, ...] = STANDARD_FRAMEWORKS,
    simulate: bool = False,
    duration_s: float = 2.0,
    seed: int = 0,
    fast_path: bool = True,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig6",
        title="Internal slack rate (%) per scenario"
        + (" [simulated]" if simulate else " [analytic]"),
        columns=("scenario", *frameworks),
    )
    for scenario in SCENARIO_NAMES:
        row: list[object] = [scenario]
        for fw in frameworks:
            placement, services = schedule_scenario(fw, scenario)
            if placement is None:
                row.append(None)
                continue
            if simulate:
                report = simulate_placement(
                    placement,
                    services,
                    duration_s=duration_s,
                    seed=seed,
                    fast_path=fast_path,
                )
                slack = internal_slack(placement, report.segment_activity)
            else:
                slack = internal_slack(placement)
            row.append(100.0 * slack)
        result.add(*row)
    result.notes.append(
        "paper: gpulet/iGniter/MIG-serving/ParvaGPU-single average "
        "+26/+32/+30/+4.7 points over ParvaGPU; ParvaGPU in the 3-5% range "
        "(their scenario rates were chosen to align with profiled segment "
        "capacities; ours follow Table IV verbatim, so absolute slack is "
        "higher but the ordering and gaps reproduce)"
    )
    return result
