"""Shared plumbing for the experiment harnesses."""

from __future__ import annotations

from functools import lru_cache
from typing import Mapping, Optional, Sequence

from repro.baselines import InfeasibleScheduleError, make_framework
from repro.core.placement import Placement
from repro.core.service import Service
from repro.profiler import ProfileTable, profile_workloads
from repro.scenarios import scenario_services
from repro.scenarios.table4 import SCENARIO_NAMES

#: Fig. 5/6/8/9 framework order (iGniter is absent from Fig. 7's legend and
#: ParvaGPU-unoptimized takes its place there).
STANDARD_FRAMEWORKS: tuple[str, ...] = (
    "gpulet",
    "igniter",
    "mig-serving",
    "parvagpu-single",
    "parvagpu",
)

FIG7_FRAMEWORKS: tuple[str, ...] = (
    "gpulet",
    "igniter",
    "mig-serving",
    "parvagpu-unoptimized",
    "parvagpu",
)

#: Fig. 10/11 framework set (iGniter cannot run S5).
SCALING_FRAMEWORKS: tuple[str, ...] = (
    "gpulet",
    "mig-serving",
    "parvagpu-single",
    "parvagpu",
)


@lru_cache(maxsize=1)
def cached_profiles() -> Mapping[str, ProfileTable]:
    """The Table-IV zoo profiled once per process."""
    return profile_workloads()


def schedule_scenario(
    framework: str,
    scenario: str,
    profiles: Optional[Mapping[str, ProfileTable]] = None,
    services: Optional[Sequence[Service]] = None,
    fast_path: bool = True,
) -> tuple[Optional[Placement], list[Service]]:
    """Schedule a scenario; ``(None, services)`` when the framework fails.

    A fresh service list is built per call because schedulers mutate the
    Configurator fields on the service objects.  ``fast_path=False``
    times the paper's naive scans (wall-clock delay experiments).
    """
    if profiles is None:
        profiles = cached_profiles()
    svcs = list(services) if services is not None else scenario_services(scenario)
    fw = make_framework(framework, profiles, fast_path=fast_path)
    try:
        return fw.schedule(svcs), svcs
    except InfeasibleScheduleError:
        return None, svcs


__all__ = [
    "STANDARD_FRAMEWORKS",
    "FIG7_FRAMEWORKS",
    "SCALING_FRAMEWORKS",
    "SCENARIO_NAMES",
    "cached_profiles",
    "schedule_scenario",
]
