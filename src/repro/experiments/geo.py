"""Geometry comparison — A100-only vs MI300X-only vs mixed fleets.

Beyond-the-paper experiment enabled by the pluggable partition geometries:
schedule the Table-IV workloads (plus the S7/S8 geometry-stress scenarios)
on three fleets —

- ``a100``   — the paper's MIG fleet (7 GPC slices per GPU);
- ``mi300x`` — an AMD fleet partitioned by XCD modes (SPX/DPX/QPX/CPX);
- ``mixed``  — a heterogeneous cluster, services assigned per Eq. 2 to the
  geometry serving them most efficiently;

and report, per (scenario, fleet): devices used, allocated compute in
A100-GPC equivalents (the cross-vendor unit), and simulated SLO
compliance.  Run via ``parvagpu experiment geo``; output is printed only
(deliberately not archived under ``benchmarks/out/`` so the MIG artifact
set stays byte-stable — see ``docs/experiments.md``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.hetero import _profiles_for, make_mixed_scheduler
from repro.core.parvagpu import ParvaGPU
from repro.core.placement import Placement
from repro.core.service import InfeasibleServiceError
from repro.experiments.registry import ExperimentResult
from repro.gpu.geometry import get_geometry
from repro.scenarios import scenario_services
from repro.sim import simulate_placement

#: Scenarios compared: a light and a heavy Table-IV column, plus the two
#: geometry-stress scenarios added alongside the MI300X backend.
GEO_SCENARIOS: tuple[str, ...] = ("S1", "S2", "S7", "S8")

FLEETS: tuple[str, ...] = ("a100", "mi300x", "mixed")


def _fleet_scheduler(fleet: str):
    if fleet == "a100":
        return ParvaGPU(_profiles_for("mig"))
    if fleet == "mi300x":
        return ParvaGPU(
            _profiles_for("mi300x"), geometry=get_geometry("mi300x")
        )
    if fleet == "mixed":
        return make_mixed_scheduler()
    raise KeyError(f"unknown fleet {fleet!r}; known: {', '.join(FLEETS)}")


def _allocated_gpc_equiv(placement: Placement) -> float:
    return sum(seg.effective_gpcs for _, seg in placement.iter_segments())


def run(
    scenarios: tuple[str, ...] = GEO_SCENARIOS,
    duration_s: float = 1.5,
    fast_path: bool = True,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="geo",
        title="Partition-geometry comparison: A100 vs MI300X vs mixed fleets",
        columns=(
            "scenario",
            "fleet",
            "gpus",
            "gpc_equiv",
            "slo_compliance_pct",
        ),
    )
    for scenario in scenarios:
        for fleet in FLEETS:
            services = scenario_services(scenario)
            placement: Optional[Placement]
            try:
                placement = _fleet_scheduler(fleet).schedule(services)
            except InfeasibleServiceError:
                placement = None
            if placement is None:
                result.add(scenario, fleet, None, None, None)
                continue
            report = simulate_placement(
                placement, services, duration_s=duration_s, fast_path=fast_path
            )
            result.add(
                scenario,
                fleet,
                placement.num_gpus,
                _allocated_gpc_equiv(placement),
                100.0 * report.overall_compliance,
            )
    result.notes.append(
        "gpc_equiv: allocated compute in A100-GPC equivalents "
        "(1 MI300X XCD = 1.4 GPC); mixed assigns each service to its most "
        "efficient geometry per Eq. 2"
    )
    return result
