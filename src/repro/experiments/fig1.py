"""Figure 1 — supported MIG configurations on the NVIDIA A100."""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult
from repro.gpu.mig import enumerate_configurations
from repro.gpu.slices import NUM_SLICES


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig1",
        title="Supported MIG configurations on the NVIDIA A100 GPU",
        columns=("config", *[f"slice{i}" for i in range(NUM_SLICES)], "sizes"),
    )
    configs = enumerate_configurations()
    for idx, layout in enumerate(configs, start=1):
        cells: list[str] = ["."] * NUM_SLICES
        for inst in layout.instances:
            span = range(inst.start, inst.start + inst.size)
            for i, s in enumerate(span):
                cells[s] = str(inst.size) if i == 0 else "-"
        result.add(idx, *cells, "+".join(str(s) for s in layout.sizes()))
    result.notes.append(f"{len(configs)} configurations (paper: 19)")
    return result
