"""Figures 10/11 — the SIV-D predictor scalability study.

The number of services in S5 grows 1..10-fold; every framework's predictor
(scheduling against profiles, no physical GPUs) reports the GPU count
(Fig. 10) and the scheduling delay (Fig. 11).  iGniter is excluded: it
cannot execute S5 at any scale.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines import InfeasibleScheduleError, make_framework
from repro.core.predictor import Predictor
from repro.experiments.common import SCALING_FRAMEWORKS, cached_profiles
from repro.experiments.registry import ExperimentResult
from repro.metrics import log_ms
from repro.scenarios import scaled_scenario

DEFAULT_FACTORS: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)


def _sweep(
    metric: str,
    experiment_id: str,
    title: str,
    factors: Sequence[int],
    frameworks: tuple[str, ...],
) -> ExperimentResult:
    profiles = cached_profiles()
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=("factor", *frameworks),
    )
    for k in factors:
        row: list[object] = [k]
        for fw_name in frameworks:
            # Unlike fig9 (which reproduces the paper's per-algorithm cold
            # cost on the naive scans), this scaling sweep reports the
            # *shipped* scheduler — fast path on.  Its claims only get
            # stronger that way: MIG-serving's joint search blows up with
            # service count while ParvaGPU's delay shrinks further.
            predictor = Predictor(make_framework(fw_name, profiles))
            try:
                prediction = predictor.predict(scaled_scenario(k))
            except InfeasibleScheduleError:  # pragma: no cover - not expected
                row.append(None)
                continue
            if metric == "gpus":
                row.append(prediction.num_gpus)
            else:
                row.append(log_ms(max(1e-3, prediction.scheduling_delay_ms)))
        result.add(*row)
    return result


def run_fig10(
    factors: Sequence[int] = DEFAULT_FACTORS,
    frameworks: tuple[str, ...] = SCALING_FRAMEWORKS,
) -> ExperimentResult:
    result = _sweep(
        "gpus",
        "fig10",
        "Total GPUs with S5 service count scaled 1-10x (predictor)",
        factors,
        frameworks,
    )
    result.notes.append(
        "paper: ParvaGPU uses on average 45.2%/30%/7.4% fewer GPUs than "
        "gpulet/MIG-serving/ParvaGPU-single"
    )
    return result


def run_fig11(
    factors: Sequence[int] = DEFAULT_FACTORS,
    frameworks: tuple[str, ...] = SCALING_FRAMEWORKS,
) -> ExperimentResult:
    result = _sweep(
        "delay",
        "fig11",
        "Scheduling delay (log10 ms) with S5 scaled 1-10x (predictor)",
        factors,
        frameworks,
    )
    result.notes.append(
        "paper: ParvaGPU cuts delay by 15.8% vs gpulet and 99.9% vs "
        "MIG-serving, whose joint search blows up with service count"
    )
    return result
