"""Figure 5 — total number of GPUs of each baseline and ParvaGPU."""

from __future__ import annotations

from repro.experiments.common import (
    SCENARIO_NAMES,
    STANDARD_FRAMEWORKS,
    schedule_scenario,
)
from repro.experiments.registry import ExperimentResult


def run(frameworks: tuple[str, ...] = STANDARD_FRAMEWORKS) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="fig5",
        title="Total number of GPUs per scenario",
        columns=("scenario", *frameworks),
    )
    for scenario in SCENARIO_NAMES:
        row: list[object] = [scenario]
        for fw in frameworks:
            placement, _ = schedule_scenario(fw, scenario)
            row.append(None if placement is None else placement.num_gpus)
        result.add(*row)

    # Headline savings the paper quotes: 46.5% / 34.6% / 41.0% on average
    # vs gpulet / iGniter / MIG-serving.
    parva = result.column("parvagpu")
    for rival in ("gpulet", "igniter", "mig-serving"):
        if rival not in frameworks:
            continue
        pairs = [
            (p, r)
            for p, r in zip(parva, result.column(rival))
            if p is not None and r is not None
        ]
        if pairs:
            saving = 100.0 * (1.0 - sum(p for p, _ in pairs) / sum(r for _, r in pairs))
            result.notes.append(f"ParvaGPU saves {saving:.1f}% GPUs vs {rival}")
    result.notes.append(
        "paper: 46.5% vs gpulet, 34.6% vs iGniter, 41.0% vs MIG-serving; "
        "iGniter cannot run S5/S6"
    )
    return result
