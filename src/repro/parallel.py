"""Deterministic process fan-out for the sharded control plane.

Fleet-scale work in this repository (per-interval serving measurement,
replan triplet scoring) is embarrassingly parallel: the unit tasks are
pure functions of picklable inputs, and every consumer merges results by
*input position*, never by completion order.  This module holds the
shared fan-out plumbing:

- :func:`partition` — contiguous, near-even index blocks.  Contiguity is
  what keeps sharded merges trivially order-independent: block ``k``
  owns input slots ``[start, stop)`` and its results scatter back into
  exactly those slots regardless of which worker finished first.
- :class:`ShardPool` — a lazily-created ``ProcessPoolExecutor`` wrapper
  whose :meth:`ShardPool.run` returns results **in job order**.  With
  ``workers == 1`` jobs run inline in the calling process through the
  identical pack/execute/unpack code path, so single-shard runs exercise
  the sharded machinery without any subprocess (and tests can cover the
  shard/merge logic cheaply).
- :func:`warm_triplet_decisions` — the replan-side fan-out: distinct
  uncached ``TRIPLETDECISION`` keys are scored by workers against a
  pickled copy of each profile table and the resulting operating-point
  *identities* are seeded back into the parent's memo caches
  (:meth:`~repro.profiler.table.ProfileTable.seed_triplet_decision`).
  ``best_triplets`` is a pure function of the table, so a worker's
  decision is bit-identical to one the parent would have computed.

Determinism contract: workers never share state, never consume random
draws, and never influence result order — a sharded run is bit-identical
to the serial reference for any worker count (guarded by
``tests/property/test_property_parallel.py`` and the perf harness's
parallel-vs-serial fingerprint identity check).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence


def partition(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``shards`` contiguous blocks.

    Blocks are near-even (sizes differ by at most one, larger blocks
    first) and non-empty; fewer than ``shards`` blocks are returned when
    ``n < shards``.  The split depends only on ``(n, shards)``, so two
    processes partition identically.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    blocks: list[tuple[int, int]] = []
    k = min(shards, n)
    base, extra = divmod(n, k) if k else (0, 0)
    start = 0
    for i in range(k):
        stop = start + base + (1 if i < extra else 0)
        blocks.append((start, stop))
        start = stop
    return blocks


class ShardPool:
    """Order-preserving process pool with an inline single-worker mode.

    The underlying ``ProcessPoolExecutor`` is created on first use (a
    controller configured with workers but never asked to measure pays
    nothing) and must be released with :meth:`close` — or use the pool
    as a context manager.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def run(
        self, fn: Callable[[Any], Any], jobs: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every job, returning results in job order.

        Completion order never leaks: results are gathered positionally,
        so a slow first shard cannot reorder the merge.
        """
        if not jobs:
            return []
        if self.workers == 1:
            return [fn(job) for job in jobs]
        futures = [self._ensure_executor().submit(fn, job) for job in jobs]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------- #
# replan fan-out: parallel TRIPLETDECISION scoring
# --------------------------------------------------------------------- #


def _score_triplets(job: tuple[Any, Sequence[tuple[float, int]]]) -> list[tuple]:
    """Worker: score TRIPLETDECISION keys against a pickled profile table.

    Returns, per ``(slo_ms, max_processes)`` key, the chosen operating
    points as ``(instance_size, (size, batch, procs))`` identity pairs in
    decision-scan order — identities, not entries, so the parent re-binds
    them to its own table objects.
    """
    table, keys = job
    out = []
    for slo_ms, max_processes in keys:
        best = table.best_triplets(slo_ms, max_processes, memoize=False)
        out.append(tuple((size, e.triplet) for size, e in best.items()))
    return out


def warm_triplet_decisions(
    profiles: Mapping[str, Any],
    services: Iterable[Any],
    max_processes: int,
    pool: ShardPool,
) -> int:
    """Fan uncached replan triplet decisions across the pool.

    Collects every ``(model, effective SLO)`` a full replan over
    ``services`` would score, drops the ones already memoized, ships one
    job per model (the table pickles with the job, so correctness never
    depends on workers rebuilding identical profiles), and seeds the
    parent's caches from the returned identities.  Returns the number of
    decisions warmed.
    """
    wanted: dict[str, set[float]] = {}
    for svc in services:
        table = profiles.get(svc.model)
        if table is None:
            continue
        slo = svc.effective_slo_ms
        if not table.has_triplet_decision(slo, max_processes):
            wanted.setdefault(svc.model, set()).add(slo)
    if not wanted:
        return 0
    models = sorted(wanted)
    jobs = [(profiles[m], sorted(wanted[m])) for m in models]
    payloads = [
        (table, [(slo, max_processes) for slo in slos])
        for table, slos in jobs
    ]
    warmed = 0
    for model, (_, slos), decisions in zip(
        models, jobs, pool.run(_score_triplets, payloads)
    ):
        for slo, triplets in zip(slos, decisions):
            profiles[model].seed_triplet_decision(slo, max_processes, triplets)
            warmed += 1
    return warmed
