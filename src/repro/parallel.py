"""Deterministic process fan-out for the sharded control plane.

Fleet-scale work in this repository (per-interval serving measurement,
replan triplet scoring) is embarrassingly parallel: the unit tasks are
pure functions of picklable inputs, and every consumer merges results by
*input position*, never by completion order.  This module holds the
shared fan-out plumbing:

- :func:`partition` — contiguous, near-even index blocks.  Contiguity is
  what keeps sharded merges trivially order-independent: block ``k``
  owns input slots ``[start, stop)`` and its results scatter back into
  exactly those slots regardless of which worker finished first.
- :class:`ShardPool` — a lazily-created ``ProcessPoolExecutor`` wrapper
  whose :meth:`ShardPool.run` returns results **in job order**.  With
  ``workers == 1`` jobs run inline in the calling process through the
  identical pack/execute/unpack code path, so single-shard runs exercise
  the sharded machinery without any subprocess (and tests can cover the
  shard/merge logic cheaply).
- :func:`warm_triplet_decisions` — the replan-side fan-out: distinct
  uncached ``TRIPLETDECISION`` keys are scored by workers against a
  pickled copy of each profile table and the resulting operating-point
  *identities* are seeded back into the parent's memo caches
  (:meth:`~repro.profiler.table.ProfileTable.seed_triplet_decision`).
  ``best_triplets`` is a pure function of the table, so a worker's
  decision is bit-identical to one the parent would have computed.

Determinism contract: workers never share state, never consume random
draws, and never influence result order — a sharded run is bit-identical
to the serial reference for any worker count (guarded by
``tests/property/test_property_parallel.py`` and the perf harness's
parallel-vs-serial fingerprint identity check).

Crash resilience: :meth:`ShardPool.run` survives worker death.  A
``BrokenProcessPool`` (a worker segfaulted, was OOM-killed, or hit a
spot preemption) or a per-job timeout (a hung worker) disposes the
executor and retries the whole batch on a fresh pool after a bounded
exponential backoff; repeated failures *degrade* the pool — halving the
worker count down to serial-inline execution, which cannot break.
Every degraded path is bit-identical to the healthy one: jobs are pure
functions and merges are positional, so re-running a batch (or running
it inline) reproduces the exact same results.  What the pool survived
is counted in :class:`ShardHealth`, surfaced through the serve
gateway's ``/health`` document.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
)
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    ClassVar,
    Iterable,
    Mapping,
    Optional,
    Protocol,
    Sequence,
)

from repro.obs import ObsHub


class FaultInjector(Protocol):
    """Pre-job hook for infrastructure fault injection (tests/benchmarks).

    Implementations must be picklable — the hook rides into worker
    processes with each job.  ``batch`` is the pool's monotonically
    increasing dispatch counter, ``attempt`` the recovery retry number
    for this batch (0 = first try), ``index`` the job's position, and
    ``in_worker`` whether the call runs in a subprocess (process-kill
    faults must not fire inline in the parent).
    """

    def before(
        self, batch: int, attempt: int, index: int, in_worker: bool
    ) -> None: ...


@dataclass
class ShardHealth:
    """What the pool has survived — the gateway's ``/health`` counters."""

    #: batches dispatched (inline or pooled)
    batches: int = 0
    #: ``BrokenProcessPool`` detections (a worker process died)
    worker_crashes: int = 0
    #: per-job deadline expiries (a worker hung)
    timeouts: int = 0
    #: executors disposed and rebuilt after a failure
    pool_rebuilds: int = 0
    #: whole-batch retries (each after a backoff sleep)
    retries: int = 0
    #: times the worker count was halved after repeated failures
    degradations: int = 0
    #: batches that ran serial-inline (the recovery floor)
    inline_batches: int = 0
    #: sibling futures cancelled after a job raised
    cancelled_siblings: int = 0
    #: current (possibly degraded) worker count
    active_workers: int = 0

    #: the one spec driving both the ``/health`` document and the
    #: ``shard_*`` metric families (see repro.obs.registry.attach)
    OBS_FIELDS: ClassVar[dict[str, str]] = {
        "batches": "counter",
        "worker_crashes": "counter",
        "timeouts": "counter",
        "pool_rebuilds": "counter",
        "retries": "counter",
        "degradations": "counter",
        "inline_batches": "counter",
        "cancelled_siblings": "counter",
        "active_workers": "gauge",
    }

    def to_doc(self) -> dict[str, int]:
        return {name: int(getattr(self, name)) for name in self.OBS_FIELDS}


class _PoolFailure(Exception):
    """Internal: the *pool* failed (worker death / hang), not the job."""


def _call_with_fault(
    injector: FaultInjector,
    batch: int,
    attempt: int,
    index: int,
    fn: Callable[[Any], Any],
    job: Any,
) -> Any:
    """Worker-side wrapper: give the injector its shot, then run the job."""
    injector.before(batch, attempt, index, in_worker=True)
    return fn(job)


def partition(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``shards`` contiguous blocks.

    Blocks are near-even (sizes differ by at most one, larger blocks
    first) and non-empty; fewer than ``shards`` blocks are returned when
    ``n < shards``.  The split depends only on ``(n, shards)``, so two
    processes partition identically.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    blocks: list[tuple[int, int]] = []
    k = min(shards, n)
    base, extra = divmod(n, k) if k else (0, 0)
    start = 0
    for i in range(k):
        stop = start + base + (1 if i < extra else 0)
        blocks.append((start, stop))
        start = stop
    return blocks


class ShardPool:
    """Order-preserving, crash-resilient process pool with an inline mode.

    The underlying ``ProcessPoolExecutor`` is created on first use (a
    controller configured with workers but never asked to measure pays
    nothing) and must be released with :meth:`close` — or use the pool
    as a context manager.

    Recovery ladder (each rung bit-identical to the last): a dead or
    hung worker disposes the executor and the batch retries on a fresh
    pool after ``backoff_s * 2**attempt`` seconds; ``max_attempts``
    consecutive failures at one width halve the worker count; width 1
    runs the batch serial-inline in the calling process — the floor
    that cannot break.  ``job_timeout_s`` bounds each job's wait (hung
    workers are terminated, not awaited).  ``fault_injector`` is the
    test/benchmark hook that makes all of this exercisable on purpose.
    """

    def __init__(
        self,
        workers: int,
        *,
        max_attempts: int = 3,
        backoff_s: float = 0.05,
        job_timeout_s: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
        obs: Optional[ObsHub] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive")
        self.workers = workers
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.job_timeout_s = job_timeout_s
        self.fault_injector = fault_injector
        #: the obs facade (a disabled hub when the pool runs standalone)
        self.obs = obs if obs is not None else ObsHub(enabled=False)
        self._m_batch_wall = self.obs.histogram(
            "shard_batch_wall_seconds",
            "wall-clock sidecar per dispatched shard batch",
        )
        self._m_shard_wall = self.obs.histogram(
            "shard_job_wall_seconds",
            "wall-clock sidecar per shard: completion offset from batch "
            "start (pooled) or job duration (inline)",
            ("shard",),
        )
        self.health = ShardHealth(active_workers=workers)
        #: current (possibly degraded) width; never recovers upward —
        #: a host that killed workers twice will likely do it again
        self._active = workers
        self._batches = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._active)
        return self._executor

    def run(
        self, fn: Callable[[Any], Any], jobs: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every job, returning results in job order.

        Completion order never leaks: results are gathered positionally,
        so a slow first shard cannot reorder the merge.  Pool failures
        (worker death, hung workers) are recovered internally — see the
        class docstring; a job's *own* exception cancels the outstanding
        sibling futures and re-raises the first positional error.
        """
        if not jobs:
            return []
        batch = self._batches
        self._batches += 1
        self.health.batches += 1
        t0 = self.obs.wall()
        attempt = 0
        while True:
            width = self._active
            self.health.active_workers = width
            try:
                if width == 1:
                    out = self._run_inline(fn, jobs, batch, attempt)
                else:
                    out = self._run_pooled(fn, jobs, batch, attempt, t0)
            except _PoolFailure:
                attempt += 1
                self.health.retries += 1
                if attempt >= self.max_attempts:
                    # This width keeps dying: degrade and start over.
                    self._active = max(1, width // 2)
                    self.health.degradations += 1
                    self.obs.note(
                        "shard-degradation",
                        batch=batch,
                        width=width,
                        new_width=self._active,
                    )
                    self.obs.dump_flight("shard-degradation")
                    attempt = 0
                time.sleep(self.backoff_s * (2 ** min(attempt, 6)))
            else:
                self._m_batch_wall.observe(self.obs.wall() - t0)
                return out

    def _run_inline(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        batch: int,
        attempt: int,
    ) -> list[Any]:
        """The recovery floor: same pack/execute/unpack path, no processes."""
        self.health.inline_batches += 1
        injector = self.fault_injector
        out: list[Any] = []
        for index, job in enumerate(jobs):
            if injector is not None:
                # in_worker=False: process-kill faults must not fire in
                # the parent; delay faults still apply.
                injector.before(batch, attempt, index, in_worker=False)
            t0 = self.obs.wall()
            out.append(fn(job))
            self._m_shard_wall.observe(
                self.obs.wall() - t0, shard=index
            )
        return out

    def _run_pooled(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        batch: int,
        attempt: int,
        t0: float,
    ) -> list[Any]:
        executor = self._ensure_executor()
        injector = self.fault_injector
        try:
            if injector is None:
                futures = [executor.submit(fn, job) for job in jobs]
            else:
                futures = [
                    executor.submit(
                        _call_with_fault, injector, batch, attempt, i, fn, job
                    )
                    for i, job in enumerate(jobs)
                ]
        except BrokenExecutor as exc:
            # A worker death from a *previous* batch can surface here:
            # the pool noticed the broken pipe only after those results
            # were already gathered, and submit() is the first call to
            # see the wreckage.
            self.health.worker_crashes += 1
            self.obs.note("worker-crash", batch=batch, attempt=attempt)
            self._dispose()
            raise _PoolFailure("pool broken at submit") from exc
        out: list[Any] = []
        for index, f in enumerate(futures):
            try:
                out.append(f.result(timeout=self.job_timeout_s))
            except BrokenExecutor as exc:
                self.health.worker_crashes += 1
                self.obs.note(
                    "worker-crash", batch=batch, attempt=attempt, shard=index
                )
                self._dispose()
                raise _PoolFailure("worker died") from exc
            except (TimeoutError, _FuturesTimeout) as exc:
                self.health.timeouts += 1
                self.obs.note(
                    "shard-timeout", batch=batch, attempt=attempt, shard=index
                )
                self._dispose(kill=True)
                raise _PoolFailure("job timed out") from exc
            except BaseException:
                # The job itself raised: cancel the outstanding siblings
                # so no orphan keeps computing, then surface the first
                # positional error.
                self.health.cancelled_siblings += _cancel_all(futures)
                raise
            else:
                # Completion offset from batch start: results gather
                # positionally, so shard k's offset includes any wait
                # for shards 0..k-1 — a scatter/straggler profile, not
                # a per-job duration.
                self._m_shard_wall.observe(
                    self.obs.wall() - t0, shard=index
                )
        return out

    def _dispose(self, *, kill: bool = False) -> None:
        """Drop the executor after a failure; ``kill`` terminates workers.

        ``kill=True`` is the hung-worker path — waiting for the worker
        would wait forever, so its process is terminated outright.
        """
        executor = self._executor
        self._executor = None
        if executor is None:
            return
        self.health.pool_rebuilds += 1
        if kill:
            for proc in list(getattr(executor, "_processes", {}).values()):
                proc.terminate()
        executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _cancel_all(futures: Sequence[Future[Any]]) -> int:
    """Cancel every not-yet-running future; returns how many were stopped."""
    return sum(1 for f in futures if f.cancel())


# --------------------------------------------------------------------- #
# replan fan-out: parallel TRIPLETDECISION scoring
# --------------------------------------------------------------------- #


def _score_triplets(job: tuple[Any, Sequence[tuple[float, int]]]) -> list[tuple]:
    """Worker: score TRIPLETDECISION keys against a pickled profile table.

    Returns, per ``(slo_ms, max_processes)`` key, the chosen operating
    points as ``(instance_size, (size, batch, procs))`` identity pairs in
    decision-scan order — identities, not entries, so the parent re-binds
    them to its own table objects.
    """
    table, keys = job
    out = []
    for slo_ms, max_processes in keys:
        best = table.best_triplets(slo_ms, max_processes, memoize=False)
        out.append(tuple((size, e.triplet) for size, e in best.items()))
    return out


def warm_triplet_decisions(
    profiles: Mapping[str, Any],
    services: Iterable[Any],
    max_processes: int,
    pool: ShardPool,
) -> int:
    """Fan uncached replan triplet decisions across the pool.

    Collects every ``(model, effective SLO)`` a full replan over
    ``services`` would score, drops the ones already memoized, ships one
    job per model (the table pickles with the job, so correctness never
    depends on workers rebuilding identical profiles), and seeds the
    parent's caches from the returned identities.  Returns the number of
    decisions warmed.
    """
    wanted: dict[str, set[float]] = {}
    for svc in services:
        table = profiles.get(svc.model)
        if table is None:
            continue
        slo = svc.effective_slo_ms
        if not table.has_triplet_decision(slo, max_processes):
            wanted.setdefault(svc.model, set()).add(slo)
    if not wanted:
        return 0
    models = sorted(wanted)
    jobs = [(profiles[m], sorted(wanted[m])) for m in models]
    payloads = [
        (table, [(slo, max_processes) for slo in slos])
        for table, slos in jobs
    ]
    warmed = 0
    for model, (_, slos), decisions in zip(
        models, jobs, pool.run(_score_triplets, payloads)
    ):
        for slo, triplets in zip(slos, decisions):
            profiles[model].seed_triplet_decision(slo, max_processes, triplets)
            warmed += 1
    return warmed
