"""The SIV-D scaling sweep: S5 replicated 1..10-fold.

"We incrementally increase the number of services in S5" — each
multiplication factor ``k`` yields ``k`` copies of every S5 service
(distinct service ids, same model/SLO/rate), simulating a cloud provider
consolidating ever more tenants onto one fleet.
"""

from __future__ import annotations

from repro.core.service import Service
from repro.scenarios.table4 import Scenario, get_scenario


def scaled_scenario(factor: int, base: Scenario | str = "S5") -> list[Service]:
    """``factor`` copies of every service of ``base`` (default S5)."""
    if factor < 1:
        raise ValueError("multiplication factor must be >= 1")
    if isinstance(base, str):
        base = get_scenario(base)
    services: list[Service] = []
    for k in range(factor):
        for load in base.loads:
            services.append(
                Service(
                    id=f"{load.model}#{k}" if factor > 1 else load.model,
                    model=load.model,
                    slo_latency_ms=load.slo_latency_ms,
                    request_rate=load.request_rate,
                )
            )
    return services
