"""Evaluation scenarios: Table IV, the SIV-D scaling sweep, and the
geometry-stress extensions S7/S8.

:func:`get_scenario` and :func:`scenario_services` resolve names across
*all* registered scenario tables (S1-S6 from Table IV, S7/S8 from
:mod:`repro.scenarios.extended`) via :mod:`repro.scenarios.registry`.
"""

from repro.scenarios.registry import (
    SCENARIOS,
    SCENARIO_NAMES,
    get_scenario,
    scenario_services,
)
from repro.scenarios.table4 import (
    SCENARIO_NAMES as TABLE4_SCENARIO_NAMES,
    Scenario,
)
from repro.scenarios.scaling import scaled_scenario
from repro.scenarios.fleet import (
    FLEET_SCENARIO_NAMES,
    FLEET_TIERS,
    fleet_scenario,
    fleet_services,
    fleet_traces,
)

__all__ = [
    "SCENARIOS",
    "SCENARIO_NAMES",
    "TABLE4_SCENARIO_NAMES",
    "FLEET_SCENARIO_NAMES",
    "FLEET_TIERS",
    "Scenario",
    "get_scenario",
    "scenario_services",
    "scaled_scenario",
    "fleet_scenario",
    "fleet_services",
    "fleet_traces",
]
