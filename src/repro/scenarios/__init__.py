"""Evaluation scenarios: Table IV, the SIV-D scaling sweep, the
geometry-stress extensions S7/S8, the synthetic fleets S9-S11, and the
fleet-operations runs S12-S14.

:func:`get_scenario` and :func:`scenario_services` resolve names across
*all* registered scenario tables (S1-S6 from Table IV, S7/S8 from
:mod:`repro.scenarios.extended`, S9-S11 from
:mod:`repro.scenarios.fleet`, S12-S14 from :mod:`repro.scenarios.ops`)
via :mod:`repro.scenarios.registry`.
"""

from repro.scenarios.registry import (
    SCENARIOS,
    SCENARIO_NAMES,
    get_scenario,
    scenario_services,
)
from repro.scenarios.table4 import (
    SCENARIO_NAMES as TABLE4_SCENARIO_NAMES,
    Scenario,
)
from repro.scenarios.scaling import scaled_scenario
from repro.scenarios.fleet import (
    FLEET_SCENARIO_NAMES,
    FLEET_TIERS,
    fleet_scenario,
    fleet_services,
    fleet_traces,
)
from repro.scenarios.ops import (
    OPS_SCENARIO_NAMES,
    OpsRun,
    bench_ops_run,
    ops_run,
)

__all__ = [
    "SCENARIOS",
    "SCENARIO_NAMES",
    "TABLE4_SCENARIO_NAMES",
    "FLEET_SCENARIO_NAMES",
    "OPS_SCENARIO_NAMES",
    "FLEET_TIERS",
    "Scenario",
    "OpsRun",
    "get_scenario",
    "scenario_services",
    "scaled_scenario",
    "fleet_scenario",
    "fleet_services",
    "fleet_traces",
    "ops_run",
    "bench_ops_run",
]
