"""Evaluation scenarios: Table IV and the SIV-D scaling sweep."""

from repro.scenarios.table4 import (
    SCENARIOS,
    Scenario,
    get_scenario,
    scenario_services,
)
from repro.scenarios.scaling import scaled_scenario

__all__ = [
    "SCENARIOS",
    "Scenario",
    "get_scenario",
    "scenario_services",
    "scaled_scenario",
]
