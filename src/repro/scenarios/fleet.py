"""Synthetic fleet-scale scenarios: S9 (fleet sweep), S10 (diurnal
autoscaling) and S11 (million-request high-rate replay).

Table IV tops out at eleven services — the paper's single-cluster scale.
The ROADMAP's fleet scale is thousands of tenants, so these scenarios
synthesize deterministic large fleets by resampling the Table-IV load
cells: every synthetic service takes a real (model, SLO) pair from S1-S6
(guaranteed feasible on every registered geometry), relaxes the SLO by a
bounded factor (relaxing never removes operating points), and scales the
request rate.  Everything is seeded, so two processes — or two runs of
the perf harness comparing the indexed and naive schedulers — see the
exact same fleet.

``S9`` is the 1000-service fleet used by the registry; the perf harness
sweeps :data:`FLEET_TIERS` (100/1000/5000) around it.  ``S10`` pairs a
fleet with per-service diurnal rate traces (phase-shifted so the fleet's
load moves as a wave, not in lockstep) and drives the autoscaler.
``S11`` is the S9 fleet at :data:`S11_RATE_SCALE` x request rates — a
serving replay whose traffic exceeds a million requests, the workload
the batch-granularity simulation fast path exists for.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.service import Service
from repro.scenarios.table4 import SCENARIOS as TABLE4_SCENARIOS
from repro.scenarios.table4 import Scenario, WorkloadLoad
from repro.sim.traces import RateTrace, diurnal_trace

#: Service counts the perf harness sweeps (S9 is the middle tier).
FLEET_TIERS: tuple[int, ...] = (100, 1000, 5000)

#: Default deterministic seed for all fleet synthesis.
FLEET_SEED = 20240731

#: Services in the registered S9 scenario.
S9_FLEET_SIZE = 1000

#: Services / trace epochs in the registered S10 scenario: large enough
#: to exercise fleet-scale re-planning, small enough that the autoscaler
#: (one incremental re-plan per changed service per epoch) stays tractable
#: in the opt-in perf harness.
S10_FLEET_SIZE = 200
S10_EPOCHS = 4

#: S11, the million-request replay: the S9 fleet with every request rate
#: scaled up, simulated for ``S11_DURATION_S`` seconds of traffic — a
#: few million requests, which only the batch-granularity simulation
#: fast path serves in reasonable time (the per-request event engine
#: heap-pushes one Python event per arrival).
S11_FLEET_SIZE = 1000
S11_RATE_SCALE = 1.5
S11_DURATION_S = 2.0


def _base_loads() -> list[WorkloadLoad]:
    """Every Table-IV cell, in table order — the resampling population."""
    return [
        load
        for name in sorted(TABLE4_SCENARIOS)
        for load in TABLE4_SCENARIOS[name].loads
    ]


def fleet_loads(
    num_services: int, seed: int = FLEET_SEED, rate_scale: float = 1.0
) -> tuple[WorkloadLoad, ...]:
    """``num_services`` deterministic synthetic load cells.

    ``rate_scale`` multiplies every sampled request rate (after the
    per-service jitter, so the rng stream — and hence the fleet's
    composition — is identical across scales); S11 uses it to turn the
    S9 fleet into a high-rate replay.
    """
    if num_services < 1:
        raise ValueError("fleet needs at least one service")
    rng = random.Random(f"{seed}:{num_services}")
    base = _base_loads()
    out = []
    for _ in range(num_services):
        cell = rng.choice(base)
        out.append(
            WorkloadLoad(
                model=cell.model,
                # Rates span small tenants to hot services; any positive
                # rate is feasible (Demand Matching just adds segments).
                request_rate=round(
                    cell.request_rate * rng.uniform(0.2, 2.0) * rate_scale, 1
                ),
                # Only ever relax the SLO: a larger latency budget keeps
                # every profiled operating point of the base cell legal.
                slo_latency_ms=round(cell.slo_latency_ms * rng.uniform(1.0, 1.5)),
            )
        )
    return tuple(out)


def fleet_scenario(
    num_services: int,
    seed: int = FLEET_SEED,
    name: Optional[str] = None,
    rate_scale: float = 1.0,
) -> Scenario:
    """A synthetic fleet as a registry-compatible :class:`Scenario`."""
    return Scenario(
        name=name or f"FLEET-{num_services}",
        description=(
            f"Synthetic {num_services}-service fleet resampled from "
            f"Table IV (seed {seed})"
        ),
        loads=fleet_loads(num_services, seed, rate_scale=rate_scale),
    )


def fleet_services(
    num_services: int, seed: int = FLEET_SEED, rate_scale: float = 1.0
) -> list[Service]:
    """Scheduler-ready services with unique ids (``<model>#<k>``)."""
    from repro.scenarios.registry import scenario_services

    return scenario_services(
        fleet_scenario(num_services, seed, rate_scale=rate_scale)
    )


def fleet_traces(
    services: Sequence[Service],
    epochs: int = S10_EPOCHS,
    period_s: float = 86_400.0,
    amplitude: float = 0.4,
    seed: int = FLEET_SEED,
) -> list[RateTrace]:
    """Phase-shifted diurnal traces, one per service.

    Random phases spread the services over the day (tenants in different
    time zones), so every epoch boundary moves *some* rates — the
    autoscaler's incremental path is exercised instead of the full
    re-schedule a synchronized fleet would trigger.
    """
    rng = random.Random(f"{seed}:{len(services)}:{epochs}")
    return [
        diurnal_trace(
            svc.id,
            base_rate=svc.request_rate,
            amplitude=amplitude,
            period_s=period_s,
            epochs=epochs,
            phase=rng.uniform(0.0, 6.283185307179586),
        )
        for svc in services
    ]


#: The registered fleet scenarios (picked up by the scenario registry).
FLEET_SCENARIOS: dict[str, Scenario] = {
    "S9": Scenario(
        name="S9",
        description=(
            f"Fleet-scale sweep anchor: {S9_FLEET_SIZE} synthetic services "
            f"resampled from Table IV (seed {FLEET_SEED})"
        ),
        loads=fleet_loads(S9_FLEET_SIZE),
    ),
    "S10": Scenario(
        name="S10",
        description=(
            f"Fleet-scale diurnal autoscaling: {S10_FLEET_SIZE} synthetic "
            f"services with phase-shifted day/night traces "
            f"(pair with fleet_traces())"
        ),
        loads=fleet_loads(S10_FLEET_SIZE),
    ),
    "S11": Scenario(
        name="S11",
        description=(
            f"Million-request replay: the S9 fleet at {S11_RATE_SCALE}x "
            f"request rates — ~{S11_DURATION_S:g} s of traffic exceeds "
            f"10^6 requests, tractable only under the simulation fast path"
        ),
        loads=fleet_loads(S11_FLEET_SIZE, rate_scale=S11_RATE_SCALE),
    ),
}

FLEET_SCENARIO_NAMES: tuple[str, ...] = tuple(FLEET_SCENARIOS)
