"""Extended evaluation scenarios beyond Table IV.

Two scenarios added with the pluggable-geometry backends, designed to
exercise regimes where the choice of partition geometry matters:

``S7`` — *memory-heavy batching*: the large-footprint models (BERT-large,
VGG, ResNet-152) at relaxed SLOs and high rates.  Generous latency budgets
push the configurator toward big batches, whose activations overflow the
A100's 10 GB 1g instances long before they trouble an MI300X CPX
partition's 24 GB — the regime where the AMD geometry's fatter small
partitions pay off.

``S8`` — *latency-critical interactive*: lightweight vision models under
SLOs ~40% tighter than S3.  Tight budgets force small batches, where the
A100's seven-way slicing (and its size-3 instances, which the MI300X's
power-of-two modes lack) packs the fleet tighter.

Both scenarios are feasible on the MIG geometry, the MI300X geometry, and
mixed fleets, so they serve as the work-loads for the
``parvagpu experiment geo`` comparison alongside Table IV.
"""

from __future__ import annotations

from repro.scenarios.table4 import Scenario, WorkloadLoad


def _scenario(
    name: str, description: str, cells: dict[str, tuple[float, float]]
) -> Scenario:
    loads = tuple(
        WorkloadLoad(model, rate, slo) for model, (rate, slo) in cells.items()
    )
    return Scenario(name=name, description=description, loads=loads)


EXTENDED_SCENARIOS: dict[str, Scenario] = {
    "S7": _scenario(
        "S7",
        "Memory-heavy batching: big-footprint models, relaxed SLOs, high rates",
        {
            # model: (requests/s, SLO ms)
            "bert-large": (60.0, 8000.0),
            "vgg-19": (900.0, 800.0),
            "vgg-16": (1100.0, 750.0),
            "resnet-152": (800.0, 500.0),
            "densenet-201": (700.0, 400.0),
            "inceptionv3": (1200.0, 900.0),
        },
    ),
    "S8": _scenario(
        "S8",
        "Latency-critical interactive: lightweight models, tight SLOs",
        {
            "mobilenetv2": (2400.0, 70.0),
            "resnet-50": (1400.0, 90.0),
            "densenet-121": (1100.0, 85.0),
            "inceptionv3": (900.0, 100.0),
            "resnet-101": (700.0, 110.0),
            "densenet-169": (600.0, 105.0),
        },
    ),
}

EXTENDED_SCENARIO_NAMES: tuple[str, ...] = tuple(EXTENDED_SCENARIOS)
