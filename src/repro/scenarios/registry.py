"""The combined scenario registry: Table IV (S1-S6) plus extensions.

Single source of truth for resolving scenario names — every public
resolver (:func:`repro.scenarios.get_scenario`, the Table-IV module's
historical ``get_scenario``, and the SIV-D scaling sweep) routes here, so
new scenario tables register once and are visible everywhere.
"""

from __future__ import annotations

from repro.core.service import Service
from repro.scenarios.extended import EXTENDED_SCENARIOS
from repro.scenarios.fleet import FLEET_SCENARIOS
from repro.scenarios.ops import OPS_SCENARIOS
from repro.scenarios.table4 import SCENARIOS as TABLE4_SCENARIOS, Scenario

#: Every registered scenario, Table-IV columns first.
SCENARIOS: dict[str, Scenario] = {
    **TABLE4_SCENARIOS,
    **EXTENDED_SCENARIOS,
    **FLEET_SCENARIOS,
    **OPS_SCENARIOS,
}

SCENARIO_NAMES: tuple[str, ...] = tuple(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIO_NAMES)}"
        ) from None


def scenario_services(scenario: Scenario | str) -> list[Service]:
    """Fresh :class:`Service` objects for a scenario (scheduler input).

    Table-IV-style scenarios list each model once, so the model name is
    the service id.  Fleet scenarios (S9/S10) repeat models; repeats get a
    ``#<k>`` suffix so service ids stay unique while single-occurrence
    scenarios keep their historical ids.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    seen: dict[str, int] = {}
    services = []
    for load in scenario.loads:
        k = seen.get(load.model, 0)
        seen[load.model] = k + 1
        services.append(
            Service(
                id=load.model if k == 0 else f"{load.model}#{k}",
                model=load.model,
                slo_latency_ms=load.slo_latency_ms,
                request_rate=load.request_rate,
            )
        )
    return services
