"""Fleet-operations scenarios: S12 (tenant churn), S13 (chaos week),
S14 (spot fleet with recovery), S15 (the 10k-service chaos week),
S16 (the live flash-crowd session).

Each scenario is two things: a registry-visible :class:`Scenario` (its
*base fleet*, resampled from Table IV like S9-S11, so ``parvagpu schedule
--scenario S12`` works like any other scenario) and an :func:`ops_run`
package — the base fleet plus a deterministic event timeline for the
:class:`~repro.ops.controller.FleetController`.  Everything derives from
:data:`OPS_SEED`, so two processes (or the fast/naive identity replay)
build the exact same run.

:func:`bench_ops_run` builds the perf-harness tier at an arbitrary fleet
size: one simulated day of MTBF failures with repair, spot preemption
waves with restore, tenant churn, and SLO renegotiations — the
"everything at once" workload the ``--suite ops`` benchmark records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.service import Service
from repro.ops.chaos import (
    flash_crowds,
    mtbf_failures,
    rate_epochs,
    slo_renegotiations,
    spot_preemption_waves,
    tenant_churn,
)
from repro.ops.events import OpsEvent, merge_timeline
from repro.scenarios.fleet import fleet_loads, fleet_traces
from repro.scenarios.table4 import Scenario

#: Default deterministic seed for every ops scenario and bench run.
OPS_SEED = 20240802

#: Base-fleet sizes and horizons (simulated seconds).
S12_FLEET_SIZE = 100
S12_HORIZON_S = 6 * 3600.0  # a churn-heavy quarter day
S13_FLEET_SIZE = 80
S13_HORIZON_S = 7 * 86_400.0  # the chaos week
S14_FLEET_SIZE = 100
S14_HORIZON_S = 12 * 3600.0  # half a day on spot capacity
S15_FLEET_SIZE = 10_000
S15_HORIZON_S = 7 * 86_400.0  # the 10k-service chaos week
S16_FLEET_SIZE = 100
S16_HORIZON_S = 2 * 3600.0  # a live flash-crowd session


@dataclass(frozen=True)
class OpsRun:
    """One ready-to-run fleet-operations workload."""

    name: str
    description: str
    services: tuple[Service, ...]
    timeline: tuple[OpsEvent, ...]
    horizon_s: float

    @property
    def num_events(self) -> int:
        return len(self.timeline)


def _base_services(name: str) -> tuple[Service, ...]:
    from repro.scenarios.registry import scenario_services

    return tuple(scenario_services(name))


def _s12_run(seed: int) -> OpsRun:
    services = _base_services("S12")
    base_ids = [s.id for s in services]
    timeline = merge_timeline(
        tenant_churn(
            horizon_s=S12_HORIZON_S,
            arrivals=18,
            departures=12,
            seed=seed,
            base_ids=base_ids,
        ),
        slo_renegotiations(
            [(s.id, s.slo_latency_ms) for s in services],
            horizon_s=S12_HORIZON_S,
            count=3,
            seed=seed,
        ),
    )
    return OpsRun(
        name="S12",
        description=OPS_SCENARIOS["S12"].description,
        services=services,
        timeline=timeline,
        horizon_s=S12_HORIZON_S,
    )


def _s13_run(seed: int) -> OpsRun:
    services = _base_services("S13")
    traces = fleet_traces(
        list(services),
        epochs=14,  # two boundaries per simulated day
        period_s=S13_HORIZON_S,
        amplitude=0.4,
        seed=seed,
    )
    timeline = merge_timeline(
        rate_epochs(traces, horizon_s=S13_HORIZON_S),
        flash_crowds(
            traces,
            horizon_s=S13_HORIZON_S,
            num_crowds=3,
            seed=seed,
            duration_range_s=(3600.0, 10_800.0),
        ),
        mtbf_failures(
            horizon_s=S13_HORIZON_S,
            mtbf_s=1.5 * 86_400.0,
            seed=seed,
            repair_s=8 * 3600.0,
        ),
        spot_preemption_waves(
            horizon_s=S13_HORIZON_S,
            every_s=3.5 * 86_400.0,
            fraction=0.06,
            seed=seed,
            restore_delay_s=6 * 3600.0,
        ),
    )
    return OpsRun(
        name="S13",
        description=OPS_SCENARIOS["S13"].description,
        services=services,
        timeline=timeline,
        horizon_s=S13_HORIZON_S,
    )


def _s14_run(seed: int) -> OpsRun:
    services = _base_services("S14")
    timeline = merge_timeline(
        spot_preemption_waves(
            horizon_s=S14_HORIZON_S,
            every_s=2 * 3600.0,
            fraction=0.1,
            seed=seed,
            restore_delay_s=3600.0,
        ),
    )
    return OpsRun(
        name="S14",
        description=OPS_SCENARIOS["S14"].description,
        services=services,
        timeline=timeline,
        horizon_s=S14_HORIZON_S,
    )


def _s15_run(seed: int) -> OpsRun:
    """The 10k-service chaos week the sharded control plane exists for.

    Event density is deliberately low relative to the fleet size — a
    fleet-level failure every ~12 h, one preemption wave per day, single
    -digit churn and renegotiations — so the timeline stays at dozens of
    instants over the week and per-interval serving measurement (the
    shardable stage) dominates the replay.
    """
    services = _base_services("S15")
    timeline = merge_timeline(
        mtbf_failures(
            horizon_s=S15_HORIZON_S,
            mtbf_s=12 * 3600.0,
            seed=seed,
            repair_s=6 * 3600.0,
        ),
        spot_preemption_waves(
            horizon_s=S15_HORIZON_S,
            every_s=86_400.0,
            fraction=0.01,
            seed=seed,
            restore_delay_s=8 * 3600.0,
        ),
        tenant_churn(
            horizon_s=S15_HORIZON_S,
            arrivals=8,
            departures=6,
            seed=seed,
            base_ids=[s.id for s in services],
        ),
        slo_renegotiations(
            [(s.id, s.slo_latency_ms) for s in services],
            horizon_s=S15_HORIZON_S,
            count=3,
            seed=seed,
        ),
    )
    return OpsRun(
        name="S15",
        description=OPS_SCENARIOS["S15"].description,
        services=services,
        timeline=timeline,
        horizon_s=S15_HORIZON_S,
    )


def _s16_run(seed: int) -> OpsRun:
    """The live-serving demo: a 100-service fleet hit by flash crowds.

    Built for the serve gateway (``parvagpu serve --scenario S16``): a
    short two-hour session dense enough to watch live — diurnal rate
    epochs, three flash crowds, and one mid-session GPU failure with
    repair — while staying entirely on the cheap incremental paths, so
    compliance holds >= 99% throughout.  The scripted driver streams
    this timeline in session time; the recorded session replays
    bit-identically under the virtual clock.
    """
    services = _base_services("S16")
    traces = fleet_traces(
        list(services),
        epochs=8,
        period_s=S16_HORIZON_S,
        amplitude=0.3,
        seed=seed,
    )
    timeline = merge_timeline(
        rate_epochs(traces, horizon_s=S16_HORIZON_S),
        flash_crowds(
            traces,
            horizon_s=S16_HORIZON_S,
            num_crowds=3,
            seed=seed,
            duration_range_s=(600.0, 1_500.0),
        ),
        mtbf_failures(
            horizon_s=S16_HORIZON_S,
            mtbf_s=S16_HORIZON_S,  # ~one failure per session
            seed=seed,
            repair_s=1_800.0,
        ),
    )
    return OpsRun(
        name="S16",
        description=OPS_SCENARIOS["S16"].description,
        services=services,
        timeline=timeline,
        horizon_s=S16_HORIZON_S,
    )


_RUN_BUILDERS = {
    "S12": _s12_run,
    "S13": _s13_run,
    "S14": _s14_run,
    "S15": _s15_run,
    "S16": _s16_run,
}


def ops_run(name: str, seed: int = OPS_SEED) -> OpsRun:
    """Build a registered ops scenario's services + timeline."""
    try:
        builder = _RUN_BUILDERS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown ops scenario {name!r}; "
            f"known: {', '.join(_RUN_BUILDERS)}"
        ) from None
    return builder(seed)


def bench_ops_run(num_services: int, seed: int = OPS_SEED) -> OpsRun:
    """The perf-harness tier: one simulated day, everything at once.

    Failures with repair, preemption waves with restore, tenant churn,
    and SLO renegotiations over a ``num_services`` base fleet — well past
    twenty events at every tier, all draw-resolved so the same timeline
    scales from 100 to thousands of services.
    """
    horizon_s = 86_400.0
    loads = fleet_loads(num_services, seed=seed)
    from repro.scenarios.registry import scenario_services

    services = tuple(
        scenario_services(
            Scenario(
                name=f"OPS-{num_services}",
                description=f"{num_services}-service ops bench fleet",
                loads=loads,
            )
        )
    )
    timeline = merge_timeline(
        mtbf_failures(
            horizon_s=horizon_s, mtbf_s=10_800.0, seed=seed, repair_s=7_200.0
        ),
        spot_preemption_waves(
            horizon_s=horizon_s,
            every_s=36_000.0,
            fraction=0.03,
            seed=seed,
            restore_delay_s=14_400.0,
        ),
        tenant_churn(
            horizon_s=horizon_s,
            arrivals=6,
            departures=4,
            seed=seed,
            base_ids=[s.id for s in services],
        ),
        slo_renegotiations(
            [(s.id, s.slo_latency_ms) for s in services],
            horizon_s=horizon_s,
            count=2,
            seed=seed,
        ),
    )
    return OpsRun(
        name=f"OPS-{num_services}",
        description=(
            f"ops bench: {num_services} services, one simulated day of "
            f"failures + preemptions + churn + renegotiations"
        ),
        services=services,
        timeline=timeline,
        horizon_s=horizon_s,
    )


#: The registered base fleets (picked up by the scenario registry).
OPS_SCENARIOS: dict[str, Scenario] = {
    "S12": Scenario(
        name="S12",
        description=(
            f"Tenant-churn fleet: {S12_FLEET_SIZE} base services with "
            f"arrivals/departures and SLO renegotiations over "
            f"{S12_HORIZON_S / 3600:g} h (pair with repro.scenarios.ops"
            f".ops_run('S12'))"
        ),
        loads=fleet_loads(S12_FLEET_SIZE, seed=OPS_SEED),
    ),
    "S13": Scenario(
        name="S13",
        description=(
            f"Chaos week: {S13_FLEET_SIZE} services on diurnal traces "
            f"with MTBF failures, repairs, preemption waves and flash "
            f"crowds over 7 simulated days (ops_run('S13'))"
        ),
        loads=fleet_loads(S13_FLEET_SIZE, seed=OPS_SEED),
    ),
    "S14": Scenario(
        name="S14",
        description=(
            f"Spot fleet with recovery: {S14_FLEET_SIZE} services riding "
            f"preemption/restore waves every ~2 h for "
            f"{S14_HORIZON_S / 3600:g} h (ops_run('S14'))"
        ),
        loads=fleet_loads(S14_FLEET_SIZE, seed=OPS_SEED),
    ),
    "S15": Scenario(
        name="S15",
        description=(
            f"10k-service chaos week: {S15_FLEET_SIZE} services through "
            f"7 simulated days of MTBF failures, daily preemption waves, "
            f"churn and renegotiations — the sharded control plane's "
            f"target workload (ops_run('S15', workers=N via the "
            f"FleetController))"
        ),
        loads=fleet_loads(S15_FLEET_SIZE, seed=OPS_SEED),
    ),
    "S16": Scenario(
        name="S16",
        description=(
            f"Live flash-crowd session: {S16_FLEET_SIZE} services through "
            f"{S16_HORIZON_S / 3600:g} h of rate epochs, three flash "
            f"crowds and one GPU failure with repair — the serve "
            f"gateway's demo workload (parvagpu serve --scenario S16; "
            f"ops_run('S16'))"
        ),
        loads=fleet_loads(S16_FLEET_SIZE, seed=OPS_SEED),
    ),
}

OPS_SCENARIO_NAMES: tuple[str, ...] = tuple(OPS_SCENARIOS)
