"""Table IV: the six evaluation scenarios, transcribed exactly.

Each scenario gives every workload a request rate (requests/s) and a
client-facing SLO latency (ms).  S1 uses six of S2's eleven models; S2-S6
escalate load; S3/S4 share SLOs but raise rates; S5/S6 demand high
computational power (tight SLOs or very high rates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.service import Service
from repro.models.zoo import TABLE_IV_ORDER


@dataclass(frozen=True)
class WorkloadLoad:
    """One (model, scenario) cell of Table IV."""

    model: str
    request_rate: float  #: requests/s
    slo_latency_ms: float


@dataclass(frozen=True)
class Scenario:
    """One column group of Table IV."""

    name: str
    description: str
    loads: tuple[WorkloadLoad, ...]

    @property
    def models(self) -> tuple[str, ...]:
        return tuple(l.model for l in self.loads)

    @property
    def total_rate(self) -> float:
        return sum(l.request_rate for l in self.loads)

    def load_for(self, model: str) -> Optional[WorkloadLoad]:
        for l in self.loads:
            if l.model == model:
                return l
        return None


def _scenario(
    name: str,
    description: str,
    rates: dict[str, float],
    lats: dict[str, float],
) -> Scenario:
    loads = tuple(
        WorkloadLoad(m, rates[m], lats[m]) for m in TABLE_IV_ORDER if m in rates
    )
    return Scenario(name=name, description=description, loads=loads)


_M = TABLE_IV_ORDER  # column order shorthand


def _row(values: list[float], models: tuple[str, ...] = _M) -> dict[str, float]:
    if len(values) != len(models):
        raise ValueError("row length mismatch")
    return dict(zip(models, values))


#: Models participating in S1 (the Table-IV N/A cells are absent).
_S1_MODELS = (
    "bert-large",
    "densenet-121",
    "inceptionv3",
    "mobilenetv2",
    "resnet-50",
    "vgg-19",
)

SCENARIOS: dict[str, Scenario] = {
    "S1": _scenario(
        "S1",
        "Six of S2's models: effect of reducing the service count",
        _row([19, 353, 460, 677, 829, 354], _S1_MODELS),
        _row([6434, 183, 419, 167, 205, 397], _S1_MODELS),
    ),
    "S2": _scenario(
        "S2",
        "All eleven models at moderate rates",
        _row([19, 353, 308, 276, 460, 677, 393, 281, 829, 410, 354]),
        _row([6434, 183, 217, 169, 419, 167, 212, 213, 205, 400, 397]),
    ),
    "S3": _scenario(
        "S3",
        "Higher rates, tighter SLOs",
        _row([46, 728, 633, 493, 1051, 1546, 760, 543, 1463, 780, 673]),
        _row([4294, 126, 150, 119, 282, 113, 144, 146, 138, 227, 265]),
    ),
    "S4": _scenario(
        "S4",
        "S3's SLOs with 1.5x rates",
        _row([69, 1091, 949, 739, 1576, 2318, 1140, 815, 2195, 1169, 1010]),
        _row([4294, 126, 150, 119, 282, 113, 144, 146, 138, 227, 265]),
    ),
    "S5": _scenario(
        "S5",
        "High computational power: strict SLOs",
        _row([843, 2228, 3507, 1513, 3815, 5009, 1874, 1340, 2796, 1773, 1531]),
        _row([2153, 69, 84, 70, 146, 59, 77, 80, 72, 115, 134]),
    ),
    "S6": _scenario(
        "S6",
        "High computational power: very high rates",
        _row([1264, 3342, 5260, 2269, 5722, 7513, 2811, 2010, 4196, 2659, 2296]),
        _row([6434, 183, 217, 169, 419, 167, 212, 213, 205, 400, 397]),
    ),
}

SCENARIO_NAMES: tuple[str, ...] = ("S1", "S2", "S3", "S4", "S5", "S6")


def get_scenario(name: str) -> Scenario:
    """Resolve across *all* registered scenario tables, not just Table IV.

    Delegates to :mod:`repro.scenarios.registry` (imported lazily: the
    registry imports this module's tables at load time).
    """
    from repro.scenarios.registry import get_scenario as _resolve

    return _resolve(name)


def scenario_services(scenario: Scenario | str) -> list[Service]:
    """Fresh :class:`Service` objects for a scenario (scheduler input)."""
    from repro.scenarios.registry import scenario_services as _services

    return _services(scenario)
