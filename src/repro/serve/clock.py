"""Scenario clocks: one gateway loop, two notions of time.

The serve gateway never reads the wall clock directly.  It asks a
:class:`Clock` for the current *scenario* time (seconds since the run
began, the unit every :class:`~repro.ops.events.OpsEvent` is stamped
in) and for a *work-seconds* stopwatch (real elapsed seconds, the unit
the deadline budget is spent in).  Swapping the clock swaps the
execution regime without touching the loop:

- :class:`~repro.serve.realclock.MonotonicClock` — live mode.  Scenario
  time tracks the monotonic wall clock (optionally scaled), sleeps
  really sleep, and ``work_seconds()`` measures real compute — so the
  deadline scheduler can observe lag and defer full re-plans.
- :class:`VirtualClock` — deterministic replay.  Scenario time moves
  only when the loop advances it, sleeps return immediately, and
  ``work_seconds()`` is frozen at ``0.0`` — the deadline scheduler
  never observes lag, so the gateway reduces to a pure driver over
  :meth:`FleetController.step() <repro.ops.controller.FleetController.step>`
  and replays any recorded timeline bit-identically to the offline
  reference.

``VirtualClock`` lives here; the real clock lives in
:mod:`repro.serve.realclock`, the only serve module the repro-lint D002
allowlist permits to read the wall clock.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod


class Clock(ABC):
    """Scenario time plus a work stopwatch, behind one interface."""

    #: True when scenario time only moves because the loop advances it
    #: (deterministic replay); False when it tracks the wall clock.
    is_virtual: bool = False

    @abstractmethod
    def now(self) -> float:
        """Current scenario time, in seconds since the run began."""

    @abstractmethod
    async def sleep_until(self, t: float) -> None:
        """Return once scenario time has reached ``t`` (never blocks on a
        past instant)."""

    @abstractmethod
    def work_seconds(self) -> float:
        """Monotonic stopwatch reading in *real* seconds, for budget
        accounting (differences are meaningful, absolute values are not).

        The virtual clock pins this to ``0.0``: a replay spends no
        budget, observes no lag, and therefore never defers — which is
        what makes virtual replay bit-identical to the offline
        controller.
        """


class VirtualClock(Clock):
    """Deterministic scenario time: advances only when told to."""

    is_virtual = True

    def __init__(self, start_s: float = 0.0) -> None:
        if start_s < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = start_s

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move scenario time forward to ``t`` (backwards is an error)."""
        if t < self._now:
            raise ValueError(
                f"virtual clock cannot move backwards "
                f"({self._now:g} -> {t:g})"
            )
        self._now = t

    async def sleep_until(self, t: float) -> None:
        if t > self._now:
            self.advance_to(t)
        # Yield once so virtual and live runs share the same control-flow
        # shape through the event loop (one suspension per wait).
        await asyncio.sleep(0)

    def work_seconds(self) -> float:
        return 0.0
