"""The live status surface: a minimal local HTTP endpoint.

:class:`StatusServer` serves a running gateway's state as JSON over a
loopback TCP socket (pure asyncio — no HTTP framework, and nothing here
reads the wall clock):

- ``GET /report`` (or ``/``) — the periodically materialized
  :class:`~repro.ops.report.OpsReport` snapshot plus health signals
  (the gateway refreshes it every ``snapshot_every`` steps, so a
  request is O(1) and reads are bounded-stale, never torn);
- ``GET /health`` — just the degradation signals
  (:class:`~repro.serve.gateway.GatewayHealth`), rebuilt per request.

One request per connection (``Connection: close``) keeps the protocol
trivially correct for ``curl`` and the CLI's own probes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from repro.serve.gateway import ServeGateway


class StatusServer:
    """Serves one gateway's snapshot and health over local HTTP."""

    def __init__(
        self,
        gateway: ServeGateway,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.gateway = gateway
        self.host = host
        #: requested port (0 = ephemeral); the bound port after start()
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("status server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            while True:  # drain request headers up to the blank line
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request.decode("latin-1").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else "/"
            if method != "GET":
                status, doc = "405 Method Not Allowed", {"error": "GET only"}
            elif path in ("/", "/report"):
                status, doc = "200 OK", self.gateway.snapshot()
            elif path == "/health":
                status, doc = "200 OK", dict(self.gateway.health.to_doc())
            else:
                status, doc = "404 Not Found", {"error": f"no route {path}"}
            body = json.dumps(doc, sort_keys=True).encode("utf-8")
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n".encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
