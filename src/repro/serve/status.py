"""The live status surface: a minimal local HTTP endpoint.

:class:`StatusServer` serves a running gateway's state as JSON over a
loopback TCP socket (pure asyncio — no HTTP framework, and nothing here
reads the wall clock):

- ``GET /report`` (or ``/``) — the periodically materialized
  :class:`~repro.ops.report.OpsReport` snapshot plus health signals
  (the gateway refreshes it every ``snapshot_every`` steps, so a
  request is O(1) and reads are bounded-stale, never torn);
- ``GET /health`` — the full degradation surface
  (:meth:`~repro.serve.gateway.ServeGateway.health_doc`): gateway
  counters plus shard-pool recovery health plus journal stats, rebuilt
  per request;
- ``GET /metrics`` — the Prometheus text exposition (format 0.0.4) of
  the session's :class:`~repro.obs.registry.MetricsRegistry`: every
  controller family plus the attached gateway/shard/journal counters,
  rendered byte-deterministically per scrape;
- ``POST /events`` — submit events in the canonical wire format (one
  JSON object per line, as :func:`~repro.serve.sources.encode_event`
  emits).  Accepted events are journaled and enqueued exactly like
  source events; a malformed body is a ``400`` (counted in
  ``rejected_events``) without disturbing the session, and a closed
  intake is a ``409``.

One request per connection (``Connection: close``) keeps the protocol
trivially correct for ``curl`` and the CLI's own probes.  Transport
errors while answering a request are swallowed — a dying client must
not kill the control plane — but never silently: each one increments
the gateway's ``http_errors`` health counter.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Union

from repro.obs import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.ops.events import OpsEvent
from repro.serve.gateway import ServeGateway
from repro.serve.sources import decode_event

#: refuse request bodies beyond this size (a local status port is not a
#: bulk-ingest path)
MAX_BODY_BYTES = 1 << 20


class StatusServer:
    """Serves one gateway's snapshot and health over local HTTP."""

    def __init__(
        self,
        gateway: ServeGateway,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.gateway = gateway
        self.host = host
        #: requested port (0 = ephemeral); the bound port after start()
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("status server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            content_length = 0
            while True:  # drain request headers up to the blank line
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        content_length = 0
            parts = request.decode("latin-1").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else "/"
            status, doc = await self._route(
                method, path, reader, content_length
            )
            if isinstance(doc, str):
                # plain-text route (the Prometheus exposition)
                body = doc.encode("utf-8")
                content_type = PROMETHEUS_CONTENT_TYPE
            else:
                body = json.dumps(doc, sort_keys=True).encode("utf-8")
                content_type = "application/json"
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n".encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionError, OSError):
            # A client that hung up mid-request must not take the
            # control plane with it — swallowed, but counted.
            self.gateway.health.http_errors += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                self.gateway.health.http_errors += 1

    async def _route(
        self,
        method: str,
        path: str,
        reader: asyncio.StreamReader,
        content_length: int,
    ) -> tuple[str, Union[dict[str, object], str]]:
        routes = {
            "/": "GET",
            "/report": "GET",
            "/health": "GET",
            "/metrics": "GET",
            "/events": "POST",
        }
        allowed = routes.get(path)
        if allowed is None:
            return "404 Not Found", {"error": f"no route {path}"}
        if method != allowed:
            return "405 Method Not Allowed", {
                "error": f"{path} accepts {allowed} only"
            }
        if path == "/events":
            return await self._post_events(reader, content_length)
        if path == "/health":
            return "200 OK", self.gateway.health_doc()
        if path == "/metrics":
            return "200 OK", render_prometheus(self.gateway.obs.registry)
        return "200 OK", self.gateway.snapshot()

    async def _post_events(
        self, reader: asyncio.StreamReader, content_length: int
    ) -> tuple[str, dict[str, object]]:
        if content_length <= 0:
            self.gateway.health.rejected_events += 1
            return "400 Bad Request", {"error": "empty body"}
        if content_length > MAX_BODY_BYTES:
            self.gateway.health.rejected_events += 1
            return "400 Bad Request", {
                "error": f"body exceeds {MAX_BODY_BYTES} bytes"
            }
        try:
            raw = await reader.readexactly(content_length)
        except asyncio.IncompleteReadError:
            self.gateway.health.rejected_events += 1
            return "400 Bad Request", {"error": "truncated body"}
        events: list[OpsEvent] = []
        for n, line in enumerate(raw.decode("utf-8", errors="replace").split("\n")):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(decode_event(line))
            except ValueError as exc:
                # All-or-nothing: one bad line rejects the batch, and
                # nothing has been admitted yet.
                self.gateway.health.rejected_events += 1
                return "400 Bad Request", {
                    "error": f"line {n}: {exc}",
                }
        try:
            accepted, dropped = self.gateway.inject(events)
        except RuntimeError:
            self.gateway.health.rejected_events += 1
            return "409 Conflict", {"error": "intake closed"}
        return "202 Accepted", {"accepted": accepted, "dropped": dropped}
