"""The ordered intake queue between event sources and the control loop.

Sources push events as they surface; the gateway pops the batch *due*
at each stepping instant.  Ordering reuses the timeline contract —
entries sort by :func:`~repro.ops.events.timeline_key`, ties broken by
arrival sequence — so popping due events off a live stream yields
exactly the batches :func:`~repro.ops.events.merge_timeline` would have
produced from the same events offline (the property the virtual-clock
replay identity rests on).

Each entry remembers the work-stopwatch reading at push time
(:class:`IntakeItem.enqueued_at`), which is what per-event reaction
latency is measured against in live mode (always ``0.0`` under the
virtual clock).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Optional

from repro.ops.events import OpsEvent, timeline_key


@dataclass(frozen=True)
class IntakeItem:
    """One queued event plus its arrival bookkeeping."""

    event: OpsEvent
    #: work-stopwatch reading (:meth:`Clock.work_seconds`) at push time
    enqueued_at: float = 0.0


class IntakeQueue:
    """Heap of pending events in deterministic timeline order."""

    def __init__(self) -> None:
        self._heap: list[tuple[tuple[float, int, str], int, IntakeItem]] = []
        self._seq = 0
        self._arrived = asyncio.Event()
        self._closed = False
        #: events accepted so far (monotonic; popped events still count)
        self.accepted = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def closed(self) -> bool:
        """True once the feeding source reached EOF (no more pushes)."""
        return self._closed

    def push(self, event: OpsEvent, enqueued_at: float = 0.0) -> None:
        """Queue one event; wakes any waiter in :meth:`wait_arrival`."""
        if self._closed:
            raise RuntimeError("intake queue is closed")
        heappush(
            self._heap,
            (timeline_key(event), self._seq, IntakeItem(event, enqueued_at)),
        )
        self._seq += 1
        self.accepted += 1
        self._arrived.set()

    def pop_due(self, t: float) -> list[IntakeItem]:
        """Remove and return every queued event stamped at or before ``t``,
        in timeline order."""
        out: list[IntakeItem] = []
        while self._heap and self._heap[0][0][0] <= t:
            out.append(heappop(self._heap)[2])
        return out

    def next_time(self) -> Optional[float]:
        """Earliest queued event time, or None when empty."""
        return self._heap[0][0][0] if self._heap else None

    def close(self) -> None:
        """Mark the stream ended; wakes any waiter so it can observe EOF."""
        self._closed = True
        self._arrived.set()

    async def wait_arrival(self) -> None:
        """Block until a push (or :meth:`close`) happens.

        Pushes that occurred since the last call count — the internal
        event stays set until a waiter consumes it — so callers never
        miss an arrival; they re-examine :meth:`next_time` /
        :attr:`closed` after waking.
        """
        await self._arrived.wait()
        if not self._closed:
            self._arrived.clear()
