"""The live clock: scenario time backed by the monotonic wall clock.

This is the **only** module in :mod:`repro.serve` allowed to read the
wall clock (the repro-lint D002 allowlist names exactly this file).
Everything else — the gateway loop, the intake queue, the deadline
scheduler — takes time from the :class:`~repro.serve.clock.Clock`
interface, so the identical code path replays deterministically under a
:class:`~repro.serve.clock.VirtualClock`.
"""

from __future__ import annotations

import asyncio
import time

from repro.serve.clock import Clock


class MonotonicClock(Clock):
    """Scenario time = scaled monotonic seconds since construction.

    ``time_scale`` is scenario seconds per real second: ``10.0`` runs a
    session ten times faster than real time (a one-hour scenario demos
    in six minutes), ``1.0`` is real time.
    """

    is_virtual = False

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time scale must be positive")
        self.time_scale = time_scale
        self._origin = time.monotonic()

    def now(self) -> float:
        return (time.monotonic() - self._origin) * self.time_scale

    async def sleep_until(self, t: float) -> None:
        delay = (t - self.now()) / self.time_scale
        if delay > 0:
            await asyncio.sleep(delay)

    def work_seconds(self) -> float:
        return time.monotonic()
