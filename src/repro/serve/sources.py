"""Event sources and the line-delimited JSON wire format.

A *source* is an async iterator of :class:`~repro.ops.events.OpsEvent`
— the gateway consumes any of them identically:

- :func:`timeline_source` — adapts an in-memory timeline (anything the
  :mod:`repro.ops.events` generators produce) into a stream;
- :func:`jsonl_source` — decodes an iterable of line-delimited JSON
  strings (a recorded session file);
- :func:`stream_source` — decodes line-delimited JSON from an
  :class:`asyncio.StreamReader` (stdin or a socket) until EOF.

The wire format is one JSON object per line: the event's dataclass
fields plus a ``"kind"`` discriminator naming the event type, keys
sorted — so a recorded session is diffable and byte-stable.  The codec
round-trips exactly (``event_from_doc(event_to_doc(e)) == e``), which is
what lets a live session be recorded and replayed bit-identically under
the virtual clock.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import AsyncIterator, Iterable

from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    OpsEvent,
    RateEpoch,
    ServiceArrival,
    ServiceDeparture,
    SloChange,
    SpotPreemptionWave,
)

#: ``"kind"`` discriminator -> event class (the full event vocabulary).
EVENT_TYPES: dict[str, type[OpsEvent]] = {
    cls.__name__: cls
    for cls in (
        ServiceDeparture,
        ServiceArrival,
        SloChange,
        RateEpoch,
        GpuRecovery,
        GpuFailure,
        SpotPreemptionWave,
    )
}


def event_to_doc(event: OpsEvent) -> dict[str, object]:
    """One event as a JSON-ready dict (dataclass fields + ``kind``)."""
    if type(event).__name__ not in EVENT_TYPES:
        raise TypeError(f"not a wire-format event type: {event!r}")
    doc: dict[str, object] = {"kind": event.kind}
    doc.update(dataclasses.asdict(event))
    return doc


def event_from_doc(doc: dict[str, object]) -> OpsEvent:
    """Rebuild an event from its wire dict (inverse of
    :func:`event_to_doc`)."""
    fields = dict(doc)
    kind = fields.pop("kind", None)
    if not isinstance(kind, str) or kind not in EVENT_TYPES:
        raise ValueError(f"unknown event kind {kind!r}")
    cls = EVENT_TYPES[kind]
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(k for k in fields if k not in allowed)
    if unknown:
        raise ValueError(f"{kind} does not accept fields {unknown}")
    return cls(**fields)  # type: ignore[arg-type]


def encode_event(event: OpsEvent) -> str:
    """One event as its canonical wire line (sorted keys, no newline)."""
    return json.dumps(event_to_doc(event), sort_keys=True)


def decode_event(line: str) -> OpsEvent:
    """Parse one wire line back into an event."""
    doc = json.loads(line)
    if not isinstance(doc, dict):
        raise ValueError(f"event line must be a JSON object: {line!r}")
    return event_from_doc(doc)


async def timeline_source(events: Iterable[OpsEvent]) -> AsyncIterator[OpsEvent]:
    """Stream an in-memory timeline, preserving its order."""
    for event in events:
        yield event


async def jsonl_source(lines: Iterable[str]) -> AsyncIterator[OpsEvent]:
    """Stream a recorded session: one JSON event per non-blank line."""
    for line in lines:
        line = line.strip()
        if line:
            yield decode_event(line)


async def stream_source(reader: asyncio.StreamReader) -> AsyncIterator[OpsEvent]:
    """Stream line-delimited JSON events from a reader until EOF."""
    while True:
        raw = await reader.readline()
        if not raw:
            return
        line = raw.decode("utf-8").strip()
        if line:
            yield decode_event(line)
