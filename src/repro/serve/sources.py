"""Event sources and the line-delimited JSON wire format.

A *source* is an async iterator of :class:`~repro.ops.events.OpsEvent`
— the gateway consumes any of them identically:

- :func:`timeline_source` — adapts an in-memory timeline (anything the
  :mod:`repro.ops.events` generators produce) into a stream;
- :func:`jsonl_source` — decodes an iterable of line-delimited JSON
  strings (a recorded session file);
- :func:`stream_source` — decodes line-delimited JSON from an
  :class:`asyncio.StreamReader` (stdin or a socket) until EOF.

The wire format is one JSON object per line: the event's dataclass
fields plus a ``"kind"`` discriminator naming the event type, keys
sorted — so a recorded session is diffable and byte-stable.  The codec
round-trips exactly (``event_from_doc(event_to_doc(e)) == e``), which is
what lets a live session be recorded and replayed bit-identically under
the virtual clock.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import AsyncIterator, Callable, Iterable, Optional

from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    OpsEvent,
    RateEpoch,
    ServiceArrival,
    ServiceDeparture,
    SloChange,
    SpotPreemptionWave,
)

#: ``"kind"`` discriminator -> event class (the full event vocabulary).
EVENT_TYPES: dict[str, type[OpsEvent]] = {
    cls.__name__: cls
    for cls in (
        ServiceDeparture,
        ServiceArrival,
        SloChange,
        RateEpoch,
        GpuRecovery,
        GpuFailure,
        SpotPreemptionWave,
    )
}


def event_to_doc(event: OpsEvent) -> dict[str, object]:
    """One event as a JSON-ready dict (dataclass fields + ``kind``)."""
    if type(event).__name__ not in EVENT_TYPES:
        raise TypeError(f"not a wire-format event type: {event!r}")
    doc: dict[str, object] = {"kind": event.kind}
    doc.update(dataclasses.asdict(event))
    return doc


def event_from_doc(doc: dict[str, object]) -> OpsEvent:
    """Rebuild an event from its wire dict (inverse of
    :func:`event_to_doc`)."""
    fields = dict(doc)
    kind = fields.pop("kind", None)
    if not isinstance(kind, str) or kind not in EVENT_TYPES:
        raise ValueError(f"unknown event kind {kind!r}")
    cls = EVENT_TYPES[kind]
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(k for k in fields if k not in allowed)
    if unknown:
        raise ValueError(f"{kind} does not accept fields {unknown}")
    return cls(**fields)  # type: ignore[arg-type]


def encode_event(event: OpsEvent) -> str:
    """One event as its canonical wire line (sorted keys, no newline)."""
    return json.dumps(event_to_doc(event), sort_keys=True)


def decode_event(line: str) -> OpsEvent:
    """Parse one wire line back into an event."""
    doc = json.loads(line)
    if not isinstance(doc, dict):
        raise ValueError(f"event line must be a JSON object: {line!r}")
    return event_from_doc(doc)


async def timeline_source(events: Iterable[OpsEvent]) -> AsyncIterator[OpsEvent]:
    """Stream an in-memory timeline, preserving its order."""
    for event in events:
        yield event


async def jsonl_source(
    lines: Iterable[str],
    *,
    on_malformed: Optional[Callable[[str], None]] = None,
) -> AsyncIterator[OpsEvent]:
    """Stream a recorded session: one JSON event per non-blank line.

    By default a malformed line raises :class:`ValueError` (a recorded
    session is supposed to be pristine).  With ``on_malformed`` set, the
    bad line is reported to the callback and skipped instead — the
    gateway's degraded-intake mode, where corruption is counted rather
    than fatal.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = decode_event(line)
        except ValueError:
            if on_malformed is None:
                raise
            on_malformed(line)
            continue
        yield event


async def stream_source(
    reader: asyncio.StreamReader,
    *,
    on_malformed: Optional[Callable[[str], None]] = None,
) -> AsyncIterator[OpsEvent]:
    """Stream line-delimited JSON events from a reader until EOF.

    ``on_malformed`` works as in :func:`jsonl_source`: when set, bad
    lines are reported and skipped; when unset they raise.
    """
    while True:
        raw = await reader.readline()
        if not raw:
            return
        line = raw.decode("utf-8", errors="replace").strip()
        if not line:
            continue
        try:
            event = decode_event(line)
        except ValueError:
            if on_malformed is None:
                raise
            on_malformed(line)
            continue
        yield event


async def resilient_source(
    factory: Callable[[], AsyncIterator[OpsEvent]],
    *,
    max_retries: int = 3,
    backoff_s: float = 0.05,
    on_retry: Optional[Callable[[BaseException], None]] = None,
) -> AsyncIterator[OpsEvent]:
    """Wrap a reconnectable source with retry, backoff, and dedup.

    ``factory`` builds a fresh stream of the *same* logical session each
    time it is called (re-open the file, re-dial the socket).  When the
    live stream dies with a transient transport error
    (:class:`ConnectionError`, :class:`OSError`, :class:`EOFError`), a
    new stream is built and the events already delivered downstream are
    skipped by count — so the merged stream is exactly the session,
    once, in order.

    Each reconnect sleeps ``backoff_s * 2**(attempt-1)``; making forward
    progress (any new event) resets the retry budget.  After
    ``max_retries`` consecutive failures with no progress, the last
    error propagates — that is the gateway's cue to enter safe mode.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    delivered = 0
    attempt = 0
    while True:
        emitted_this_stream = 0
        try:
            stream = factory()
            async for event in stream:
                emitted_this_stream += 1
                if emitted_this_stream <= delivered:
                    continue  # replayed prefix after a reconnect
                delivered += 1
                attempt = 0  # forward progress resets the budget
                yield event
            return
        except (ConnectionError, OSError, EOFError) as exc:
            attempt += 1
            if attempt > max_retries:
                raise
            if on_retry is not None:
                on_retry(exc)
            await asyncio.sleep(backoff_s * (2 ** (attempt - 1)))
