"""The live-serving gateway: FleetController as an async control loop.

:class:`ServeGateway` wraps the re-entrant
:meth:`begin() <repro.ops.controller.FleetController.begin>` /
:meth:`step() <repro.ops.controller.FleetController.step>` /
:meth:`finish() <repro.ops.controller.FleetController.finish>` API in a
long-running asyncio loop: a feeder task drains an event source into
the ordered :class:`~repro.serve.intake.IntakeQueue`, the loop wakes at
each due instant, applies the batch through the controller's cheapest
correct path, and keeps a materialized :class:`OpsReport` snapshot for
the status surface.

**Deadline budget.**  In live mode the loop tracks *lag* — how far
scenario time has drifted past the instant being applied.  When lag
exceeds ``deadline_budget_s`` and the due batch would take the full
re-schedule path (structural churn above the controller's
``full_replan_fraction``), the batch is *deferred*: parked, coalesced
with the next due batch, and retried — so cheap single-delta events
keep landing on time while an expensive re-plan waits for slack.
Deferral never applies to GPU events (lost hardware cannot wait), to
the bootstrap placement, or past ``max_deferrals`` consecutive skips;
parked depth is surfaced as a health signal and any leftovers are
force-flushed before the run closes.

**Identity contract.**  Under a
:class:`~repro.serve.clock.VirtualClock` the gateway is a pure driver
over the offline controller: the source is drained completely before
the first step (so instant grouping sees the whole timeline, exactly
like :meth:`FleetController.run`), the clock's work stopwatch is frozen
at zero (so lag is zero and the scheduler never defers, even with a
budget configured), and stepping instants are the event instants — the
replayed report is bit-identical to the offline reference
(:func:`replay_identity_checked` asserts it; the perf harness's serve
suite records it).
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import AsyncIterator, ClassVar, Iterable, Optional, Sequence

from repro.core.service import Service
from repro.obs import fields_doc
from repro.ops.checkpoint import write_checkpoint
from repro.ops.controller import FleetController, assert_reports_identical
from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    OpsEvent,
    SpotPreemptionWave,
)
from repro.ops.report import OpsReport
from repro.serve.clock import Clock, VirtualClock
from repro.serve.intake import IntakeItem, IntakeQueue
from repro.serve.journal import Journal
from repro.serve.sources import timeline_source

#: Events the deadline scheduler refuses to defer: lost (or returning)
#: hardware must be handled the instant it surfaces.
_URGENT = (GpuFailure, GpuRecovery, SpotPreemptionWave)


def reaction_percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[idx]


@dataclass
class GatewayHealth:
    """Degradation signals the live status surface publishes."""

    steps: int = 0
    events_applied: int = 0
    #: batches the deadline scheduler parked instead of stepping
    deferrals: int = 0
    #: events currently parked awaiting slack
    deferred_depth: int = 0
    max_deferred_depth: int = 0
    #: deferred leftovers force-applied at shutdown
    forced_flushes: int = 0
    #: steps whose instant had to be clamped forward (late live events)
    late_steps: int = 0
    #: events refused because they were stamped at/past the horizon
    dropped_beyond_horizon: int = 0
    #: source reconnect attempts that eventually made progress
    source_retries: int = 0
    #: sources that died for good (retry budget exhausted) — safe mode
    source_failures: int = 0
    #: undecodable intake lines skipped (degraded-intake mode)
    malformed_lines: int = 0
    #: events admitted through the HTTP write path (``POST /events``)
    injected_events: int = 0
    #: HTTP submissions refused (malformed body or closed intake)
    rejected_events: int = 0
    #: transport errors swallowed while serving the status surface
    http_errors: int = 0
    #: control-plane checkpoints flushed (periodic + shutdown)
    checkpoint_writes: int = 0
    #: checkpoint flushes that failed (counted, never fatal mid-run)
    checkpoint_errors: int = 0
    #: the intake source is gone; the loop is draining what it has and
    #: will flush a final checkpoint at shutdown
    safe_mode: bool = False
    #: per-step reaction latency in real seconds: work-stopwatch span
    #: from the batch's earliest enqueue to step completion (live only)
    reactions_s: list[float] = field(default_factory=list)

    #: the one spec driving both the ``/health`` document and the
    #: ``gateway_*`` metric families (see repro.obs.registry.attach)
    OBS_FIELDS: ClassVar[dict[str, str]] = {
        "steps": "counter",
        "events_applied": "counter",
        "deferrals": "counter",
        "deferred_depth": "gauge",
        "max_deferred_depth": "gauge",
        "forced_flushes": "counter",
        "late_steps": "counter",
        "dropped_beyond_horizon": "counter",
        "source_retries": "counter",
        "source_failures": "counter",
        "malformed_lines": "counter",
        "injected_events": "counter",
        "rejected_events": "counter",
        "http_errors": "counter",
        "checkpoint_writes": "counter",
        "checkpoint_errors": "counter",
        "safe_mode": "gauge",
    }

    def reaction_percentiles(self) -> dict[str, float]:
        return {
            "p50_ms": reaction_percentile(self.reactions_s, 0.50) * 1e3,
            "p95_ms": reaction_percentile(self.reactions_s, 0.95) * 1e3,
            "p99_ms": reaction_percentile(self.reactions_s, 0.99) * 1e3,
        }

    def to_doc(self) -> dict[str, object]:
        doc = fields_doc(self)
        if self.reactions_s:
            pct = self.reaction_percentiles()
            doc["reaction_p50_ms"] = round(pct["p50_ms"], 3)
            doc["reaction_p95_ms"] = round(pct["p95_ms"], 3)
            doc["reaction_p99_ms"] = round(pct["p99_ms"], 3)
        return doc


class ServeGateway:
    """One live (or replayed) serving session over a FleetController."""

    def __init__(
        self,
        controller: FleetController,
        services: Sequence[Service],
        horizon_s: float,
        clock: Optional[Clock] = None,
        *,
        measure_s: float = 0.0,
        warmup_s: float = 0.1,
        sim_seed: int = 0,
        check: bool = True,
        measure_every: int = 1,
        deadline_budget_s: Optional[float] = None,
        max_deferrals: int = 8,
        snapshot_every: int = 0,
        journal: Optional[Journal] = None,
        checkpoint_path: Optional[str | Path] = None,
        checkpoint_every: int = 0,
    ) -> None:
        if deadline_budget_s is not None and deadline_budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        if max_deferrals < 1:
            raise ValueError("max_deferrals must be >= 1")
        if snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_path is None:
            raise ValueError("checkpoint_every requires checkpoint_path")
        self.controller = controller
        self.services = list(services)
        self.horizon_s = horizon_s
        self.clock: Clock = clock if clock is not None else VirtualClock()
        self.measure_s = measure_s
        self.warmup_s = warmup_s
        self.sim_seed = sim_seed
        self.check = check
        self.measure_every = measure_every
        self.deadline_budget_s = deadline_budget_s
        self.max_deferrals = max_deferrals
        #: refresh the cached status snapshot every N steps (0 = only on
        #: demand / at shutdown — the cheap default for pure replays)
        self.snapshot_every = snapshot_every
        #: write-ahead journal: every admitted event is persisted before
        #: it enters the intake queue, so a crashed session replays
        self.journal = journal
        self.checkpoint_path = (
            None if checkpoint_path is None else Path(checkpoint_path)
        )
        self.checkpoint_every = checkpoint_every
        self.intake = IntakeQueue()
        self.health = GatewayHealth()
        # The gateway shares its controller's hub and binds the wall
        # sidecar track to the clock's work stopwatch: a VirtualClock
        # pins it to 0.0, so replayed traces/metrics stay byte-identical
        # while live sessions get true wall sidecars for free.
        self.obs = controller.obs
        self.obs.set_wall(self.clock.work_seconds)
        self.obs.registry.attach("gateway", self.health)
        if journal is not None:
            self.obs.registry.attach("journal", journal.stats)
        self._m_reaction = self.obs.histogram(
            "gateway_reaction_seconds",
            "wall sidecar: batch earliest-enqueue to step completion "
            "(live sessions only)",
        )
        self.report: Optional[OpsReport] = None
        self._deferred: list[IntakeItem] = []
        self._streak = 0  # consecutive deferrals
        self._last_t: Optional[float] = None
        self._cached_snapshot: Optional[dict[str, object]] = None
        self._source_error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # the control loop
    # ------------------------------------------------------------------ #

    async def run(self, source: AsyncIterator[OpsEvent]) -> OpsReport:
        """Consume ``source`` to exhaustion and return the closed report."""
        self.report = self.controller.begin(
            self.services,
            self.horizon_s,
            measure_s=self.measure_s,
            warmup_s=self.warmup_s,
            sim_seed=self.sim_seed,
            check=self.check,
            measure_every=self.measure_every,
        )
        feeder: Optional[asyncio.Task[None]] = None
        try:
            if self.clock.is_virtual:
                # A deterministic replay groups instants exactly like the
                # offline run loop, which requires seeing the whole
                # timeline before the first step.
                await self._feed(source)
            else:
                feeder = asyncio.create_task(self._feed(source))
            await self._loop(feeder)
        finally:
            if feeder is not None:
                feeder.cancel()
                try:
                    await feeder
                except asyncio.CancelledError:
                    pass
            # Always flush a final checkpoint — the safe-mode shutdown
            # contract — before the run closes and state is torn down.
            self._write_checkpoint()
            self.report = self.controller.finish()
            if self.journal is not None:
                self.journal.close()
        self._refresh_snapshot()
        return self.report

    async def _feed(self, source: AsyncIterator[OpsEvent]) -> None:
        try:
            async for event in source:
                self._admit(event)
        except (ConnectionError, OSError, EOFError, ValueError) as exc:
            # The last rung of the intake degradation ladder: per-line
            # skips and source reconnects happen upstream (``sources``);
            # an error surfacing *here* means the stream is gone for
            # good.  Enter safe mode: drain what was admitted, then shut
            # down through the normal path (final checkpoint included).
            self.health.source_failures += 1
            self.health.safe_mode = True
            self._source_error = f"{type(exc).__name__}: {exc}"
            self.obs.note("safe-mode", error=self._source_error)
            self.obs.dump_flight("safe-mode")
        finally:
            self.intake.close()

    def _admit(self, event: OpsEvent) -> bool:
        """Horizon-check, journal (write-ahead), and enqueue one event."""
        if event.time_s >= self.horizon_s:
            self.health.dropped_beyond_horizon += 1
            return False
        if self.journal is not None:
            self.journal.append(event)
        self.intake.push(event, enqueued_at=self.clock.work_seconds())
        return True

    def inject(self, events: Sequence[OpsEvent]) -> tuple[int, int]:
        """Admit externally submitted events (the HTTP write path).

        Returns ``(accepted, dropped)`` — dropped meaning stamped at or
        past the horizon.  Raises :class:`RuntimeError` once the intake
        is closed (the session is draining or finished).
        """
        accepted = 0
        dropped = 0
        for event in events:
            if self._admit(event):
                accepted += 1
                self.health.injected_events += 1
            else:
                dropped += 1
        return accepted, dropped

    def count_malformed(self, line: str) -> None:
        """``on_malformed`` hook for sources: count a skipped bad line."""
        del line
        self.health.malformed_lines += 1

    def count_retry(self, exc: BaseException) -> None:
        """``on_retry`` hook for :func:`resilient_source`."""
        del exc
        self.health.source_retries += 1

    def _write_checkpoint(self) -> None:
        """Flush the controller's full state; failure is counted, not fatal."""
        if self.checkpoint_path is None:
            return
        try:
            write_checkpoint(self.checkpoint_path, self.controller.checkpoint())
        except OSError:
            self.health.checkpoint_errors += 1
        else:
            self.health.checkpoint_writes += 1

    async def _loop(self, feeder: Optional[asyncio.Task[None]]) -> None:
        t = 0.0  # the bootstrap interval exists even on an empty stream
        while True:
            await self._wait_scenario(t)
            earlier = self.intake.next_time()
            if earlier is not None and earlier < t:
                t = earlier  # late/earlier work surfaced while waiting
            items = self.intake.pop_due(t)
            pending = self.controller.pending_due(t)
            self._step_or_defer(t, items, pending)
            nxt = self._next_instant()
            if nxt is None:
                if feeder is not None and not self.intake.closed:
                    # live stream still open: park until more work or EOF
                    await self.intake.wait_arrival()
                    continue
                break
            t = nxt
        self._flush_deferred()

    async def _wait_scenario(self, target: float) -> None:
        """Reach scenario instant ``target``; in live mode, wake early when
        an earlier-stamped event arrives so the caller can re-aim."""
        if self.clock.is_virtual:
            await self.clock.sleep_until(target)
            return
        while self.clock.now() < target:
            if self.intake.closed:
                # no more arrivals can surface: a plain sleep suffices
                await self.clock.sleep_until(target)
                return
            sleeper = asyncio.ensure_future(self.clock.sleep_until(target))
            waker = asyncio.ensure_future(self.intake.wait_arrival())
            done, not_done = await asyncio.wait(
                {sleeper, waker}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in not_done:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            if waker in done:
                earlier = self.intake.next_time()
                if earlier is not None and earlier < target:
                    return

    def _next_instant(self) -> Optional[float]:
        candidates = [
            x
            for x in (
                self.intake.next_time(),
                self.controller.next_pending_time(),
            )
            if x is not None
        ]
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------ #
    # stepping and the deadline scheduler
    # ------------------------------------------------------------------ #

    def _step_or_defer(
        self,
        t: float,
        items: list[IntakeItem],
        pending: list[OpsEvent],
    ) -> None:
        bootstrap = self.health.steps == 0
        if not items and not pending and not self._deferred and not bootstrap:
            return  # spurious wake: nothing due, nothing parked
        batch_items = self._deferred + items
        events = [it.event for it in batch_items] + pending
        if self._should_defer(t, events, bootstrap):
            self._deferred = batch_items
            self._streak += 1
            self.health.deferrals += 1
            self.health.deferred_depth = len(self._deferred)
            self.health.max_deferred_depth = max(
                self.health.max_deferred_depth, self.health.deferred_depth
            )
            return
        self._apply(t, batch_items, events)

    def _should_defer(
        self, t: float, events: list[OpsEvent], bootstrap: bool
    ) -> bool:
        if self.deadline_budget_s is None or bootstrap or not events:
            return False
        if self._streak >= self.max_deferrals:
            return False  # starvation cap: the re-plan lands regardless
        if any(isinstance(e, _URGENT) for e in events):
            return False
        if not self.controller.would_full_replan(events):
            return False  # cheap single-delta path: apply on time
        # Lag is the one degradation signal: how far scenario time has
        # drifted past the instant being applied.  The virtual clock
        # always reads now() == t here, so replays never defer.
        lag = self.clock.now() - t
        return lag > self.deadline_budget_s

    def _apply(
        self,
        t: float,
        batch_items: list[IntakeItem],
        events: list[OpsEvent],
    ) -> None:
        # A late live event may be stamped before the last applied
        # instant; the step API refuses to move time backwards, so the
        # instant is clamped forward (and counted as degradation).
        if self._last_t is not None and t < self._last_t:
            t = self._last_t
            self.health.late_steps += 1
        with self.obs.span(
            "intake", t_s=t, cat="interval",
            events=len(events), batch=len(batch_items),
        ):
            record = self.controller.step(t, events)
        finished = self.clock.work_seconds()
        self._last_t = t
        self._deferred = []
        self._streak = 0
        self.health.steps += 1
        self.health.events_applied += len(events)
        self.health.deferred_depth = 0
        if batch_items and not self.clock.is_virtual:
            earliest = min(it.enqueued_at for it in batch_items)
            reaction = finished - earliest
            self.health.reactions_s.append(reaction)
            self._m_reaction.observe(reaction)
            # Wall sidecars on the record, never in fingerprinted state:
            # a live OpsReport can show true reaction latency while the
            # identity-checked document stays untouched (PR-7 follow-up).
            record.obs_sidecar["wall_arrival_s"] = earliest
            record.obs_sidecar["wall_finished_s"] = finished
            record.obs_sidecar["reaction_s"] = reaction
        if self.snapshot_every and self.health.steps % self.snapshot_every == 0:
            self._refresh_snapshot()
        if (
            self.checkpoint_every
            and self.health.steps % self.checkpoint_every == 0
        ):
            self._write_checkpoint()

    def _flush_deferred(self) -> None:
        """Force-apply anything still parked when the run winds down."""
        if not self._deferred:
            return
        t = max(it.event.time_s for it in self._deferred)
        if self._last_t is not None:
            t = max(t, self._last_t)
        self.health.forced_flushes += 1
        self._apply(t, self._deferred, [it.event for it in self._deferred])

    # ------------------------------------------------------------------ #
    # the status snapshot
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, object]:
        """The materialized status document (built on first demand)."""
        if self._cached_snapshot is None:
            self._refresh_snapshot()
            assert self._cached_snapshot is not None
        return self._cached_snapshot

    def health_doc(self) -> dict[str, object]:
        """The full health surface: gateway, shard pool, and journal."""
        doc = self.health.to_doc()
        if self._source_error is not None:
            doc["source_error"] = self._source_error
        shard = self.controller.shard_health()
        if shard is not None:
            doc["shard_pool"] = shard.to_doc()
        if self.journal is not None:
            doc["journal"] = self.journal.stats.to_doc()
        return doc

    def _refresh_snapshot(self) -> None:
        self._cached_snapshot = {
            "scenario_time_s": round(self.clock.now(), 3),
            "virtual_clock": self.clock.is_virtual,
            "intake_depth": len(self.intake),
            "health": self.health_doc(),
            "report": None if self.report is None else self.report.to_doc(),
        }


# ---------------------------------------------------------------------- #
# replay helpers: the gateway as an offline-identical timeline consumer
# ---------------------------------------------------------------------- #


def replay_gateway(
    services: Sequence[Service],
    timeline: Iterable[OpsEvent],
    horizon_s: float,
    *,
    measure_s: float = 0.0,
    warmup_s: float = 0.1,
    sim_seed: int = 0,
    check: bool = True,
    measure_every: int = 1,
    deadline_budget_s: Optional[float] = None,
    controller: Optional[FleetController] = None,
    **controller_kwargs: object,
) -> OpsReport:
    """Replay a recorded timeline through the virtual-clock gateway.

    Constructs a :class:`FleetController` from ``controller_kwargs``
    (unless one is given), drives it through ``timeline`` with a fresh
    :class:`~repro.serve.clock.VirtualClock`, and returns the closed
    report — which the identity contract binds bit-for-bit to
    ``FleetController.run`` on the same timeline.
    """
    if controller is None:
        controller = FleetController(**controller_kwargs)
    gateway = ServeGateway(
        controller,
        services,
        horizon_s,
        VirtualClock(),
        measure_s=measure_s,
        warmup_s=warmup_s,
        sim_seed=sim_seed,
        check=check,
        measure_every=measure_every,
        deadline_budget_s=deadline_budget_s,
    )
    return asyncio.run(gateway.run(timeline_source(timeline)))


def replay_identity_checked(
    services: Sequence[Service],
    timeline: Iterable[OpsEvent],
    horizon_s: float,
    *,
    measure_s: float = 0.0,
    warmup_s: float = 0.1,
    sim_seed: int = 0,
    workers: int = 0,
    deadline_budget_s: Optional[float] = None,
    **controller_kwargs: object,
) -> tuple[OpsReport, OpsReport]:
    """Virtual-clock gateway replay vs the offline reference run.

    The gateway consumes ``timeline`` through the async loop (with
    ``workers`` sharding its serving measurement); the reference is a
    plain serial ``FleetController.run`` over the identical timeline.
    Every interval's placement and simulation fingerprints must match
    exactly or :class:`~repro.ops.controller.OpsIdentityError` is
    raised.  Returns ``(gateway_report, offline_report)``.
    """
    timeline = tuple(timeline)
    gateway_report = replay_gateway(
        services,
        timeline,
        horizon_s,
        measure_s=measure_s,
        warmup_s=warmup_s,
        sim_seed=sim_seed,
        deadline_budget_s=deadline_budget_s,
        workers=workers,
        **controller_kwargs,
    )
    offline = FleetController(**controller_kwargs).run(
        services,
        timeline,
        horizon_s,
        measure_s=measure_s,
        warmup_s=warmup_s,
        sim_seed=sim_seed,
    )
    assert_reports_identical(gateway_report, offline)
    return gateway_report, offline
