"""The gateway's write-ahead journal of intake events.

Every event the gateway admits is appended to an on-disk segment file
*before* it enters the intake queue — one canonical wire line
(:func:`~repro.serve.sources.encode_event`) per event, so a journal is
also a valid recorded session.  After a crash, replaying the journal
through the virtual-clock gateway reproduces the lost session
bit-identically (:func:`replay_journal`): the wire codec round-trips
exactly and the virtual clock regroups instants exactly like the
offline run loop.

Durability is a policy knob, not a promise baked in:

- ``fsync="always"`` — fsync after every append (maximum durability,
  one syscall per event);
- ``fsync="interval"`` — fsync every ``fsync_every`` appends (the
  default: bounded loss window, amortized cost);
- ``fsync="close"`` — fsync only on rotation and close (OS page cache
  decides; cheapest).

Segments rotate every ``rotate_every`` appends (``segment-000000.jsonl``,
``segment-000001.jsonl``, ...), so recovery after a torn write loses at
most the tail of the *last* segment — :func:`read_journal` tolerates a
partial final line (the expected crash artifact, reported as
``truncated_tail``) and counts any interior undecodable line as
corruption instead of silently absorbing it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any, ClassVar, Optional

from repro.ops.events import OpsEvent
from repro.serve.sources import decode_event, encode_event

if TYPE_CHECKING:
    from repro.ops.report import OpsReport

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".jsonl"

FSYNC_POLICIES = ("always", "interval", "close")


def segment_name(index: int) -> str:
    return f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}"


def journal_segments(dir_path: str | Path) -> list[Path]:
    """All segment files under ``dir_path``, in append order."""
    root = Path(dir_path)
    if not root.is_dir():
        return []
    return sorted(
        p
        for p in root.iterdir()
        if p.name.startswith(SEGMENT_PREFIX)
        and p.name.endswith(SEGMENT_SUFFIX)
    )


@dataclass
class JournalStats:
    """Write-side counters, surfaced through the gateway's ``/health``."""

    appends: int = 0
    fsyncs: int = 0
    rotations: int = 0
    segments: int = 0

    #: the one spec driving both the ``/health`` document and the
    #: ``journal_*`` metric families (see repro.obs.registry.attach)
    OBS_FIELDS: ClassVar[dict[str, str]] = {
        "appends": "counter",
        "fsyncs": "counter",
        "rotations": "counter",
        "segments": "gauge",
    }

    def to_doc(self) -> dict[str, int]:
        return {name: int(getattr(self, name)) for name in self.OBS_FIELDS}


class Journal:
    """Append-only, segment-rotated write-ahead log of intake events."""

    def __init__(
        self,
        dir_path: str | Path,
        *,
        fsync: str = "interval",
        fsync_every: int = 64,
        rotate_every: int = 10_000,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; one of {FSYNC_POLICIES}"
            )
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        if rotate_every < 1:
            raise ValueError("rotate_every must be >= 1")
        self.dir = Path(dir_path)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.fsync_every = fsync_every
        self.rotate_every = rotate_every
        existing = journal_segments(self.dir)
        # Appends to an existing journal dir continue the segment
        # numbering — never overwrite what a previous run persisted.
        self._next_index = (
            _segment_index(existing[-1]) + 1 if existing else 0
        )
        self._fh: Optional[IO[str]] = None
        self._lines = 0
        self._since_sync = 0
        self.stats = JournalStats(segments=len(existing))

    @property
    def closed(self) -> bool:
        return self._fh is None and self.stats.appends > 0

    def append(self, event: OpsEvent) -> None:
        """Durably record one event (per the fsync policy) before use."""
        if self._fh is None or self._lines >= self.rotate_every:
            self._open_segment()
        assert self._fh is not None
        self._fh.write(encode_event(event))
        self._fh.write("\n")
        self._lines += 1
        self.stats.appends += 1
        if self.fsync == "always":
            self._sync()
        elif self.fsync == "interval":
            self._since_sync += 1
            if self._since_sync >= self.fsync_every:
                self._sync()

    def flush(self) -> None:
        """Flush and fsync the live segment regardless of policy."""
        if self._fh is not None:
            self._sync()

    def close(self) -> None:
        if self._fh is not None:
            self._sync()
            self._fh.close()
            self._fh = None

    def _sync(self) -> None:
        assert self._fh is not None
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.stats.fsyncs += 1
        self._since_sync = 0

    def _open_segment(self) -> None:
        rotating = self._fh is not None
        if self._fh is not None:
            self._sync()
            self._fh.close()
        path = self.dir / segment_name(self._next_index)
        self._next_index += 1
        self._fh = open(path, "a", encoding="utf-8")
        self._lines = 0
        self._since_sync = 0
        self.stats.segments += 1
        if rotating:
            self.stats.rotations += 1

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _segment_index(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as exc:
        raise ValueError(f"not a journal segment name: {path.name}") from exc


@dataclass
class JournalRecovery:
    """What crash recovery read back — and what it had to tolerate."""

    events: list[OpsEvent]
    segments: int
    #: non-blank lines seen (decoded + skipped + the torn tail)
    lines: int
    #: interior lines that failed to decode (corruption, never silent)
    skipped_lines: int
    #: the final line was partial — the expected torn-write artifact
    truncated_tail: bool

    def to_doc(self) -> dict[str, object]:
        return {
            "events": len(self.events),
            "segments": self.segments,
            "lines": self.lines,
            "skipped_lines": self.skipped_lines,
            "truncated_tail": self.truncated_tail,
        }


def read_journal(dir_path: str | Path) -> JournalRecovery:
    """Read every recoverable event back from a journal directory.

    A partial *final* line (crash mid-append) is dropped and flagged as
    ``truncated_tail``; any other undecodable line is counted in
    ``skipped_lines`` — corruption is surfaced, never absorbed.
    """
    segments = journal_segments(dir_path)
    events: list[OpsEvent] = []
    lines_seen = 0
    skipped = 0
    truncated = False
    for seg_pos, segment in enumerate(segments):
        raw = segment.read_text(encoding="utf-8", errors="replace")
        lines = raw.split("\n")
        for line_pos, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            lines_seen += 1
            final = (
                seg_pos == len(segments) - 1 and line_pos == len(lines) - 1
            )
            try:
                events.append(decode_event(line))
            except ValueError:
                if final:
                    truncated = True
                else:
                    skipped += 1
    return JournalRecovery(
        events=events,
        segments=len(segments),
        lines=lines_seen,
        skipped_lines=skipped,
        truncated_tail=truncated,
    )


def replay_journal(
    dir_path: str | Path,
    services: list[Any],
    horizon_s: float,
    **gateway_kwargs: Any,
) -> tuple["OpsReport", JournalRecovery]:
    """Crash recovery: replay a journal through the virtual-clock gateway.

    Returns the closed report plus what recovery read.  The replay is
    bit-identical to the crashed session's would-have-been report for
    the journaled prefix: the wire codec round-trips exactly and the
    virtual clock groups instants exactly like the offline run loop.
    """
    from repro.serve.gateway import replay_gateway

    recovery = read_journal(dir_path)
    report = replay_gateway(
        services, recovery.events, horizon_s, **gateway_kwargs
    )
    return report, recovery


__all__ = [
    "FSYNC_POLICIES",
    "Journal",
    "JournalRecovery",
    "JournalStats",
    "journal_segments",
    "read_journal",
    "replay_journal",
    "segment_name",
]
