"""Live-serving gateway: the FleetController as an async control plane.

Everything offline in this repo replays pre-merged timelines; this
package is the live half the paper's SIII-F re-planning story implies —
a long-running asyncio loop that consumes events as they surface,
re-plans incrementally under a wall-clock deadline budget, and serves
the :class:`~repro.ops.report.OpsReport` while it grows:

- :mod:`repro.serve.clock` / :mod:`repro.serve.realclock` — scenario
  time behind one interface: a deterministic
  :class:`~repro.serve.clock.VirtualClock` for bit-identical replay and
  a :class:`~repro.serve.realclock.MonotonicClock` for live sessions
  (the only serve module allowed to read the wall clock);
- :mod:`repro.serve.sources` — pluggable event sources (in-memory
  timelines, recorded JSONL sessions, line-delimited JSON streams) and
  the wire codec;
- :mod:`repro.serve.intake` — the ordered intake queue
  (:func:`~repro.ops.events.timeline_key` semantics over a live
  stream);
- :mod:`repro.serve.journal` — the write-ahead journal: admitted
  events are persisted in wire format before use, so a crashed
  session replays bit-identically (:func:`~repro.serve.journal.replay_journal`);
- :mod:`repro.serve.gateway` — the
  :class:`~repro.serve.gateway.ServeGateway` control loop, its deadline
  scheduler, and the replay-identity helpers;
- :mod:`repro.serve.status` — the local HTTP status surface;
- :mod:`repro.serve.driver` — scripted drivers for steering and
  recording live sessions (the S16 flash-crowd demo).

The identity contract: under the virtual clock the gateway's report is
bit-identical to ``FleetController.run`` on the same timeline —
:func:`~repro.serve.gateway.replay_identity_checked` asserts it, the
property suite fuzzes it, and CI runs it fatally on an S12 slice.
"""

from repro.serve.clock import Clock, VirtualClock
from repro.serve.driver import ScriptedDriver, scripted_source
from repro.serve.gateway import (
    GatewayHealth,
    ServeGateway,
    replay_gateway,
    replay_identity_checked,
)
from repro.serve.intake import IntakeItem, IntakeQueue
from repro.serve.journal import (
    Journal,
    JournalRecovery,
    JournalStats,
    journal_segments,
    read_journal,
    replay_journal,
)
from repro.serve.realclock import MonotonicClock
from repro.serve.sources import (
    EVENT_TYPES,
    decode_event,
    encode_event,
    event_from_doc,
    event_to_doc,
    jsonl_source,
    resilient_source,
    stream_source,
    timeline_source,
)
from repro.serve.status import StatusServer

__all__ = [
    "Clock",
    "VirtualClock",
    "MonotonicClock",
    "IntakeItem",
    "IntakeQueue",
    "ServeGateway",
    "GatewayHealth",
    "replay_gateway",
    "replay_identity_checked",
    "StatusServer",
    "ScriptedDriver",
    "scripted_source",
    "EVENT_TYPES",
    "event_to_doc",
    "event_from_doc",
    "encode_event",
    "decode_event",
    "timeline_source",
    "jsonl_source",
    "stream_source",
    "resilient_source",
    "Journal",
    "JournalStats",
    "JournalRecovery",
    "journal_segments",
    "read_journal",
    "replay_journal",
]
