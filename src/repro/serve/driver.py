"""Scripted drivers: steering (and recording) a live gateway session.

A :class:`ScriptedDriver` turns a prepared timeline into a *stream*:
each event is emitted when the session clock reaches its stamp, which
is how the flash-crowd demo (scenario S16) steers a live gateway in
session time.  The driver remembers exactly what it sent, and
:meth:`ScriptedDriver.recorded_jsonl` renders the session in the wire
format — so a live run leaves behind a recording that the virtual-clock
gateway replays bit-identically against the offline controller (the
acceptance check the perf harness's serve suite automates).
"""

from __future__ import annotations

from typing import AsyncIterator, Iterable

from repro.ops.events import OpsEvent, timeline_key
from repro.serve.clock import Clock
from repro.serve.sources import encode_event


async def scripted_source(
    events: Iterable[OpsEvent], clock: Clock
) -> AsyncIterator[OpsEvent]:
    """Emit ``events`` in timeline order as the clock reaches each stamp."""
    for event in sorted(events, key=timeline_key):
        await clock.sleep_until(event.time_s)
        yield event


class ScriptedDriver:
    """Replays a prepared timeline as a live stream and records it."""

    def __init__(self, events: Iterable[OpsEvent]) -> None:
        self.events: tuple[OpsEvent, ...] = tuple(
            sorted(events, key=timeline_key)
        )
        #: what was actually emitted, in emission order
        self.sent: list[OpsEvent] = []

    def source(self, clock: Clock) -> AsyncIterator[OpsEvent]:
        """The event stream a gateway consumes, paced by ``clock``."""
        return self._emit(clock)

    async def _emit(self, clock: Clock) -> AsyncIterator[OpsEvent]:
        for event in self.events:
            await clock.sleep_until(event.time_s)
            self.sent.append(event)
            yield event

    def recorded_jsonl(self) -> list[str]:
        """The emitted session as wire-format lines (one event each)."""
        return [encode_event(event) for event in self.sent]
