"""ParvaGPU (SC 2024) reproduction.

Efficient spatial GPU sharing for large-scale DNN inference: combined
MIG + MPS scheduling via the Segment Configurator / Segment Allocator,
every baseline it was evaluated against, and a simulated multi-A100
substrate with a discrete-event serving simulator.

Quickstart::

    from repro import ParvaGPU, Service, profile_workloads

    profiles = profile_workloads()
    services = [
        Service("vision", "resnet-50", slo_latency_ms=200, request_rate=800),
        Service("nlp", "bert-large", slo_latency_ms=2000, request_rate=120),
    ]
    placement = ParvaGPU(profiles).schedule(services)
    print(placement.num_gpus, "GPUs")
"""

from repro.core import (
    DeploymentManager,
    ParvaGPU,
    Placement,
    Prediction,
    Predictor,
    Segment,
    SegmentAllocator,
    SegmentConfigurator,
    Service,
)
from repro.baselines import (
    Gpulet,
    IGniter,
    InfeasibleScheduleError,
    MigServing,
    all_frameworks,
    make_framework,
)
from repro.gpu import GPU, Cluster
from repro.metrics import external_fragmentation, internal_slack
from repro.profiler import ProfileTable, Profiler, profile_workloads
from repro.scenarios import get_scenario, scaled_scenario, scenario_services
from repro.sim import simulate_placement

__version__ = "1.0.0"

__all__ = [
    "DeploymentManager",
    "ParvaGPU",
    "Placement",
    "Prediction",
    "Predictor",
    "Segment",
    "SegmentAllocator",
    "SegmentConfigurator",
    "Service",
    "Gpulet",
    "IGniter",
    "InfeasibleScheduleError",
    "MigServing",
    "all_frameworks",
    "make_framework",
    "GPU",
    "Cluster",
    "external_fragmentation",
    "internal_slack",
    "ProfileTable",
    "Profiler",
    "profile_workloads",
    "get_scenario",
    "scaled_scenario",
    "scenario_services",
    "simulate_placement",
    "__version__",
]
