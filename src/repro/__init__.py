"""ParvaGPU (SC 2024) reproduction.

Efficient spatial GPU sharing for large-scale DNN inference: combined
MIG + MPS scheduling via the Segment Configurator / Segment Allocator,
every baseline it was evaluated against, and a simulated multi-GPU
substrate with a discrete-event serving simulator.  Scheduling is
formulated over pluggable *partition geometries*: the paper's A100-class
MIG rules (:data:`repro.gpu.mig.MIG_GEOMETRY`) and AMD MI300X XCD
partitioning (:data:`repro.gpu.amd.MI300X_GEOMETRY`) ship in-tree, and
heterogeneous clusters mixing both are scheduled by
:class:`~repro.core.hetero.HeterogeneousParvaGPU`.

Quickstart::

    from repro import ParvaGPU, Service, profile_workloads

    profiles = profile_workloads()
    services = [
        Service("vision", "resnet-50", slo_latency_ms=200, request_rate=800),
        Service("nlp", "bert-large", slo_latency_ms=2000, request_rate=120),
    ]
    placement = ParvaGPU(profiles).schedule(services)
    print(placement.num_gpus, "GPUs")

Retarget the same pipeline at an MI300X fleet::

    from repro import get_geometry

    amd = get_geometry("mi300x")
    placement = ParvaGPU(
        profile_workloads(geometry=amd), geometry=amd
    ).schedule(services)
"""

from repro.core import (
    DeploymentManager,
    GeometryPool,
    HeterogeneousParvaGPU,
    ParvaGPU,
    Placement,
    Prediction,
    Predictor,
    Segment,
    SegmentAllocator,
    SegmentConfigurator,
    Service,
)
from repro.baselines import (
    Gpulet,
    IGniter,
    InfeasibleScheduleError,
    MigServing,
    all_frameworks,
    make_framework,
)
from repro.gpu import (
    GPU,
    Cluster,
    MI300X_GEOMETRY,
    MIG_GEOMETRY,
    PartitionGeometry,
    available_geometries,
    get_geometry,
)
from repro.metrics import external_fragmentation, internal_slack
from repro.ops import (
    FleetController,
    OpsReport,
    merge_timeline,
    run_identity_checked,
)
from repro.profiler import ProfileTable, Profiler, profile_workloads
from repro.scenarios import (
    get_scenario,
    ops_run,
    scaled_scenario,
    scenario_services,
)
from repro.sim import simulate_placement, simulate_placement_fast

__version__ = "1.0.0"

__all__ = [
    "DeploymentManager",
    "ParvaGPU",
    "Placement",
    "Prediction",
    "Predictor",
    "Segment",
    "SegmentAllocator",
    "SegmentConfigurator",
    "Service",
    "Gpulet",
    "IGniter",
    "InfeasibleScheduleError",
    "MigServing",
    "all_frameworks",
    "make_framework",
    "GPU",
    "Cluster",
    "MI300X_GEOMETRY",
    "MIG_GEOMETRY",
    "PartitionGeometry",
    "available_geometries",
    "get_geometry",
    "GeometryPool",
    "HeterogeneousParvaGPU",
    "external_fragmentation",
    "internal_slack",
    "ProfileTable",
    "Profiler",
    "profile_workloads",
    "get_scenario",
    "scaled_scenario",
    "scenario_services",
    "simulate_placement",
    "simulate_placement_fast",
    "FleetController",
    "OpsReport",
    "merge_timeline",
    "run_identity_checked",
    "ops_run",
    "__version__",
]
