"""Multi-seed replication statistics.

Single simulation runs carry seed-dependent noise (Poisson arrivals,
batch-boundary effects).  Publication-grade claims — "gpulet violates its
SLO in S2", "ParvaGPU's slack is below X%" — should hold across seeds;
these helpers replicate a sim-backed measurement over seeds and report
mean, spread, and a bootstrap confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class SeriesStats:
    """Summary of one replicated measurement."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float  #: bootstrap CI lower bound on the mean
    ci_high: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.3f} ± {self.std:.3f} "
            f"[{self.ci_low:.3f}, {self.ci_high:.3f}] (n={self.n})"
        )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval on the mean."""
    if not values:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    arr = np.asarray(values, dtype=np.float64)
    if len(arr) == 1:
        return float(arr[0]), float(arr[0])
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(arr), size=(resamples, len(arr)))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def summarize(values: Sequence[float], confidence: float = 0.95) -> SeriesStats:
    """Full summary of a replicated series."""
    if not values:
        raise ValueError("need at least one value")
    arr = np.asarray(values, dtype=np.float64)
    lo, hi = bootstrap_ci(values, confidence=confidence)
    return SeriesStats(
        n=len(arr),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_low=lo,
        ci_high=hi,
    )


def replicate_compliance(
    run: Callable[[int], float], seeds: Sequence[int] = tuple(range(5))
) -> SeriesStats:
    """Replicate a ``seed -> compliance`` measurement across seeds.

    ``run`` typically wraps :func:`repro.sim.simulate_placement`; see
    ``tests/analysis/test_stats.py`` for the canonical usage.
    """
    return summarize([run(seed) for seed in seeds])
