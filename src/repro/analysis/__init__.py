"""Analysis tooling: replication statistics and static analysis.

- :mod:`repro.analysis.stats` — multi-seed replication statistics for
  experiment claims.
- :mod:`repro.analysis.lint` — repro-lint, the determinism &
  identity-contract static analyzer (``python -m repro.analysis.lint``).
"""

from repro.analysis.stats import (
    SeriesStats,
    bootstrap_ci,
    replicate_compliance,
    summarize,
)

__all__ = ["SeriesStats", "bootstrap_ci", "replicate_compliance", "summarize"]
