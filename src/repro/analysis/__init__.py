"""Statistical analysis helpers for multi-seed experiment replication."""

from repro.analysis.stats import (
    SeriesStats,
    bootstrap_ci,
    replicate_compliance,
    summarize,
)

__all__ = ["SeriesStats", "bootstrap_ci", "replicate_compliance", "summarize"]
