"""repro-lint: the determinism & identity-contract static analyzer.

Run it over the repo with::

    PYTHONPATH=src python -m repro.analysis.lint src tests benchmarks

See :mod:`repro.analysis.lint.rules` for the rule catalog (D001-D006),
:mod:`repro.analysis.lint.engine` for the per-line escape hatch, and
:mod:`repro.analysis.lint.baseline` for the grandfathered-findings
contract.  ``docs/determinism.md`` documents the invariants these rules
exist to protect.
"""

from repro.analysis.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.analysis.lint.config import LintConfig, load_config
from repro.analysis.lint.engine import lint_paths, lint_source
from repro.analysis.lint.rules import RULES, Finding

__all__ = [
    "BaselineEntry",
    "Finding",
    "LintConfig",
    "RULES",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_config",
]
