"""Grandfathered-findings baseline for repro-lint.

The baseline exists so the linter can be adopted (or a rule tightened)
without a big-bang cleanup: pre-existing findings are listed in a
committed file and stop failing the build, while *new* findings still
do.  The contract is strict in both directions:

- every entry must carry a written justification (the line-by-line
  review happens in the diff that adds it);
- an entry whose finding no longer occurs is *stale* and fails the run,
  so the baseline can only shrink silently, never drift.

Entry format (one finding per line, ``#`` comments allowed)::

    D002 | src/repro/foo.py | a1b2c3d4e5f6 | why this is grandfathered

The third field is a 12-hex digest of the offending source line
(:func:`snippet_digest`), so entries survive unrelated line-number
churn but go stale when the flagged code itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.rules import RULES, Finding


def snippet_digest(snippet: str) -> str:
    """Stable 12-hex digest of a stripped source line."""
    return hashlib.sha256(snippet.strip().encode()).hexdigest()[:12]


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding with its justification."""

    code: str
    relpath: str
    digest: str
    justification: str
    line: int  #: line number *in the baseline file*, for error messages

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.code, self.relpath, self.digest)


def finding_key(finding: Finding, config: LintConfig) -> tuple[str, str, str]:
    return (
        finding.code,
        config.relpath(finding.path),
        snippet_digest(finding.snippet),
    )


def format_entry(finding: Finding, config: LintConfig, justification: str) -> str:
    """Render ``finding`` as a baseline line (for `--write-baseline`)."""
    code, relpath, digest = finding_key(finding, config)
    return f"{code} | {relpath} | {digest} | {justification}"


def load_baseline(path: Path) -> tuple[list[BaselineEntry], list[str]]:
    """Parse the baseline file; malformed/unjustified lines are errors.

    A missing file is an empty baseline — the healthy steady state.
    """
    entries: list[BaselineEntry] = []
    errors: list[str] = []
    if not path.is_file():
        return entries, errors
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = [p.strip() for p in stripped.split("|", 3)]
        if len(parts) != 4:
            errors.append(
                f"{path}:{lineno}: expected "
                "`CODE | path | digest | justification`"
            )
            continue
        code, relpath, digest, justification = parts
        if code not in RULES:
            errors.append(f"{path}:{lineno}: unknown rule code {code!r}")
            continue
        if not justification:
            errors.append(
                f"{path}:{lineno}: baseline entry for {relpath} has no "
                "justification; every grandfathered finding must say why"
            )
            continue
        entries.append(BaselineEntry(code, relpath, digest, justification, lineno))
    return entries, errors


def apply_baseline(
    findings: list[Finding],
    entries: list[BaselineEntry],
    config: LintConfig,
) -> tuple[list[Finding], list[BaselineEntry]]:
    """Split findings into (new, ...) and detect stale baseline entries.

    Returns ``(new_findings, stale_entries)``.  A baseline entry matches
    at most the findings sharing its (code, path, snippet-digest) key;
    an entry matching nothing is stale.
    """
    by_key: dict[tuple[str, str, str], BaselineEntry] = {}
    for entry in entries:
        by_key[entry.key] = entry
    matched: set[tuple[str, str, str]] = set()
    new: list[Finding] = []
    for finding in findings:
        key = finding_key(finding, config)
        if key in by_key:
            matched.add(key)
        else:
            new.append(finding)
    stale = [e for e in entries if e.key not in matched]
    return new, stale
