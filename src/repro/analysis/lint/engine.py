"""File walking, disable comments, and finding assembly for repro-lint.

The escape hatch is a same-line comment that *must* carry a reason::

    t0 = time.perf_counter()  # repro-lint: disable=D002 (fig9 measures this)

A disable comment without a parenthesised, non-empty reason is itself a
finding (``D000``): the contract is that every suppressed hazard has a
written justification next to it, reviewable in the diff that adds it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.rules import RULES, Finding, check

#: Matches the full disable comment: one or more comma-separated rule
#: codes, then the justification in parentheses.  The reason group is
#: optional in the regex so reason-less disables can be reported as D000.
_MARKER_RE = re.compile(r"#\s*repro-lint:")
_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=\s*(?P<codes>[A-Za-z0-9_,\s]*?)"
    r"\s*(?:\((?P<reason>.*)\))?\s*$"
)

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


@dataclass(frozen=True)
class Disable:
    """A parsed per-line disable comment (codes plus its justification)."""

    line: int
    codes: frozenset[str]
    reason: str


def parse_disables(source: str, path: Path) -> tuple[dict[int, Disable], list[Finding]]:
    """Extract per-line disables; malformed ones become D000 findings."""
    disables: dict[int, Disable] = {}
    findings: list[Finding] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        if _MARKER_RE.search(line) is None:
            continue
        match = _DISABLE_RE.search(line)
        if match is None:
            findings.append(
                Finding(path, lineno, 1, "D000",
                        "unrecognized repro-lint comment; expected "
                        "`disable=DXXX (reason)` after the marker")
            )
            continue
        codes = frozenset(
            c.strip().upper() for c in match.group("codes").split(",") if c.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not codes or any(code not in RULES for code in codes):
            findings.append(
                Finding(path, lineno, 1, "D000",
                        f"disable comment names unknown rule(s): "
                        f"{sorted(codes) or '(none)'}")
            )
            continue
        if not reason:
            findings.append(
                Finding(path, lineno, 1, "D000",
                        "disable comment is missing its justification; "
                        "write `disable=DXXX (why this is safe)`")
            )
            continue
        disables[lineno] = Disable(lineno, codes, reason)
    return disables, findings


def lint_source(source: str, path: Path, config: LintConfig) -> list[Finding]:
    """Lint one module's source text and return its surviving findings."""
    disables, findings = parse_disables(source, path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        findings.append(
            Finding(path, exc.lineno or 1, (exc.offset or 0) + 1, "E001",
                    f"could not parse: {exc.msg}")
        )
        return findings
    raw = check(
        tree,
        path,
        wallclock_allowed=config.wallclock_allowed(path),
        identity_module=config.is_identity_module(path),
    )
    lines = source.splitlines()
    for finding in raw:
        disable = disables.get(finding.line)
        if disable is not None and finding.code in disable.codes:
            continue
        findings.append(finding)
    for finding in findings:
        if 1 <= finding.line <= len(lines):
            finding.snippet = lines[finding.line - 1].strip()
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def iter_python_files(paths: Sequence[Path], config: LintConfig) -> Iterator[Path]:
    """Yield the .py files under ``paths`` in deterministic sorted order."""
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS or part.startswith(".")
                           for part in p.parts)
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or config.is_excluded(candidate):
                continue
            seen.add(resolved)
            yield candidate


def lint_paths(paths: Sequence[Path], config: LintConfig) -> list[Finding]:
    """Lint every Python file under ``paths``."""
    findings: list[Finding] = []
    for path in iter_python_files(paths, config):
        findings.extend(lint_source(path.read_text(), path, config))
    return findings
