"""Command-line entry point: ``python -m repro.analysis.lint [paths...]``.

Exit status is 0 when the tree is clean (every finding either fixed,
disabled with a reason, or justified in the committed baseline) and 1
when there are new findings, malformed disables, unparseable files,
baseline format errors, or stale baseline entries.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.lint.baseline import (
    apply_baseline,
    format_entry,
    load_baseline,
)
from repro.analysis.lint.config import LintConfig, load_config
from repro.analysis.lint.engine import lint_paths
from repro.analysis.lint.rules import RULES


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Determinism & identity-contract linter for this repo.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repo root (default: walk up to the dir with pyproject.toml)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file (default: [tool.repro-lint] baseline setting)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the committed baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="print new findings as baseline lines (justifications must "
             "then be written by hand — TODO markers are emitted)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0

    config: LintConfig = load_config(root=args.root)
    findings = lint_paths([Path(p) for p in args.paths], config)

    errors: list[str] = []
    stale_msgs: list[str] = []
    if args.no_baseline:
        new = findings
    else:
        baseline_path = args.baseline or config.baseline_path()
        entries, errors = load_baseline(Path(baseline_path))
        new, stale = apply_baseline(findings, entries, config)
        stale_msgs = [
            f"{baseline_path}:{e.line}: stale baseline entry "
            f"({e.code} in {e.relpath}): the finding no longer occurs — "
            "delete the entry"
            for e in stale
        ]

    if args.write_baseline:
        for finding in new:
            print(format_entry(finding, config, "TODO: justify or fix"))
        return 0 if not new else 1

    for finding in new:
        print(finding.render(config.relpath(finding.path)))
    for message in errors + stale_msgs:
        print(message)

    failed = bool(new or errors or stale_msgs)
    total = len(new)
    if failed:
        print(
            f"repro-lint: {total} finding(s), {len(errors)} baseline "
            f"error(s), {len(stale_msgs)} stale baseline entr(y/ies)"
        )
    else:
        print("repro-lint: clean")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
