"""Configuration for ``repro-lint``.

The defaults below encode this repository's determinism contract; a
``[tool.repro-lint]`` table in ``pyproject.toml`` can override any of
them so the linter stays usable on forks with different layouts.  Paths
in the config are matched as POSIX-style globs against the *repo
relative* path of each linted file (``src/repro/sim/engine.py``), so the
config is independent of the working directory the linter runs from.
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

#: Files where wall-clock reads (D002) are legitimate: the wall-clock
#: assertion gate itself, the scheduling-delay stopwatch (fig9's measured
#: quantity), the obs plane's single wall tap (every other obs module
#: takes durations as caller-observed values), the perf harness, and CLI
#: end-to-end timing.
DEFAULT_WALLCLOCK_ALLOW: tuple[str, ...] = (
    "src/repro/experiments/wallclock.py",
    "src/repro/metrics/delay.py",
    "src/repro/obs/wallclock.py",
    "src/repro/cli.py",
    "benchmarks/perf/*",
)

#: Modules whose outputs feed fingerprints (placements, simulation
#: reports, ops timelines) or order-sensitive float accumulation.  D003
#: (unordered iteration) and D004 (unordered float accumulation) only
#: fire here; everywhere else unordered iteration is merely unidiomatic.
DEFAULT_IDENTITY_MODULES: tuple[str, ...] = (
    "src/repro/core/*",
    "src/repro/sim/*",
    "src/repro/ops/*",
    "src/repro/gpu/*",
    "src/repro/metrics/*",
    "src/repro/baselines/*",
    "src/repro/scenarios/*",
    "src/repro/profiler/*",
    "src/repro/models/*",
    "src/repro/parallel.py",
    "src/repro/serve/*",
    "src/repro/resilience/*",
    "src/repro/obs/*",
)

#: Default location of the grandfathered-findings baseline.
DEFAULT_BASELINE = "src/repro/analysis/lint/baseline.txt"


@dataclass(frozen=True)
class LintConfig:
    """Resolved repro-lint settings."""

    root: Path
    wallclock_allow: tuple[str, ...] = DEFAULT_WALLCLOCK_ALLOW
    identity_modules: tuple[str, ...] = DEFAULT_IDENTITY_MODULES
    baseline: str = DEFAULT_BASELINE
    exclude: tuple[str, ...] = field(default=())

    def relpath(self, path: Path) -> str:
        """``path`` relative to the repo root, with ``/`` separators."""
        try:
            rel = Path(path).resolve().relative_to(self.root.resolve())
        except ValueError:
            rel = Path(path)
        return rel.as_posix()

    def _matches(self, path: Path, globs: Sequence[str]) -> bool:
        rel = self.relpath(path)
        return any(fnmatch.fnmatch(rel, g) for g in globs)

    def wallclock_allowed(self, path: Path) -> bool:
        """True if D002 (wall-clock reads) is allowed in ``path``."""
        return self._matches(path, self.wallclock_allow)

    def is_identity_module(self, path: Path) -> bool:
        """True if ``path`` feeds fingerprints (enables D003/D004)."""
        return self._matches(path, self.identity_modules)

    def is_excluded(self, path: Path) -> bool:
        return self._matches(path, self.exclude)

    def baseline_path(self) -> Path:
        return self.root / self.baseline


def find_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory holding ``pyproject.toml``.

    Falls back to ``start`` itself (or its parent for files) when no
    project file is found, so the linter still runs on loose trees.
    """
    start = start.resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def load_config(root: Path | None = None, start: Path | None = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``pyproject.toml`` overrides.

    ``root`` pins the repo root explicitly; otherwise it is discovered
    by walking up from ``start`` (default: the current directory).
    """
    resolved = Path(root) if root is not None else find_root(start or Path.cwd())
    table: dict[str, object] = {}
    pyproject = resolved / "pyproject.toml"
    if pyproject.is_file():
        with open(pyproject, "rb") as fh:
            data = tomllib.load(fh)
        tool = data.get("tool", {})
        if isinstance(tool, dict):
            section = tool.get("repro-lint", {})
            if isinstance(section, dict):
                table = section

    def _strings(key: str, default: tuple[str, ...]) -> tuple[str, ...]:
        value = table.get(key)
        if value is None:
            return default
        if not isinstance(value, list) or not all(
            isinstance(v, str) for v in value
        ):
            raise TypeError(f"[tool.repro-lint] {key} must be a list of strings")
        return tuple(value)

    baseline = table.get("baseline", DEFAULT_BASELINE)
    if not isinstance(baseline, str):
        raise TypeError("[tool.repro-lint] baseline must be a string")
    return LintConfig(
        root=resolved,
        wallclock_allow=_strings("wallclock-allow", DEFAULT_WALLCLOCK_ALLOW),
        identity_modules=_strings("identity-modules", DEFAULT_IDENTITY_MODULES),
        baseline=baseline,
        exclude=_strings("exclude", ()),
    )
