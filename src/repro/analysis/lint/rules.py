"""The repro-lint rule set: this repository's determinism contract as AST checks.

Every fast path in the repo is bit-identical to a naive reference, and
every timeline replay is bit-identical across processes and hash seeds.
Those identities are enforced dynamically (fingerprint replays, property
tests), but dynamic checks only catch a hazard on inputs that happen to
exercise it.  The rules here reject the *source constructs* that break
determinism, so a violation is caught on every run of the linter rather
than probabilistically:

====  ==============================================================
D001  Unseeded randomness: ``random.*`` module functions (global RNG
      state), ``random.Random()`` / ``numpy.random.default_rng()``
      without a seed, ``random.SystemRandom``, and the legacy
      ``numpy.random.*`` module API.
D002  Wall-clock reads (``time.time``, ``time.perf_counter``,
      ``datetime.now`` ...) outside the configured allowlist.
D003  Iterating a ``set``/``frozenset`` (literal, comprehension, or
      constructor call) in an identity-checked module without a
      ``sorted(...)`` wrapper: iteration order depends on
      ``PYTHONHASHSEED``, so anything it feeds can drift per process.
D004  Order-sensitive float accumulation (``sum()`` or ``+=`` loops)
      over an unordered iterable in an identity-checked module: float
      addition is non-associative, so an unordered reduction is not
      reproducible even within one process.
D005  Un-picklable shard payloads: lambdas or locally-defined
      functions handed to executor/pool submission APIs
      (``ShardPool.run``, ``submit``, ``map`` ...).
D006  Fast-path parity: a function accepting a ``fast_path`` /
      ``indexed`` / ``workers`` switch must actually branch on it —
      otherwise the naive/serial reference path the identity checks
      replay against does not exist.
D007  Swallowed exceptions: a bare ``except:`` or overbroad
      ``except Exception/BaseException`` in an identity-checked module
      whose handler neither re-raises nor increments a counter.  A
      silently absorbed error is how a control plane diverges from its
      replay without any fingerprint noticing; degraded paths must
      either propagate or be *counted* into a health surface.
D008  Bare dict counters: ``+=`` on a subscript of a ``*counter*`` /
      ``*metric*``-named mapping in an identity-checked module.
      Ad-hoc metric stores are exactly how recording leaks into
      fingerprinted state (and how three snapshot formats drift
      apart); recording must go through the obs facade
      (:class:`repro.obs.ObsHub` counters, or a plain-attribute stats
      object attached via ``registry.attach``).
====  ==============================================================

The checks are deliberately syntactic (no type inference): they flag
direct constructs only, e.g. ``for x in set(...)`` but not ``s = set();
for x in s``.  That keeps them zero-false-negative on the idioms the
repo actually uses while staying cheap enough to run on every commit;
the dynamic identity checks remain the backstop for aliased values.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: Rule code -> one-line description (the ``--list-rules`` catalog).
RULES: dict[str, str] = {
    "D000": "malformed or reason-less disable comment (a reason is required)",
    "D001": "unseeded randomness (global RNG state or seed-less constructor)",
    "D002": "wall-clock read outside the configured allowlist",
    "D003": "unordered set iteration in an identity-checked module",
    "D004": "order-sensitive float accumulation over an unordered iterable",
    "D005": "lambda/local function passed to a process-pool submission",
    "D006": "fast-path switch accepted but never used (no reference path)",
    "D007": "broad exception handler that neither re-raises nor counts",
    "D008": "bare dict counter mutation outside the obs facade",
    "E001": "file could not be parsed",
}

#: ``random`` module-level functions that mutate/read the hidden global RNG.
_RANDOM_MODULE_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "getrandbits", "randbytes",
        "choice", "choices", "sample", "shuffle", "uniform", "triangular",
        "betavariate", "binomialvariate", "expovariate", "gammavariate",
        "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "seed",
    }
)

#: ``numpy.random`` names that are part of the Generator API and fine to
#: reference (construction is checked separately for missing seeds).
_NUMPY_GENERATOR_API = frozenset(
    {
        "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    }
)

#: Fully-qualified wall-clock reads (D002).
_WALLCLOCK_NAMES = frozenset(
    {
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "time.localtime", "time.gmtime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Call names that consume an iterable order-insensitively, so an
#: unordered argument is harmless.
_ORDER_INSENSITIVE_SINKS = frozenset(
    {"sorted", "min", "max", "len", "any", "all", "set", "frozenset",
     "sum", "math.fsum"}
)

#: Call names that preserve their argument's iteration order (so an
#: unordered argument leaks hash order into the result).
_ORDER_PRESERVING_SINKS = frozenset(
    {"list", "tuple", "iter", "enumerate", "reversed", "itertools.chain"}
)

#: Executor/pool methods whose callable arguments cross a pickle boundary.
_SUBMISSION_ATTRS = frozenset(
    {"submit", "map", "apply_async", "starmap", "imap", "imap_unordered"}
)

#: Parameter names that switch between an optimized path and its naive
#: reference (D006).
_FASTPATH_PARAMS = frozenset({"fast_path", "indexed", "workers"})

#: Exception classes considered overbroad in a handler (D007): catching
#: these absorbs *any* failure, including the ones the identity
#: contract needs to surface.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

#: Subscript base names that look like hand-rolled metric stores (D008):
#: incrementing into one of these bypasses the obs facade.
_METRIC_STORE_RE = re.compile(r"counter|metric", re.IGNORECASE)


@dataclass
class Finding:
    """One rule violation at a source location."""

    path: Path
    line: int
    col: int
    code: str
    message: str
    #: The stripped source line, filled in by the engine (used for the
    #: baseline key so entries survive unrelated line-number churn).
    snippet: str = field(default="")

    def render(self, relpath: str) -> str:
        return f"{relpath}:{self.line}:{self.col}: {self.code} {self.message}"


class _Scope:
    """Per-function bookkeeping for D005 (locally-defined callables)."""

    def __init__(self) -> None:
        self.local_funcs: set[str] = set()


class DeterminismVisitor(ast.NodeVisitor):
    """Single-pass visitor producing findings for rules D001-D006."""

    def __init__(self, path: Path, *, wallclock_allowed: bool,
                 identity_module: bool) -> None:
        self.path = path
        self.wallclock_allowed = wallclock_allowed
        self.identity_module = identity_module
        self.findings: list[Finding] = []
        #: import alias -> canonical dotted module path
        self._modules: dict[str, str] = {}
        #: from-imported name -> canonical dotted origin
        self._names: dict[str, str] = {}
        self._scopes: list[_Scope] = []
        #: node ids whose unordered-ness has been sanctioned or reported
        self._handled: set[int] = set()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    def _resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, if statically known.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` given ``import numpy as np``; local
        variables resolve to ``None``.
        """
        if isinstance(node, ast.Name):
            if node.id in self._names:
                return self._names[node.id]
            if node.id in self._modules:
                return self._modules[node.id]
            return None
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def _call_name(self, node: ast.Call) -> Optional[str]:
        """Resolved dotted name of a call target, or the bare builtin name."""
        resolved = self._resolve(node.func)
        if resolved is not None:
            return resolved
        if isinstance(node.func, ast.Name):
            return node.func.id
        return None

    def _unordered_reason(self, node: ast.AST) -> Optional[str]:
        """Why ``node`` evaluates to an unordered iterable, or None."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            name = self._call_name(node)
            if name in ("set", "frozenset"):
                return f"a {name}() call"
        return None

    def _first_unordered_source(self, node: ast.AST) -> Optional[str]:
        """Unordered-ness of ``node`` or of a comprehension's source."""
        reason = self._unordered_reason(node)
        if reason is not None:
            return reason
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            return self._unordered_reason(node.generators[0].iter)
        return None

    @staticmethod
    def _has_float_accumulation(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.AugAssign) and isinstance(
                    sub.op, (ast.Add, ast.Sub)
                ):
                    return True
        return False

    @staticmethod
    def _is_signature_only(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """True for stubs: docstring plus ``pass`` / ``...`` / ``raise``."""
        for stmt in node.body:
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or bare `...`
            if isinstance(stmt, (ast.Pass, ast.Raise)):
                continue
            return False
        return True

    # ------------------------------------------------------------------ #
    # imports
    # ------------------------------------------------------------------ #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._modules[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname is None and "." in alias.name:
                # `import concurrent.futures` binds `concurrent`; record the
                # full path too so attribute chains resolve canonically.
                self._modules[alias.name.split(".")[0]] = alias.name.split(".")[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never alias stdlib RNG/clock modules
        for alias in node.names:
            self._names[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    # ------------------------------------------------------------------ #
    # D001 / D002 / D005 and unordered sinks (calls)
    # ------------------------------------------------------------------ #

    def visit_Call(self, node: ast.Call) -> None:
        name = self._call_name(node)
        if name is not None:
            self._check_randomness(node, name)
            self._check_unordered_sink(node, name)
        self._check_submission(node)
        self.generic_visit(node)

    def _check_randomness(self, node: ast.Call, name: str) -> None:
        if name == "random.Random":
            if not node.args and not node.keywords:
                self._add(node, "D001",
                          "random.Random() without a seed argument")
        elif name == "random.SystemRandom":
            self._add(node, "D001",
                      "random.SystemRandom is non-deterministic by design")
        elif name.startswith("random."):
            func = name.split(".", 1)[1]
            if func in _RANDOM_MODULE_FUNCS:
                self._add(
                    node, "D001",
                    f"random.{func}() uses the global RNG; thread an "
                    "explicit random.Random(seed) instead",
                )
        elif name.startswith("numpy.random."):
            func = name.removeprefix("numpy.random.")
            if func == "default_rng":
                if not node.args and not node.keywords:
                    self._add(node, "D001",
                              "numpy.random.default_rng() without a seed")
            elif func == "RandomState":
                if not node.args and not node.keywords:
                    self._add(node, "D001",
                              "numpy.random.RandomState() without a seed")
            elif "." not in func and func not in _NUMPY_GENERATOR_API:
                self._add(
                    node, "D001",
                    f"legacy numpy.random.{func}() uses global RNG state; "
                    "use numpy.random.default_rng(seed)",
                )

    def _check_unordered_sink(self, node: ast.Call, name: str) -> None:
        if name in _ORDER_INSENSITIVE_SINKS:
            for arg in node.args:
                self._handled.add(id(arg))
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    self._handled.add(id(arg.generators[0].iter))
            if name == "sum" and self.identity_module and node.args:
                reason = self._first_unordered_source(node.args[0])
                if reason is not None:
                    self._add(
                        node, "D004",
                        f"sum() over {reason}: float addition is "
                        "order-sensitive and set order follows the hash "
                        "seed; sort the operands first",
                    )
        elif name in _ORDER_PRESERVING_SINKS and self.identity_module:
            for arg in node.args:
                reason = self._unordered_reason(arg)
                if reason is not None:
                    self._handled.add(id(arg))
                    self._add(
                        node, "D003",
                        f"{name}() materializes {reason} in hash order; "
                        "wrap it in sorted(...)",
                    )

    def _check_submission(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = ast.unparse(func.value).lower()
        is_submission = func.attr in _SUBMISSION_ATTRS or (
            func.attr == "run" and "pool" in receiver
        )
        if not is_submission:
            return
        args = list(node.args) + [kw.value for kw in node.keywords]
        for arg in args:
            if isinstance(arg, ast.Lambda):
                self._add(
                    node, "D005",
                    f"lambda passed to {receiver}.{func.attr}(): lambdas "
                    "do not pickle across process boundaries",
                )
            elif isinstance(arg, ast.Name) and any(
                arg.id in scope.local_funcs for scope in self._scopes
            ):
                self._add(
                    node, "D005",
                    f"locally-defined function '{arg.id}' passed to "
                    f"{receiver}.{func.attr}(): nested functions do not "
                    "pickle; hoist it to module level",
                )

    # ------------------------------------------------------------------ #
    # D002 (wall-clock references)
    # ------------------------------------------------------------------ #

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._check_wallclock(node)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._check_wallclock(node)

    def _check_wallclock(self, node: ast.AST) -> None:
        if self.wallclock_allowed:
            return
        resolved = self._resolve(node)
        if resolved in _WALLCLOCK_NAMES:
            self._add(
                node, "D002",
                f"wall-clock read {resolved} outside the allowlist; "
                "simulated paths must take time from the event clock",
            )

    # ------------------------------------------------------------------ #
    # D003 / D004 (unordered iteration and accumulation)
    # ------------------------------------------------------------------ #

    def visit_For(self, node: ast.For) -> None:
        if self.identity_module and id(node.iter) not in self._handled:
            reason = self._unordered_reason(node.iter)
            if reason is not None:
                self._handled.add(id(node.iter))
                if self._has_float_accumulation(node.body):
                    self._add(
                        node, "D004",
                        f"accumulating over {reason}: iteration order "
                        "follows the hash seed, so the float result is "
                        "not reproducible; iterate sorted(...) instead",
                    )
                else:
                    self._add(
                        node, "D003",
                        f"iterating {reason}: order follows the hash "
                        "seed; wrap it in sorted(...)",
                    )
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        if not self.identity_module:
            return
        for gen in node.generators:  # type: ignore[attr-defined]
            if id(gen.iter) in self._handled:
                continue
            reason = self._unordered_reason(gen.iter)
            if reason is not None:
                self._handled.add(id(gen.iter))
                self._add(
                    node, "D003",
                    f"comprehension over {reason}: order follows the "
                    "hash seed; wrap the source in sorted(...)",
                )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        if id(node) not in self._handled:
            self._check_comprehension(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        if id(node) not in self._handled:
            self._check_comprehension(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    # SetComp sources are order-insensitive (the result is a set), so no
    # comprehension check there; consumption of the set itself is flagged.

    # ------------------------------------------------------------------ #
    # D008 (bare dict counters outside the obs facade)
    # ------------------------------------------------------------------ #

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.identity_module and isinstance(node.target, ast.Subscript):
            base = node.target.value
            name: Optional[str] = None
            if isinstance(base, ast.Attribute):
                name = base.attr
            elif isinstance(base, ast.Name):
                name = base.id
            if name is not None and _METRIC_STORE_RE.search(name):
                self._add(
                    node, "D008",
                    f"bare dict counter '{name}[...]' in an "
                    "identity-checked module: record through the obs "
                    "facade (an ObsHub counter, or a plain-attribute "
                    "stats object attached via registry.attach) so "
                    "recording never touches fingerprinted state",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    # D007 (swallowed exceptions)
    # ------------------------------------------------------------------ #

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.identity_module and self._is_broad_handler(node.type):
            acknowledged = any(
                isinstance(inner, (ast.Raise, ast.AugAssign))
                for stmt in node.body
                for inner in ast.walk(stmt)
            )
            if not acknowledged:
                label = (
                    "bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                self._add(
                    node, "D007",
                    f"{label} swallows errors silently: re-raise, narrow "
                    "the type, or count the failure into a health counter",
                )
        self.generic_visit(node)

    def _is_broad_handler(self, type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True  # bare except
        candidates = (
            list(type_node.elts)
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        for candidate in candidates:
            name = self._resolve(candidate)
            if name is None and isinstance(candidate, ast.Name):
                name = candidate.id
            if name in _BROAD_EXCEPTIONS:
                return True
        return False

    # ------------------------------------------------------------------ #
    # D006 and scope tracking
    # ------------------------------------------------------------------ #

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if self._scopes:
            self._scopes[-1].local_funcs.add(node.name)
        self._check_fastpath_parity(node)
        self._scopes.append(_Scope())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _check_fastpath_parity(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for deco in node.decorator_list:
            name = ast.unparse(deco)
            if "overload" in name or "abstractmethod" in name:
                return
        if self._is_signature_only(node):
            return
        params = [
            a.arg
            for a in (*node.args.args, *node.args.posonlyargs,
                      *node.args.kwonlyargs)
            if a.arg in _FASTPATH_PARAMS
        ]
        if not params:
            return
        used = {
            sub.id
            for stmt in node.body
            for sub in ast.walk(stmt)
            if isinstance(sub, ast.Name)
        }
        for param in params:
            if param not in used:
                self._add(
                    node, "D006",
                    f"'{param}' switch accepted by {node.name}() but never "
                    "used: the naive/serial reference path this repo's "
                    "identity checks replay against does not exist here",
                )


def check(tree: ast.AST, path: Path, *, wallclock_allowed: bool,
          identity_module: bool) -> list[Finding]:
    """Run all rules over a parsed module and return raw findings."""
    visitor = DeterminismVisitor(
        path,
        wallclock_allowed=wallclock_allowed,
        identity_module=identity_module,
    )
    visitor.visit(tree)
    return visitor.findings
