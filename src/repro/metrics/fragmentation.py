"""GPU external fragmentation — Eq. 4 of the paper.

Eq. 4 relates allocated SMs to the SM capacity of the rented fleet::

    fragmentation = 1 - sum_i(SM_i) / (G * S)

with one refinement taken from the paper's own definition of external
fragmentation ("non-continuous small spaces, precluding the assignment of
larger-sized GPU partitions", SI): free capacity at the **allocation
frontier** — the contiguous free space of the single least-loaded GPU —
is *not* fragmentation, because the very next service can still be placed
there.  Scattered holes on interior GPUs are.

This convention is what lets the reported numbers line up with Fig. 7:
ParvaGPU's optimizer fills every interior hole, leaving free space only at
the frontier (0%); gpulet hands all residual resources to second
partitions (0%); MIG-serving's scoring avoids unfilled configurations
(low); iGniter and ParvaGPU-unoptimized leave interior holes (~27-29%).
"""

from __future__ import annotations

from repro.core.placement import Placement
from repro.gpu.geometry import get_geometry
from repro.gpu.mig import SMS_PER_GPC


def _sm_equiv_scale(geometry_name: str) -> float:
    """Vendor compute units -> A100-SM equivalents (1.0 for MIG)."""
    geo = get_geometry(geometry_name)
    return SMS_PER_GPC * geo.gpc_equiv_per_slice / geo.sms_per_slice


def external_fragmentation(placement: Placement) -> float:
    """Eq. 4 with the allocation frontier excluded, in [0, 1].

    Free compute is counted in A100-SM *equivalents* (vendor units scaled
    by each geometry's ``gpc_equiv_per_slice``), so frontier selection and
    the denominator stay commensurable on heterogeneous placements — an
    MI300X's 304 CUs are not compared against an A100's 98 SMs raw.  For
    all-MIG placements the scale factor is exactly 1.0, preserving the
    historical numbers bit-for-bit.
    """
    used = [g for g in placement.gpus if not g.is_empty]
    if not used:
        return 0.0
    free_sms = []
    for g in used:
        geo = get_geometry(g.geometry)
        free = g.total_sms - geo.sms_per_slice * g.used_gpcs
        scale = _sm_equiv_scale(g.geometry)
        free_sms.append(free if scale == 1.0 else free * scale)
    # The frontier GPU is the one with the most free capacity: its free
    # space is still open for allocation rather than fragmented.
    frontier = max(range(len(used)), key=free_sms.__getitem__)
    wasted = sum(f for i, f in enumerate(free_sms) if i != frontier)
    denom = sum(
        g.total_sms * _sm_equiv_scale(g.geometry) for g in used
    )
    return max(0.0, wasted / denom)


def raw_fragmentation(placement: Placement) -> float:
    """Eq. 4 verbatim (no frontier exclusion) — reported alongside.

    Counted in A100-SM equivalents like :func:`external_fragmentation`;
    identical to the vendor-unit ratio on all-MIG placements.
    """
    used = [g for g in placement.gpus if not g.is_empty]
    if not used:
        return 0.0
    allocated = sum(s.sm_equiv for _, s in placement.iter_segments())
    total = sum(g.total_sms * _sm_equiv_scale(g.geometry) for g in used)
    return max(0.0, 1.0 - allocated / total)
