"""GPU external fragmentation — Eq. 4 of the paper.

Eq. 4 relates allocated SMs to the SM capacity of the rented fleet::

    fragmentation = 1 - sum_i(SM_i) / (G * S)

with one refinement taken from the paper's own definition of external
fragmentation ("non-continuous small spaces, precluding the assignment of
larger-sized GPU partitions", SI): free capacity at the **allocation
frontier** — the contiguous free space of the single least-loaded GPU —
is *not* fragmentation, because the very next service can still be placed
there.  Scattered holes on interior GPUs are.

This convention is what lets the reported numbers line up with Fig. 7:
ParvaGPU's optimizer fills every interior hole, leaving free space only at
the frontier (0%); gpulet hands all residual resources to second
partitions (0%); MIG-serving's scoring avoids unfilled configurations
(low); iGniter and ParvaGPU-unoptimized leave interior holes (~27-29%).
"""

from __future__ import annotations

from repro.core.placement import Placement
from repro.gpu.gpu import SMS_PER_GPU


def external_fragmentation(placement: Placement) -> float:
    """Eq. 4 with the allocation frontier excluded, in [0, 1]."""
    used = [g for g in placement.gpus if not g.is_empty]
    if not used:
        return 0.0
    free_sms = [SMS_PER_GPU - 14.0 * g.used_gpcs for g in used]
    # The frontier GPU is the one with the most free capacity: its free
    # space is still open for allocation rather than fragmented.
    frontier = max(range(len(used)), key=free_sms.__getitem__)
    wasted = sum(f for i, f in enumerate(free_sms) if i != frontier)
    denom = SMS_PER_GPU * len(used)
    return max(0.0, wasted / denom)


def raw_fragmentation(placement: Placement) -> float:
    """Eq. 4 verbatim (no frontier exclusion) — reported alongside."""
    if placement.num_gpus == 0:
        return 0.0
    return max(0.0, 1.0 - placement.allocated_sms() / placement.total_sms())
