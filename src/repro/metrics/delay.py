"""Scheduling-delay helpers (Figs. 9/11 plot log10 of milliseconds)."""

from __future__ import annotations

import math
import time
from typing import Callable, TypeVar

T = TypeVar("T")


def log_ms(delay_ms: float) -> float:
    """The paper's Fig. 9/11 y-axis: log10(milliseconds)."""
    if delay_ms <= 0:
        raise ValueError("delay must be positive")
    return math.log10(delay_ms)


def timed_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` returning (result, wall-clock milliseconds)."""
    t0 = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - t0) * 1e3
