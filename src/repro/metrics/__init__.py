"""Evaluation metrics: Eq. 3 internal slack, Eq. 4 external fragmentation."""

from repro.metrics.slack import internal_slack, segment_activity
from repro.metrics.fragmentation import external_fragmentation, raw_fragmentation
from repro.metrics.delay import log_ms, timed_call

__all__ = [
    "internal_slack",
    "segment_activity",
    "external_fragmentation",
    "raw_fragmentation",
    "log_ms",
    "timed_call",
]
