"""GPU internal slack — Eq. 3 of the paper.

::

    slack = 1 - sum_i(SM_i * A_i) / sum_i(SM_i)

``SM_i`` is the SM allocation of partition ``i`` and ``A_i`` its measured
SM activity.  Activity can come from the discrete-event simulator's DCGM
tracker, or (for the fast analytic path) from the profiled operating-point
activity scaled by the partition's load fraction: a partition saturating
``a`` of its SM-time at full load, serving only fraction ``f`` of its
capacity, shows ``a*f`` activity — both spatial and temporal
underutilization count, exactly as DCGM's SM-activity counter behaves.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.placement import Placement


def segment_activity(
    sm_activity_at_full_load: float, load_fraction: float
) -> float:
    """Observed SM activity of a partition under partial load."""
    if not 0.0 <= sm_activity_at_full_load <= 1.0:
        raise ValueError("activity must be in [0, 1]")
    if load_fraction < 0.0:
        raise ValueError("load fraction must be non-negative")
    return sm_activity_at_full_load * min(1.0, load_fraction)


def internal_slack(
    placement: Placement,
    measured_activity: Optional[Mapping[str, float]] = None,
) -> float:
    """Eq. 3 over a placement, in [0, 1].

    ``measured_activity`` optionally maps ``"gpu<i>/<service>/<k>"`` keys
    (as produced by the simulator) to DCGM-style activities; without it the
    analytic load-scaled profile activity is used.
    """
    weighted = 0.0
    total = 0.0
    for gpu_id, seg in placement.iter_segments():
        if measured_activity is not None:
            key = _segment_key(gpu_id, seg.service_id, seg.start)
            activity = measured_activity.get(key)
            if activity is None:
                raise KeyError(f"no measured activity for segment {key!r}")
        else:
            activity = segment_activity(seg.sm_activity, seg.load_fraction)
        # Weighted in A100-SM equivalents so heterogeneous segments are
        # commensurable (raw CUs vs SMs would over-weight AMD partitions);
        # identical to raw SMs on all-MIG placements.
        weighted += seg.sm_equiv * activity
        total += seg.sm_equiv
    if total == 0:
        return 0.0
    return 1.0 - weighted / total


def _segment_key(gpu_id: int, service_id: str, start: Optional[int]) -> str:
    """Canonical segment key shared with the simulator's telemetry."""
    return f"gpu{gpu_id}/{service_id}/{'mps' if start is None else start}"
