"""Simulation measurements: latency records, SLO compliance, SM activity."""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np


@dataclass(frozen=True)
class BatchRecord:
    """One executed batch."""

    segment_key: str
    service_id: str
    dispatch_time: float  #: seconds
    completion_time: float
    batch_size: int
    max_request_latency_ms: float  #: worst end-to-end latency in the batch
    violated: bool  #: did the batch miss the service SLO?


@dataclass
class ServiceStats:
    """Aggregated serving quality of one service."""

    service_id: str
    slo_ms: float
    batches: int = 0
    violations: int = 0
    requests: int = 0
    latency_sum_ms: float = 0.0
    latency_max_ms: float = 0.0

    @property
    def compliance(self) -> float:
        """Fraction of batches meeting the SLO (Fig. 8's metric)."""
        if self.batches == 0:
            return 1.0
        return 1.0 - self.violations / self.batches

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.requests if self.requests else 0.0


@dataclass
class SimulationReport:
    """Everything a simulation run measured."""

    duration_s: float
    warmup_s: float
    services: dict[str, ServiceStats] = field(default_factory=dict)
    #: DCGM-style activity per segment key ("gpu0/<svc>/<slot>"), in [0, 1].
    segment_activity: dict[str, float] = field(default_factory=dict)
    #: requests completed per service during the measured window
    completed: dict[str, int] = field(default_factory=dict)
    events_processed: int = 0

    @property
    def overall_compliance(self) -> float:
        """Batch-weighted SLO compliance across services."""
        batches = sum(s.batches for s in self.services.values())
        violations = sum(s.violations for s in self.services.values())
        if batches == 0:
            return 1.0
        return 1.0 - violations / batches

    @property
    def violation_rate(self) -> float:
        return 1.0 - self.overall_compliance

    def achieved_rate(self, service_id: str) -> float:
        """Measured goodput of one service, requests/s."""
        window = self.duration_s - self.warmup_s
        if window <= 0:
            return 0.0
        return self.completed.get(service_id, 0) / window

    def fingerprint(self) -> str:
        """Canonical byte-form of the run's *exact* statistics.

        Covers every field that is bit-identical between the event-driven
        engine and the batch-granularity fast path: integer counts
        (batches, violations, requests, completions) and the per-service
        worst latency (a max over per-batch values both engines compute
        with the same float expressions).  Order-sensitive float
        accumulations — latency sums, busy SM-time — are deliberately
        excluded (the engines sum in different orders, so the last ulps
        can differ); :meth:`close_to` checks those.  A full identity
        check is ``a.fingerprint() == b.fingerprint() and a.close_to(b)``.
        """
        doc = {
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "services": {
                sid: [
                    st.batches,
                    st.violations,
                    st.requests,
                    self.completed.get(sid, 0),
                    format(st.latency_max_ms, ".17g"),
                ]
                for sid, st in sorted(self.services.items())
            },
            "segments": sorted(self.segment_activity),
        }
        return json.dumps(doc, sort_keys=True)

    def close_to(self, other: "SimulationReport", rtol: float = 1e-9) -> bool:
        """Whether order-sensitive float statistics agree within ``rtol``.

        Complements :meth:`fingerprint`: per-service latency sums and
        per-segment activity are accumulated in different orders by the
        two simulation engines, so they match to ~1e-12 relative rather
        than bitwise.
        """

        def ok(a: float, b: float) -> bool:
            return math.isclose(a, b, rel_tol=rtol, abs_tol=1e-12)

        if set(self.services) != set(other.services):
            return False
        if set(self.segment_activity) != set(other.segment_activity):
            return False
        return all(
            ok(st.latency_sum_ms, other.services[sid].latency_sum_ms)
            for sid, st in self.services.items()
        ) and all(
            ok(act, other.segment_activity[key])
            for key, act in self.segment_activity.items()
        )

    def summary_rows(self) -> list[tuple[str, float, float, float]]:
        """(service, compliance %, mean latency ms, achieved rate) rows."""
        return [
            (
                sid,
                100.0 * st.compliance,
                st.mean_latency_ms,
                self.achieved_rate(sid),
            )
            for sid, st in sorted(self.services.items())
        ]


def percentile_latency(records: list[BatchRecord], q: float) -> float:
    """q-th percentile of per-batch worst-request latency (ms)."""
    if not records:
        return 0.0
    return float(np.percentile([r.max_request_latency_ms for r in records], q))
