"""Discrete-event inference-cluster simulator.

Replays a scenario's request traffic against a deployment map, reproducing
the serving-time dynamics the paper measures on real A100s: Poisson
arrivals, per-segment batch assembly with SLO-aware flush timeouts,
concurrent MPS process execution, per-request latency accounting, and
DCGM-style SM-activity telemetry.

- :mod:`repro.sim.engine`   -- event heap and clock.
- :mod:`repro.sim.arrivals` -- seeded Poisson request generators.
- :mod:`repro.sim.batching` -- batch assembly policy.
- :mod:`repro.sim.server`   -- segment servers (one per placed partition).
- :mod:`repro.sim.metrics`  -- latency records, SLO compliance, activity.
- :mod:`repro.sim.runner`   -- one-call simulation of a placement.
- :mod:`repro.sim.fastpath` -- batch-granularity fast path (default
  engine of :func:`simulate_placement`; the event-driven loop stays as
  the per-request reference).
"""

from repro.sim.engine import EventQueue
from repro.sim.arrivals import poisson_arrivals
from repro.sim.batching import BatchPolicy
from repro.sim.server import SegmentServer
from repro.sim.metrics import BatchRecord, SimulationReport
from repro.sim.runner import (
    IntervalMeasurement,
    measure_interval,
    simulate_placement,
)
from repro.sim.fastpath import simulate_placement_fast

__all__ = [
    "EventQueue",
    "poisson_arrivals",
    "BatchPolicy",
    "SegmentServer",
    "BatchRecord",
    "SimulationReport",
    "IntervalMeasurement",
    "measure_interval",
    "simulate_placement",
    "simulate_placement_fast",
]
