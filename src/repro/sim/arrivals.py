"""Request arrival generation.

Each placed partition receives an independent Poisson stream at its
``served_rate``: probabilistically splitting a service's Poisson process
across its partitions in proportion to routed rate is exactly equivalent to
a weighted random router in front of the fleet, and keeps the simulator
free of a global routing bottleneck.
"""

from __future__ import annotations

import math

import numpy as np


def poisson_arrivals(
    rate: float, duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival times (seconds, ascending) of a Poisson process on [0, duration).

    Vectorized: draws ~``rate*duration`` exponential gaps in one shot and
    tops up in the rare case the cumulative sum falls short.
    """
    if rate < 0:
        raise ValueError("rate must be non-negative")
    if rate == 0 or duration <= 0:
        return np.empty(0, dtype=np.float64)
    expected = rate * duration
    n = int(expected + 4.0 * np.sqrt(expected) + 16)
    gaps = rng.exponential(1.0 / rate, size=n)
    times = np.cumsum(gaps)
    while times[-1] < duration:  # pragma: no cover - statistically rare
        extra = rng.exponential(1.0 / rate, size=max(16, n // 4))
        times = np.concatenate([times, times[-1] + np.cumsum(extra)])
    return times[times < duration]


def uniform_arrivals(rate: float, duration: float) -> np.ndarray:
    """Deterministic evenly-spaced arrivals (closed-loop load generator).

    The request count is ``rate * duration`` rounded half-up: truncating
    (the previous behaviour) silently under-generated load — a fractional
    expectation of 0.99 produced an effective rate up to a full request/s
    low, and a segment with ``0 < rate * duration < 1`` received zero
    traffic even though it was provisioned for some.
    """
    if rate <= 0 or duration <= 0:
        return np.empty(0, dtype=np.float64)
    n = int(math.floor(rate * duration + 0.5))
    return (np.arange(n, dtype=np.float64) + 0.5) / rate
