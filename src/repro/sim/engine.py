"""Event heap and simulation clock.

A minimal, allocation-light discrete-event core: events are ``(time, seq,
callback, payload)`` tuples on a binary heap; ``seq`` breaks ties
deterministically so runs are reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

Callback = Callable[[float, Any], None]


class EventQueue:
    """Deterministic discrete-event loop."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callback, Any]] = []
        self._seq = 0
        self.now = 0.0
        self._processed = 0

    def schedule(self, when: float, callback: Callback, payload: Any = None) -> None:
        """Enqueue ``callback(now, payload)`` at simulated time ``when``."""
        if when < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule at {when:.6f}, clock already at {self.now:.6f}"
            )
        heapq.heappush(self._heap, (when, self._seq, callback, payload))
        self._seq += 1

    def run(self, until: Optional[float] = None) -> int:
        """Drain events (up to ``until``); returns the number processed."""
        processed = 0
        while self._heap:
            when, _, callback, payload = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            self.now = when
            callback(when, payload)
            processed += 1
        if until is not None and self.now < until:
            self.now = until
        self._processed += processed
        return processed

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        return self._processed
