"""Batch assembly policy.

Serving stacks batch requests up to the operating point's batch size, but
flush a partial batch rather than let the oldest request's end-to-end
latency blow through the SLO — the adaptive-batching behaviour GSLICE [23]
popularized, which every framework in the evaluation (and any competent
serving layer) employs.  The flush margin mirrors the half-SLO queueing
budget the schedulers planned with.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BatchPolicy:
    """When to dispatch a batch from a segment's request queue."""

    batch_size: int  #: operating-point batch (the target)
    slo_ms: float  #: client-facing SLO of the service
    exec_estimate_ms: float  #: expected execution latency of a full batch
    safety_ms: float = 2.0  #: scheduling jitter margin

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if self.slo_ms <= 0:
            raise ValueError("SLO must be positive")

    @property
    def flush_wait_ms(self) -> float:
        """Max time the oldest request may wait before a forced flush.

        The request still needs ``exec_estimate_ms`` of service after
        dispatch, so it may queue for at most ``slo - exec - safety``.
        """
        return max(0.0, self.slo_ms - self.exec_estimate_ms - self.safety_ms)

    def should_dispatch(self, queue_len: int, oldest_wait_ms: float) -> bool:
        """Dispatch now? (full batch ready, or flush deadline reached)."""
        if queue_len >= self.batch_size:
            return True
        return queue_len > 0 and oldest_wait_ms >= self.flush_wait_ms

    def flush_deadline(self, oldest_arrival_s: float) -> float:
        """Absolute sim time (s) by which a partial batch must dispatch."""
        return oldest_arrival_s + self.flush_wait_ms / 1e3
