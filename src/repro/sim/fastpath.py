"""Batch-granularity simulation fast path.

:func:`repro.sim.runner.simulate_placement` owes its cost to the
discrete-event engine: one heap event *per request* plus a Python
callback per arrival/flush/completion.  At fleet scale (S9/S11: a
thousand services, minutes of traffic) that is tens of millions of heap
operations — the wall between the scheduler, which PR 2 made fleet-fast,
and any serving-quality measurement at the same scale.

The fast path exploits a structural fact of
:func:`~repro.sim.runner.simulate_placement`: segments are independent.
Each :class:`~repro.sim.server.SegmentServer` owns its queue, executors
and perf model; segments share only the activity tracker and the report
aggregation, and both are additive.  So each segment can be simulated to
completion directly from its pre-generated arrival array with a tight
per-segment kernel:

- dispatch decisions are derived by *index arithmetic* over the sorted
  arrival array (the queue is always a contiguous window ``A[h:arr]``),
- the only remaining heap is a tiny (≤ ``num_processes``-entry) heap of
  in-flight batch completions,
- the loop iterates **per batch** (one dispatch + one completion step
  per batch, ~``batch_size``× fewer steps than per-request events), and
- statistics accumulate in place instead of materialising a
  :class:`~repro.sim.metrics.BatchRecord` callback per batch.

For arrival arrays where every full batch fills before its flush
deadline and every batch completes before the next one dispatches (the
uniform-arrival unsaturated regime), dispatch and completion times
vectorise in numpy outright — no Python loop at all.

The kernel replicates the event engine's semantics decision-for-decision
(same dispatch times, batch compositions, concurrencies, warmup gating
and ``until`` cutoff, computed with the same floating-point
expressions), so integer statistics — batches, violations, requests,
completions — and per-batch worst latencies are *bit-identical* to the
reference.  Order-sensitive float accumulations (per-service latency
sums; busy SM-time on the numpy path) can differ in the last ulps
because the engines sum in different orders; the identity check
therefore pairs :meth:`SimulationReport.fingerprint` (exact fields) with
:meth:`SimulationReport.close_to` (sums, at ``rtol=1e-9``).
"""

from __future__ import annotations

from bisect import bisect_right
from heapq import heappush, heappop
from typing import Iterable

import numpy as np

from repro.core.placement import PlacedSegment, Placement
from repro.core.service import Service
from repro.models.perf import PerfModel
from repro.models.zoo import get_model
from repro.sim.arrivals import poisson_arrivals, uniform_arrivals
from repro.sim.batching import BatchPolicy
from repro.sim.metrics import ServiceStats, SimulationReport

_INF = float("inf")


class _SegmentResult:
    """Accumulated serving statistics of one segment's run."""

    __slots__ = (
        "batches",
        "violations",
        "requests",
        "latency_sum_ms",
        "latency_max_ms",
        "busy_sm_s",
        "steps",
    )

    def __init__(self) -> None:
        self.batches = 0
        self.violations = 0
        self.requests = 0
        self.latency_sum_ms = 0.0
        self.latency_max_ms = 0.0
        self.busy_sm_s = 0.0
        self.steps = 0


class _SegmentKernel:
    """Derived per-segment quantities, mirroring ``SegmentServer.__init__``.

    Built from seven scalar parameters rather than a
    :class:`PlacedSegment` so shard workers (:mod:`repro.sim.shard`) can
    rebuild bit-identical kernels from columnar numpy buffers without
    pickling placement objects; :meth:`from_segment` derives the
    parameters exactly as the serial path always did.  The latency/busy
    caches memoize the perf-model evaluations the event engine performs
    per dispatch; the model is pure, so cached values are bit-identical
    to fresh calls.
    """

    def __init__(
        self,
        model: str,
        gpcs: float,
        batch_size: int,
        num_processes: int,
        segment_latency_ms: float,
        slo_ms: float,
        sm_count: int,
    ) -> None:
        self.model = model
        self.gpcs = gpcs
        self.batch_size = batch_size
        self.num_processes = num_processes
        self.segment_latency_ms = segment_latency_ms
        self.slo_ms = slo_ms
        self.perf = PerfModel(get_model(model))
        clean = self.perf.latency_ms(gpcs, batch_size, num_processes)
        self.slowdown = max(1.0, segment_latency_ms / clean)
        self.policy = BatchPolicy(
            batch_size=batch_size,
            slo_ms=slo_ms,
            exec_estimate_ms=segment_latency_ms,
        )
        self.sm_count = sm_count
        self._lat: dict[tuple[int, int], float] = {}
        self._busy: dict[int, float] = {}

    @classmethod
    def from_segment(
        cls,
        segment: PlacedSegment,
        slo_ms: float,
        sm_count: int | None = None,
    ) -> "_SegmentKernel":
        """Kernel parameters as the serial fast path derives them.

        ``sm_count`` overrides the segment's own compute-unit count with
        the activity tracker's registered value (last register wins when
        segment keys collide).
        """
        return cls(
            model=segment.model,
            gpcs=segment.effective_gpcs,
            batch_size=segment.batch_size,
            num_processes=segment.num_processes,
            segment_latency_ms=segment.latency_ms,
            slo_ms=slo_ms,
            sm_count=(
                max(1, round(segment.sm_count)) if sm_count is None else sm_count
            ),
        )

    def latency_ms(self, batch: int, concurrency: int) -> float:
        """Execution latency of one dispatch, incl. interference slowdown."""
        key = (batch, concurrency)
        out = self._lat.get(key)
        if out is None:
            out = (
                self.perf.latency_ms(self.gpcs, batch, concurrency)
                * self.slowdown
            )
            self._lat[key] = out
        return out

    def busy_sm_s(self, batch: int) -> float:
        """Busy SM-seconds one dispatch adds to the activity tracker.

        Matches ``tracker.record_busy(key, compute_ms/1e3)``:
        ``(compute_ms / 1e3) * 1.0 * sm_count``, evaluated left to right.
        """
        out = self._busy.get(batch)
        if out is None:
            out = self.perf.compute_ms(self.gpcs, batch) / 1e3 * 1.0
            out = out * self.sm_count
            self._busy[batch] = out
        return out


def _simulate_segment_vectorized(
    kernel: _SegmentKernel,
    arrivals: np.ndarray,
    warmup_s: float,
    until: float,
) -> _SegmentResult | None:
    """Numpy closed form for the fill-dominated concurrency-1 regime.

    Valid when (checked on the actual float arrays): every full batch
    fills before its head's flush deadline, every batch completes
    strictly before the next one dispatches (so executor concurrency is
    pinned at 1 and a free process always exists), and the trailing
    partial batch — if any — collects all its requests before its own
    flush deadline.  Uniform arrivals in the unsaturated regime satisfy
    this by construction; the check admits any arrival array that does.
    Returns ``None`` when the regime does not apply.
    """
    batch = kernel.batch_size
    n = len(arrivals)
    if n == 0:
        return _SegmentResult()
    full = n // batch
    rest = n - full * batch
    flush_wait_s = kernel.policy.flush_wait_ms / 1e3

    heads = arrivals[: full * batch : batch]
    dispatches = arrivals[batch - 1 : full * batch : batch]
    if full and not np.all(dispatches <= heads + flush_wait_s):
        return None  # a flush would fire before some batch fills
    exec_s = kernel.latency_ms(batch, 1) / 1e3 if full else 0.0
    completions = dispatches + exec_s
    if full > 1 and not np.all(completions[:-1] < dispatches[1:]):
        return None  # batches overlap: concurrency exceeds 1

    tail = None  # (dispatch_time, completion_time, size, concurrency)
    if rest:
        head = float(arrivals[full * batch])
        deadline = kernel.policy.flush_deadline(head)
        if float(arrivals[-1]) > deadline:
            return None  # the tail spans several flush windows
        in_flight = bool(full) and float(completions[-1]) > deadline
        if in_flight and kernel.num_processes == 1:
            return None  # tail would dispatch at the completion instead
        concurrency = 2 if in_flight else 1
        if deadline <= until:
            tail = (
                deadline,
                deadline + kernel.latency_ms(rest, concurrency) / 1e3,
                rest,
                concurrency,
            )

    out = _SegmentResult()
    if full:
        measured = (dispatches >= warmup_s) & (completions <= until)
        worst = (completions - heads) * 1e3
        worst = worst[measured]
        out.batches = int(measured.sum())
        out.violations = int(np.count_nonzero(worst > kernel.slo_ms))
        out.requests = out.batches * batch
        out.latency_sum_ms = float(worst.sum()) * batch
        out.latency_max_ms = float(worst.max()) if len(worst) else 0.0
        busy_dispatches = int(np.count_nonzero(dispatches >= warmup_s))
        out.busy_sm_s = kernel.busy_sm_s(batch) * busy_dispatches
        out.steps = full + int(np.count_nonzero(completions <= until))
    if tail is not None:
        t_disp, t_comp, size, _ = tail
        out.steps += 1
        if t_disp >= warmup_s:
            out.busy_sm_s += kernel.busy_sm_s(size)
        if t_comp <= until:
            out.steps += 1
            if t_disp >= warmup_s:
                worst_ms = (t_comp - float(arrivals[full * batch])) * 1e3
                out.batches += 1
                out.violations += int(worst_ms > kernel.slo_ms)
                out.requests += size
                out.latency_sum_ms += worst_ms * size
                if worst_ms > out.latency_max_ms:
                    out.latency_max_ms = worst_ms
    return out


def _simulate_segment(
    kernel: _SegmentKernel,
    arrivals: np.ndarray,
    warmup_s: float,
    until: float,
) -> _SegmentResult:
    """Per-batch scalar kernel: exact replica of one ``SegmentServer``.

    The queue is the window ``A[h:arr]`` of the sorted arrival array;
    the only heap holds the ≤ ``procs`` in-flight batch completions.
    Event-engine tie-breaking is preserved: at equal timestamps,
    arrivals run before completions (arrivals are scheduled first and
    carry lower sequence numbers), and pending completions run before
    the armed flush (the flush is always armed after the dispatches that
    scheduled those completions).
    """
    out = _SegmentResult()
    n = len(arrivals)
    if n == 0:
        return out
    A = arrivals.tolist()
    batch_size = kernel.batch_size
    procs = kernel.num_processes
    slo_ms = kernel.slo_ms
    flush_wait_ms = kernel.policy.flush_wait_ms
    flush_wait_s = flush_wait_ms / 1e3
    latency_ms = kernel.latency_ms
    busy_sm_s = kernel.busy_sm_s

    heap: list[tuple[float, int, float, float, int]] = []
    seq = 0  # deterministic tie-break among equal completion times
    now = 0.0
    h = 0  # index of the oldest queued (undispatched) arrival
    arr = 0  # arrivals seen so far: the queue is A[h:arr]
    free = procs
    flush_forced = False  # the pending decision point is a flush event

    while True:
        # Exhaust every dispatch legal at `now` (the while-loop body of
        # SegmentServer._try_dispatch, with the queue as an index window).
        while free > 0 and h < arr:
            qlen = arr - h
            head = A[h]
            if not (
                flush_forced
                or qlen >= batch_size
                or (now - head) * 1e3 >= flush_wait_ms
            ):
                break
            flush_forced = False  # a forced flush only covers one batch
            b = qlen if qlen < batch_size else batch_size
            concurrency = procs - free + 1
            exec_ms = latency_ms(b, concurrency)
            if now >= warmup_s:
                out.busy_sm_s += busy_sm_s(b)
            free -= 1
            heappush(heap, (now + exec_ms / 1e3, seq, now, head, b))
            seq += 1
            h += b
            out.steps += 1
        flush_forced = False

        # Next decision point: a completion, the arrival that fills the
        # batch, the head's flush deadline, or — when the deadline is
        # already past but the float overdue-check disagreed — the next
        # arrival, which re-runs the check exactly like on_arrival does.
        t_comp = heap[0][0] if heap else _INF
        t_disp = _INF
        disp_is_flush = False
        if free > 0 and h < n:
            i_fill = h + batch_size - 1
            t_fill = A[i_fill] if i_fill < n else _INF
            t_flush = A[h] + flush_wait_s
            if t_flush <= now:
                t_arr = A[arr] if arr < n else _INF
                t_disp = t_fill if t_fill < t_arr else t_arr
            elif t_fill <= t_flush:
                t_disp = t_fill
            else:
                t_disp = t_flush
                disp_is_flush = True

        if t_comp < t_disp or (t_comp == t_disp and disp_is_flush):
            if t_comp > until:
                break
            now = t_comp
            seen = bisect_right(A, now, arr)
            if seen > arr:
                arr = seen  # same-time arrivals run first (lower seq)
                continue
            t_comp, _, dispatched, first, b = heappop(heap)
            free += 1
            out.steps += 1
            if dispatched >= warmup_s:
                # FIFO arrivals: the oldest request has the worst latency.
                worst_ms = (t_comp - first) * 1e3
                out.batches += 1
                out.violations += worst_ms > slo_ms
                out.requests += b
                out.latency_sum_ms += worst_ms * b
                if worst_ms > out.latency_max_ms:
                    out.latency_max_ms = worst_ms
        else:
            if t_disp > until:  # also covers both-infinite: drained
                break
            now = t_disp
            arr = bisect_right(A, now, arr)
            flush_forced = disp_is_flush
    return out


def simulate_placement_fast(
    placement: Placement,
    services: Iterable[Service],
    duration_s: float = 2.0,
    warmup_s: float = 0.5,
    seed: int = 0,
    arrivals: str = "uniform",
) -> SimulationReport:
    """Fast-path equivalent of :func:`repro.sim.runner.simulate_placement`.

    Generates each segment's arrival array exactly as the event-driven
    runner does (same shared rng, same segment order), then runs the
    per-segment kernel — numpy-vectorized where the regime allows,
    per-batch scalar otherwise.  ``report.events_processed`` counts
    kernel steps (dispatches + completions) rather than heap events.
    """
    from repro.sim.runner import segment_key

    if duration_s <= warmup_s:
        raise ValueError("duration must exceed warmup")
    svc_by_id = {s.id: s for s in services}
    report = SimulationReport(duration_s=duration_s, warmup_s=warmup_s)
    for sid, svc in svc_by_id.items():
        report.services[sid] = ServiceStats(
            service_id=sid, slo_ms=svc.slo_latency_ms
        )
        report.completed[sid] = 0

    rng = np.random.default_rng(seed)
    until = duration_s + 1.0
    runs: list[tuple[str, PlacedSegment, np.ndarray]] = []
    sm_counts: dict[str, int] = {}
    busy: dict[str, float] = {}
    for gpu_id, seg in placement.iter_segments():
        if seg.service_id not in svc_by_id:
            raise ValueError(
                f"placement references unknown service {seg.service_id!r}"
            )
        key = segment_key(gpu_id, seg.service_id, seg.start)
        if arrivals == "poisson":
            times = poisson_arrivals(seg.served_rate, duration_s, rng)
        elif arrivals == "uniform":
            times = uniform_arrivals(seg.served_rate, duration_s)
        else:
            raise ValueError(f"unknown arrival process {arrivals!r}")
        runs.append((key, seg, times))
        # Last register wins, as in SMActivityTracker.register.
        sm_counts[key] = max(1, round(seg.sm_count))
        busy.setdefault(key, 0.0)

    steps = 0
    for key, seg, times in runs:
        kernel = _SegmentKernel.from_segment(
            seg, svc_by_id[seg.service_id].slo_latency_ms,
            sm_count=sm_counts[key],
        )
        res = _simulate_segment_vectorized(kernel, times, warmup_s, until)
        if res is None:
            res = _simulate_segment(kernel, times, warmup_s, until)
        st = report.services[seg.service_id]
        st.batches += res.batches
        st.violations += res.violations
        st.requests += res.requests
        st.latency_sum_ms += res.latency_sum_ms
        if res.latency_max_ms > st.latency_max_ms:
            st.latency_max_ms = res.latency_max_ms
        report.completed[seg.service_id] += res.requests
        busy[key] += res.busy_sm_s
        steps += res.steps
    report.events_processed = steps

    window = duration_s - warmup_s
    for key, _seg, _times in runs:
        ratio = busy[key] / (sm_counts[key] * window) if window > 0 else 0.0
        report.segment_activity[key] = min(1.0, ratio)
    return report
