"""Time-varying request-rate traces.

The paper's evaluation fixes each scenario's rates, but its deployment
story (SIII-F) exists precisely because real cloud traffic moves: SLOs get
renegotiated and diurnal/bursty load changes the rates the Configurator
must satisfy.  A :class:`RateTrace` describes one service's rate over
time as piecewise-constant epochs; generators below produce the standard
shapes (diurnal sinusoid, step surge, flash crowd).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class Epoch:
    """A constant-rate interval of a trace."""

    start_s: float
    rate: float  #: requests/s during the epoch

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.rate < 0:
            raise ValueError("epoch start and rate must be non-negative")


@dataclass(frozen=True)
class RateTrace:
    """Piecewise-constant request rate of one service."""

    service_id: str
    epochs: tuple[Epoch, ...]
    #: precomputed epoch starts for O(log n) lookups; derived, not an input
    _starts: tuple[float, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not self.epochs:
            raise ValueError("trace needs at least one epoch")
        starts = [e.start_s for e in self.epochs]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("epochs must have strictly increasing starts")
        if self.epochs[0].start_s != 0.0:
            raise ValueError("the first epoch must start at t=0")
        object.__setattr__(self, "_starts", tuple(starts))

    def rate_at(self, t: float) -> float:
        """The trace's rate at absolute time ``t`` (seconds).

        An epoch's start is inclusive: ``rate_at(e.start_s)`` is already
        ``e.rate``.  Binary search over the precomputed starts — this is
        called per service per autoscaler step, which a linear epoch scan
        made O(epochs) on long diurnal traces.
        """
        if t < 0:
            raise ValueError("time must be non-negative")
        return self.epochs[bisect_right(self._starts, t) - 1].rate

    def peak_rate(self) -> float:
        return max(e.rate for e in self.epochs)

    def mean_rate(self, horizon_s: float) -> float:
        """Time-weighted mean rate over ``[0, horizon_s)``."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        total = 0.0
        for i, epoch in enumerate(self.epochs):
            if epoch.start_s >= horizon_s:
                break
            end = (
                self.epochs[i + 1].start_s
                if i + 1 < len(self.epochs)
                else horizon_s
            )
            end = min(end, horizon_s)
            total += epoch.rate * (end - epoch.start_s)
        return total / horizon_s


def diurnal_trace(
    service_id: str,
    base_rate: float,
    amplitude: float = 0.5,
    period_s: float = 86_400.0,
    epochs: int = 24,
    phase: float = 0.0,
) -> RateTrace:
    """A sinusoidal day/night pattern sampled into ``epochs`` steps."""
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError("amplitude must be in [0, 1]")
    if epochs < 1:
        raise ValueError("need at least one epoch")
    out = []
    for k in range(epochs):
        t = k * period_s / epochs
        factor = 1.0 + amplitude * math.sin(2 * math.pi * (t / period_s) + phase)
        out.append(Epoch(start_s=t, rate=base_rate * factor))
    return RateTrace(service_id=service_id, epochs=tuple(out))


def surge_trace(
    service_id: str,
    base_rate: float,
    surge_factor: float,
    surge_start_s: float,
    surge_end_s: float,
) -> RateTrace:
    """A step surge: base -> base*factor -> base (a product launch)."""
    if surge_factor <= 0 or not 0 < surge_start_s < surge_end_s:
        raise ValueError("invalid surge shape")
    return RateTrace(
        service_id=service_id,
        epochs=(
            Epoch(0.0, base_rate),
            Epoch(surge_start_s, base_rate * surge_factor),
            Epoch(surge_end_s, base_rate),
        ),
    )


def epoch_boundaries(traces: Sequence[RateTrace]) -> tuple[float, ...]:
    """All distinct epoch start times across a trace set, sorted."""
    times = {e.start_s for trace in traces for e in trace.epochs}
    return tuple(sorted(times))
