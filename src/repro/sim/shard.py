"""Sharded parallel execution of the simulation fast path.

:func:`simulate_placement_sharded` produces a
:class:`~repro.sim.metrics.SimulationReport` bit-identical to
:func:`~repro.sim.fastpath.simulate_placement_fast` — same integer
statistics, same float sums, same fingerprint — while fanning the
per-segment kernels across :class:`~repro.parallel.ShardPool` workers.
Three structural facts make that possible:

- **Segments are independent.**  Each per-segment kernel is a pure
  function of seven scalar parameters plus its arrival array; segments
  share only additive state (ServiceStats, busy SM-time, the activity
  tracker), so any partition of the segment list computes the same
  per-segment results.
- **The merge is position-based.**  Shards are contiguous index blocks
  (:func:`~repro.parallel.partition`) and results scatter back into
  their input slots before a single serial accumulation pass in
  placement order — the exact order the serial fast path sums in, so
  even order-sensitive float accumulations match bit-for-bit no matter
  which worker finishes first.
- **Shard payloads are columnar.**  A :class:`ShardJob` carries the
  kernel parameters as flat numpy arrays plus either per-segment rates
  (uniform arrivals regenerate in the worker —
  :func:`~repro.sim.arrivals.uniform_arrivals` is a pure function of
  ``(rate, duration)``) or one concatenated arrival buffer with offsets
  (Poisson arrivals consume the shared parent rng in segment order and
  are therefore pre-generated before sharding).  Nothing heavier than
  strings and float64 buffers crosses the process boundary.

The same purity argument yields the sharded path's cross-interval
**segment memo**: a segment's result is a deterministic function of its
kernel signature and offered rate, so a :class:`ShardContext` held open
across a :class:`~repro.ops.controller.FleetController` run resolves
unchanged segments from cache and ships only the (few) segments an
event actually touched.  On small hosts this dedup — not core count —
is where most of the parallel path's wall-clock win comes from; the
serial path stays the untouched reference the identity checks compare
against.
"""

from __future__ import annotations

from typing import Callable, Iterable, NamedTuple, Optional

import numpy as np

from repro.core.placement import PlacedSegment, Placement
from repro.core.service import Service
from repro.obs import ObsHub
from repro.parallel import FaultInjector, ShardPool, partition
from repro.sim.arrivals import poisson_arrivals, uniform_arrivals
from repro.sim.fastpath import (
    _SegmentKernel,
    _simulate_segment,
    _simulate_segment_vectorized,
)
from repro.sim.metrics import ServiceStats, SimulationReport

#: Per-segment result row: batches, violations, requests, latency_sum_ms,
#: latency_max_ms, busy_sm_s, steps.  Counts are exact in float64 far
#: beyond any simulated fleet (2**53 requests).
_ROW_WIDTH = 7


class ShardJob(NamedTuple):
    """One shard's columnar payload (picklable, numpy-backed)."""

    models: tuple[str, ...]
    gpcs: np.ndarray
    batch: np.ndarray
    procs: np.ndarray
    latency_ms: np.ndarray
    slo_ms: np.ndarray
    sm_count: np.ndarray
    #: uniform arrivals: per-segment offered rates (regenerated in-worker)
    rates: Optional[np.ndarray]
    #: pre-generated arrivals: one concatenated buffer + segment offsets
    arrival_buf: Optional[np.ndarray]
    offsets: Optional[np.ndarray]
    duration_s: float
    warmup_s: float
    until: float


def _run_shard(job: ShardJob) -> np.ndarray:
    """Worker: simulate one shard's segments, results in shard order."""
    n = len(job.models)
    out = np.empty((n, _ROW_WIDTH), dtype=np.float64)
    for i in range(n):
        kernel = _SegmentKernel(
            model=job.models[i],
            gpcs=float(job.gpcs[i]),
            batch_size=int(job.batch[i]),
            num_processes=int(job.procs[i]),
            segment_latency_ms=float(job.latency_ms[i]),
            slo_ms=float(job.slo_ms[i]),
            sm_count=int(job.sm_count[i]),
        )
        if job.rates is not None:
            arr = uniform_arrivals(float(job.rates[i]), job.duration_s)
        else:
            arr = job.arrival_buf[job.offsets[i] : job.offsets[i + 1]]
        res = _simulate_segment_vectorized(kernel, arr, job.warmup_s, job.until)
        if res is None:
            res = _simulate_segment(kernel, arr, job.warmup_s, job.until)
        out[i] = (
            res.batches,
            res.violations,
            res.requests,
            res.latency_sum_ms,
            res.latency_max_ms,
            res.busy_sm_s,
            res.steps,
        )
    return out


class ShardContext:
    """Pool + cross-call segment memo, held open across a controller run.

    The memo maps a segment's full kernel signature (model, GPC share,
    batch, processes, latency, SLO, registered SM count, offered rate)
    plus the measurement window to its result row.  Every component that
    determines the simulation outcome is part of the key, and the kernel
    is a pure function of the key — a hit is bit-identical to a fresh
    computation.  Only uniform arrivals are memoizable; Poisson arrivals
    depend on the shared rng stream and always re-simulate.
    """

    def __init__(
        self,
        workers: int,
        fault_injector: Optional["FaultInjector"] = None,
        job_timeout_s: Optional[float] = None,
        obs: Optional[ObsHub] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.obs = obs if obs is not None else ObsHub(enabled=False)
        self.pool = ShardPool(
            workers,
            fault_injector=fault_injector,
            job_timeout_s=job_timeout_s,
            obs=self.obs,
        )
        self.memo: dict[tuple, tuple] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "ShardContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _pack_job(
    segs: list[tuple[PlacedSegment, float, int, Optional[np.ndarray]]],
    arrivals: str,
    duration_s: float,
    warmup_s: float,
    until: float,
) -> ShardJob:
    """Columnar payload for one shard's ``(segment, slo, sm, times)`` rows."""
    models = tuple(seg.model for seg, _, _, _ in segs)
    gpcs = np.array([seg.effective_gpcs for seg, _, _, _ in segs])
    batch = np.array([seg.batch_size for seg, _, _, _ in segs], dtype=np.int64)
    procs = np.array(
        [seg.num_processes for seg, _, _, _ in segs], dtype=np.int64
    )
    latency = np.array([seg.latency_ms for seg, _, _, _ in segs])
    slo = np.array([slo_ms for _, slo_ms, _, _ in segs])
    sm = np.array([sm_count for _, _, sm_count, _ in segs], dtype=np.int64)
    rates = arrival_buf = offsets = None
    if arrivals == "uniform":
        rates = np.array([seg.served_rate for seg, _, _, _ in segs])
    else:
        chunks = [times for _, _, _, times in segs]
        counts = np.array([len(c) for c in chunks], dtype=np.int64)
        offsets = np.zeros(len(chunks) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        arrival_buf = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float64)
        )
    return ShardJob(
        models=models,
        gpcs=gpcs,
        batch=batch,
        procs=procs,
        latency_ms=latency,
        slo_ms=slo,
        sm_count=sm,
        rates=rates,
        arrival_buf=arrival_buf,
        offsets=offsets,
        duration_s=duration_s,
        warmup_s=warmup_s,
        until=until,
    )


def simulate_placement_sharded(
    placement: Placement,
    services: Iterable[Service],
    duration_s: float = 2.0,
    warmup_s: float = 0.5,
    seed: int = 0,
    arrivals: str = "uniform",
    workers: int = 1,
    context: Optional[ShardContext] = None,
) -> SimulationReport:
    """Sharded, memoized equivalent of ``simulate_placement_fast``.

    ``workers`` is the shard count (1 runs the single shard inline —
    same code path, no subprocess).  Passing a ``context`` reuses its
    pool and segment memo across calls (the FleetController's
    per-interval loop); otherwise an ephemeral context is created and
    closed before returning.
    """
    from repro.sim.runner import segment_key

    if duration_s <= warmup_s:
        raise ValueError("duration must exceed warmup")
    own_context = context is None
    ctx = ShardContext(workers) if own_context else context
    try:
        return _simulate_sharded(
            placement, services, duration_s, warmup_s, seed, arrivals, ctx,
            segment_key,
        )
    finally:
        if own_context:
            ctx.close()


def _simulate_sharded(
    placement: Placement,
    services: Iterable[Service],
    duration_s: float,
    warmup_s: float,
    seed: int,
    arrivals: str,
    ctx: ShardContext,
    segment_key: Callable[[int, str, Optional[int]], str],
) -> SimulationReport:
    svc_by_id = {s.id: s for s in services}
    report = SimulationReport(duration_s=duration_s, warmup_s=warmup_s)
    for sid, svc in svc_by_id.items():
        report.services[sid] = ServiceStats(
            service_id=sid, slo_ms=svc.slo_latency_ms
        )
        report.completed[sid] = 0

    rng = np.random.default_rng(seed)
    until = duration_s + 1.0
    #: (key, segment, slo_ms, times) in placement order; ``times`` is
    #: None for uniform arrivals (regenerated from the rate in-worker).
    runs: list[tuple[str, PlacedSegment, float, Optional[np.ndarray]]] = []
    sm_counts: dict[str, int] = {}
    busy: dict[str, float] = {}
    for gpu_id, seg in placement.iter_segments():
        if seg.service_id not in svc_by_id:
            raise ValueError(
                f"placement references unknown service {seg.service_id!r}"
            )
        key = segment_key(gpu_id, seg.service_id, seg.start)
        if arrivals == "poisson":
            # The shared rng advances in placement order, exactly like
            # the serial paths — generation cannot move into workers.
            times = poisson_arrivals(seg.served_rate, duration_s, rng)
        elif arrivals == "uniform":
            times = None
        else:
            raise ValueError(f"unknown arrival process {arrivals!r}")
        runs.append((key, seg, svc_by_id[seg.service_id].slo_latency_ms, times))
        # Last register wins, as in SMActivityTracker.register.
        sm_counts[key] = max(1, round(seg.sm_count))
        busy.setdefault(key, 0.0)

    memoizable = arrivals == "uniform"
    results: list[Optional[tuple]] = [None] * len(runs)
    memo_keys: list[Optional[tuple]] = [None] * len(runs)
    miss_idx: list[int] = []
    for i, (key, seg, slo_ms, _times) in enumerate(runs):
        if memoizable:
            mk = (
                seg.model,
                seg.effective_gpcs,
                seg.batch_size,
                seg.num_processes,
                seg.latency_ms,
                slo_ms,
                sm_counts[key],
                seg.served_rate,
                duration_s,
                warmup_s,
            )
            memo_keys[i] = mk
            hit = ctx.memo.get(mk)
            if hit is not None:
                results[i] = hit
                ctx.memo_hits += 1
                continue
            ctx.memo_misses += 1
        miss_idx.append(i)

    if miss_idx:
        jobs = []
        for start, stop in partition(len(miss_idx), ctx.workers):
            block = [
                (
                    runs[j][1],
                    runs[j][2],
                    sm_counts[runs[j][0]],
                    runs[j][3],
                )
                for j in miss_idx[start:stop]
            ]
            jobs.append(
                _pack_job(block, arrivals, duration_s, warmup_s, until)
            )
        with ctx.obs.span(
            "scatter", cat="shard",
            shards=len(jobs), segments=len(miss_idx),
            memo_hits=len(runs) - len(miss_idx),
        ):
            rows_per_shard = ctx.pool.run(_run_shard, jobs)
        with ctx.obs.span("gather", cat="shard", shards=len(jobs)):
            cursor = 0
            for rows in rows_per_shard:
                for row in rows:
                    # Plain floats: float64 round-trips exactly, and
                    # report fields must not silently become numpy
                    # scalars.
                    results[miss_idx[cursor]] = tuple(
                        float(x) for x in row
                    )
                    cursor += 1

    steps = 0
    for i, (key, seg, slo_ms, _times) in enumerate(runs):
        row = results[i]
        if memoizable:
            ctx.memo[memo_keys[i]] = row
        batches, violations, requests, lat_sum, lat_max, busy_sm, n_steps = row
        st = report.services[seg.service_id]
        st.batches += int(batches)
        st.violations += int(violations)
        st.requests += int(requests)
        st.latency_sum_ms += lat_sum
        if lat_max > st.latency_max_ms:
            st.latency_max_ms = lat_max
        report.completed[seg.service_id] += int(requests)
        busy[key] += busy_sm
        steps += int(n_steps)
    report.events_processed = steps

    window = duration_s - warmup_s
    for key, _seg, _slo, _times in runs:
        ratio = busy[key] / (sm_counts[key] * window) if window > 0 else 0.0
        report.segment_activity[key] = min(1.0, ratio)
    return report
