"""One-call simulation of a placement under a scenario's traffic."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Optional

import numpy as np

from repro.core.placement import Placement
from repro.core.service import Service
from repro.gpu.telemetry import SMActivityTracker
from repro.sim.arrivals import poisson_arrivals, uniform_arrivals
from repro.sim.engine import EventQueue
from repro.sim.metrics import BatchRecord, ServiceStats, SimulationReport
from repro.sim.server import SegmentServer

if TYPE_CHECKING:  # imported lazily at runtime to avoid a module cycle
    from repro.sim.shard import ShardContext


def segment_key(gpu_id: int, service_id: str, start: Optional[int]) -> str:
    """Canonical key shared with :mod:`repro.metrics.slack`."""
    return f"gpu{gpu_id}/{service_id}/{'mps' if start is None else start}"


@dataclass(frozen=True)
class IntervalMeasurement:
    """One interval's serving quality, as both control loops consume it.

    The offline :class:`~repro.ops.controller.FleetController` and the
    live serve gateway measure intervals through the same call
    (:func:`measure_interval`), so the numbers a live status endpoint
    publishes are definitionally the numbers an offline replay records.
    """

    compliance: float
    fingerprint: str
    #: service id -> measured compliance, in simulator insertion order
    per_service: Mapping[str, float]

    @property
    def worst_service(self) -> Optional[str]:
        if not self.per_service:
            return None
        return min(self.per_service, key=lambda sid: self.per_service[sid])

    @property
    def worst_compliance(self) -> Optional[float]:
        worst = self.worst_service
        return None if worst is None else self.per_service[worst]


def measure_interval(
    placement: Placement,
    services: Iterable[Service],
    measure_s: float,
    warmup_s: float = 0.1,
    seed: int = 0,
    fast_path: bool = True,
    workers: int = 0,
    shard_context: Optional["ShardContext"] = None,
) -> IntervalMeasurement:
    """Serve ``placement`` for ``measure_s`` and distill interval stats.

    A thin shim over :func:`simulate_placement` (warmup + measurement
    window, same engine/sharding switches) that reduces the full
    :class:`~repro.sim.metrics.SimulationReport` to the per-interval
    record the control loops keep: overall + per-tenant compliance and
    the stats fingerprint the identity checks compare.
    """
    sim = simulate_placement(
        placement,
        services,
        duration_s=warmup_s + measure_s,
        warmup_s=warmup_s,
        seed=seed,
        fast_path=fast_path,
        workers=workers,
        shard_context=shard_context,
    )
    return IntervalMeasurement(
        compliance=sim.overall_compliance,
        fingerprint=sim.fingerprint(),
        per_service={
            sid: st.compliance for sid, st in sim.services.items()
        },
    )


def simulate_placement(
    placement: Placement,
    services: Iterable[Service],
    duration_s: float = 2.0,
    warmup_s: float = 0.5,
    seed: int = 0,
    arrivals: str = "uniform",
    fast_path: bool = True,
    workers: int = 0,
    shard_context: Optional["ShardContext"] = None,
) -> SimulationReport:
    """Drive ``placement`` with request traffic and measure serving quality.

    ``arrivals`` selects the load generator: ``"uniform"`` (default) is an
    open-loop constant-rate generator — the standard serving-benchmark
    configuration and the regime the paper's compliance numbers imply —
    while ``"poisson"`` adds arrival burstiness (stressing queue headroom).

    ``duration_s`` covers warmup + measurement; statistics (SLO compliance,
    activity, goodput) only count batches dispatched after ``warmup_s``.

    ``fast_path`` (default on) runs the batch-granularity kernel of
    :mod:`repro.sim.fastpath` — identical serving decisions derived by
    index arithmetic over each segment's arrival array, ~``batch_size``×
    fewer iteration steps.  ``fast_path=False`` keeps the per-request
    discrete-event engine as the naive reference (the perf harness checks
    the two against each other on every recorded run).

    ``workers >= 1`` routes the fast path through the sharded parallel
    executor (:mod:`repro.sim.shard`): segments partition into that many
    contiguous shards whose results merge back in placement order, so
    the report is bit-identical to the serial fast path for any worker
    count (``workers=1`` runs the single shard inline).  A
    ``shard_context`` (:class:`~repro.sim.shard.ShardContext`) reuses a
    worker pool and cross-call segment memo between invocations — the
    FleetController's per-interval measurement loop.  ``workers=0``
    (default) is the serial reference; sharding requires the fast path.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if (workers >= 1 or shard_context is not None) and not fast_path:
        raise ValueError(
            "sharded parallel simulation requires the fast path "
            "(the event-driven reference stays serial)"
        )
    if fast_path and (workers >= 1 or shard_context is not None):
        from repro.sim.shard import simulate_placement_sharded

        return simulate_placement_sharded(
            placement,
            services,
            duration_s=duration_s,
            warmup_s=warmup_s,
            seed=seed,
            arrivals=arrivals,
            workers=max(1, workers),
            context=shard_context,
        )
    if fast_path:
        from repro.sim.fastpath import simulate_placement_fast

        return simulate_placement_fast(
            placement,
            services,
            duration_s=duration_s,
            warmup_s=warmup_s,
            seed=seed,
            arrivals=arrivals,
        )
    if duration_s <= warmup_s:
        raise ValueError("duration must exceed warmup")
    svc_by_id = {s.id: s for s in services}
    events = EventQueue()
    tracker = SMActivityTracker(window_start=warmup_s)
    report = SimulationReport(duration_s=duration_s, warmup_s=warmup_s)
    for sid, svc in svc_by_id.items():
        report.services[sid] = ServiceStats(
            service_id=sid, slo_ms=svc.slo_latency_ms
        )
        report.completed[sid] = 0

    def on_batch(rec: BatchRecord) -> None:
        st = report.services[rec.service_id]
        st.batches += 1
        st.violations += int(rec.violated)
        st.requests += rec.batch_size
        st.latency_sum_ms += rec.max_request_latency_ms * rec.batch_size
        st.latency_max_ms = max(st.latency_max_ms, rec.max_request_latency_ms)
        report.completed[rec.service_id] += rec.batch_size

    rng = np.random.default_rng(seed)
    servers: list[SegmentServer] = []
    for gpu_id, seg in placement.iter_segments():
        if seg.service_id not in svc_by_id:
            raise ValueError(f"placement references unknown service {seg.service_id!r}")
        key = segment_key(gpu_id, seg.service_id, seg.start)
        server = SegmentServer(
            key=key,
            segment=seg,
            slo_ms=svc_by_id[seg.service_id].slo_latency_ms,
            events=events,
            tracker=tracker,
            on_batch=on_batch,
            warmup_s=warmup_s,
        )
        servers.append(server)
        if arrivals == "poisson":
            times = poisson_arrivals(seg.served_rate, duration_s, rng)
        elif arrivals == "uniform":
            times = uniform_arrivals(seg.served_rate, duration_s)
        else:
            raise ValueError(f"unknown arrival process {arrivals!r}")
        for t in times:
            events.schedule(float(t), server.on_arrival)

    report.events_processed = events.run(until=duration_s + 1.0)

    window_end = duration_s
    for server in servers:
        sample = tracker.sample(server.key, window_end)
        report.segment_activity[server.key] = sample.activity
    return report
