"""Segment servers: the serving processes behind one placed partition.

A :class:`SegmentServer` owns the request queue of one
:class:`~repro.core.placement.PlacedSegment` and up to ``procs`` concurrent
executor slots (the MPS processes).  Execution latency comes from the same
performance model the profiler measured, evaluated at the *actual* dispatch
batch size and the *momentary* process concurrency, times the partition's
interference slowdown (1.0 for MIG segments; ground-truth contention for
the MPS baselines — which is how a gpulet pair that was sized with an
optimistic prediction ends up violating its SLO here).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.placement import PlacedSegment
from repro.gpu.telemetry import SMActivityTracker
from repro.models.perf import PerfModel
from repro.models.zoo import get_model
from repro.sim.batching import BatchPolicy
from repro.sim.engine import EventQueue
from repro.sim.metrics import BatchRecord


@dataclass
class _InFlight:
    """One batch being executed.

    Arrivals are FIFO-monotone, so only the oldest request's arrival time
    (the batch's worst end-to-end latency) and the count need to ride
    along — not the full per-request list.
    """

    first_arrival: float
    count: int
    dispatch_time: float


class SegmentServer:
    """Queue + batcher + ``procs`` executors for one placed partition."""

    def __init__(
        self,
        key: str,
        segment: PlacedSegment,
        slo_ms: float,
        events: EventQueue,
        tracker: SMActivityTracker,
        on_batch: Callable[[BatchRecord], None],
        warmup_s: float = 0.0,
    ) -> None:
        self.key = key
        self.segment = segment
        self.slo_ms = slo_ms
        self.events = events
        self.tracker = tracker
        self.on_batch = on_batch
        self.warmup_s = warmup_s

        self.perf = PerfModel(get_model(segment.model))
        #: slice counts are geometry-local (an XCD != a GPC); the perf
        #: model runs on A100-GPC equivalents for every backend.
        self.gpcs = segment.effective_gpcs
        clean = self.perf.latency_ms(
            self.gpcs, segment.batch_size, segment.num_processes
        )
        #: ratio of scheduler-expected latency (incl. interference) to the
        #: clean model: applied to every execution in this partition.
        self.slowdown = max(1.0, segment.latency_ms / clean)
        self.policy = BatchPolicy(
            batch_size=segment.batch_size,
            slo_ms=slo_ms,
            exec_estimate_ms=segment.latency_ms,
        )
        self.queue: deque[float] = deque()
        self.free_procs = segment.num_processes
        self._flush_for: Optional[float] = None
        self.batches_executed = 0

        tracker.register(key, max(1, round(segment.sm_count)))

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #

    def on_arrival(self, now: float, _payload: object = None) -> None:
        self.queue.append(now)
        self._try_dispatch(now)
        self._arm_flush(now)

    def _on_flush(self, now: float, oldest: float) -> None:
        if self._flush_for == oldest:
            self._flush_for = None
        if self.queue and abs(self.queue[0] - oldest) < 1e-12:
            self._try_dispatch(now, forced=True)
        self._arm_flush(now)

    def _on_completion(self, now: float, batch: _InFlight) -> None:
        self.free_procs += 1
        # FIFO arrivals: the oldest request's latency is the batch's worst.
        worst = (now - batch.first_arrival) * 1e3
        if batch.dispatch_time >= self.warmup_s:
            self.batches_executed += 1
            self.on_batch(
                BatchRecord(
                    segment_key=self.key,
                    service_id=self.segment.service_id,
                    dispatch_time=batch.dispatch_time,
                    completion_time=now,
                    batch_size=batch.count,
                    max_request_latency_ms=worst,
                    violated=worst > self.slo_ms,
                )
            )
        self._try_dispatch(now)
        self._arm_flush(now)

    # ------------------------------------------------------------------ #
    # batching core
    # ------------------------------------------------------------------ #

    def _try_dispatch(self, now: float, forced: bool = False) -> None:
        while self.free_procs > 0 and self.queue:
            oldest_wait_ms = (now - self.queue[0]) * 1e3
            if not forced and not self.policy.should_dispatch(
                len(self.queue), oldest_wait_ms
            ):
                return
            b = min(self.segment.batch_size, len(self.queue))
            first_arrival = self.queue[0]
            for _ in range(b):
                self.queue.popleft()
            concurrency = (
                self.segment.num_processes - self.free_procs + 1
            )  # executors busy after this dispatch
            exec_ms = (
                self.perf.latency_ms(self.gpcs, b, concurrency)
                * self.slowdown
            )
            if now >= self.warmup_s:
                self.tracker.record_busy(
                    self.key, self.perf.compute_ms(self.gpcs, b) / 1e3
                )
            self.free_procs -= 1
            self.events.schedule(
                now + exec_ms / 1e3,
                self._on_completion,
                _InFlight(
                    first_arrival=first_arrival, count=b, dispatch_time=now
                ),
            )
            forced = False  # a forced flush only covers the first batch

    def _arm_flush(self, now: float) -> None:
        """Keep exactly one pending *future* flush event for the oldest.

        An overdue queue head is already handled by
        :meth:`BatchPolicy.should_dispatch` on every arrival/completion, and
        a fully-busy server dispatches on its next completion — scheduling a
        flush in either state would spin the event loop at ``now``.
        """
        if not self.queue or self.free_procs == 0:
            return
        oldest = self.queue[0]
        if self._flush_for == oldest:
            return
        deadline = self.policy.flush_deadline(oldest)
        if deadline <= now:
            return
        self._flush_for = oldest
        self.events.schedule(deadline, self._on_flush, oldest)
