"""The 11 DNN inference workloads of Table IV with analytic cost parameters.

Each model is described by the coefficients of the performance model in
:mod:`repro.models.perf`:

``t_inf``
    Saturated SM-compute time per request on one GPC at large batch
    (ms * GPC).  Scales inversely with instance size (raised to ``eta``).
``b_half``
    Batch size at which per-request compute efficiency reaches half its
    asymptote — small values mean batching barely matters for SM time.
``o0``, ``o1``, ``o_exp``
    Overlappable per-batch overhead ``o0 + o1 * b**o_exp`` (ms): host-device
    transfers, CPU pre/post-processing, kernel-launch gaps.  This part does
    not occupy SMs and therefore hides behind other MPS processes' compute.
``eta``
    GPC scaling exponent: compute time divides by ``g**eta``.  Values < 1
    capture that big instances are slightly less efficient per GPC, which is
    why small segments win throughput-per-GPC when the SLO allows them.
``weights_gb`` / ``act_gb_per_req`` / ``ctx_gb``
    Framebuffer footprint: weights + CUDA context are paid per process,
    activations per in-flight request.
``bw_intensity``
    Relative memory-bandwidth pressure in [0, 1]; drives the heterogeneous
    interference model used by the MPS-only baselines.

The parameter-count column reproduces Table IV exactly; the cost
coefficients are calibrated so that (a) the InceptionV3 numbers quoted in
SIII-B are matched (see ``tests/models/test_calibration.py``) and (b) the
relative throughput ordering across models follows published PyTorch A100
measurements (MobileNetV2 fastest ... BERT-large slowest).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """Static description + analytic cost coefficients of one workload."""

    name: str
    params_millions: float  #: Table IV row 1
    t_inf: float  #: ms*GPC per request, saturated
    b_half: float  #: batching half-saturation constant
    o0: float  #: fixed overhead ms
    o1: float  #: overhead batch coefficient
    o_exp: float  #: overhead batch exponent
    eta: float  #: GPC scaling exponent
    act_gb_per_req: float  #: activation memory per in-flight request (GB)
    bw_intensity: float  #: relative memory-bandwidth pressure, [0, 1]
    ctx_gb: float = 0.5  #: CUDA context + allocator overhead per process

    def __post_init__(self) -> None:
        if self.t_inf <= 0 or self.b_half < 0:
            raise ValueError(f"{self.name}: compute coefficients must be positive")
        if not 0.5 <= self.eta <= 1.1:
            raise ValueError(f"{self.name}: eta must be in [0.5, 1.1]")
        if not 0.0 <= self.bw_intensity <= 1.0:
            raise ValueError(f"{self.name}: bw_intensity must be in [0, 1]")

    @property
    def weights_gb(self) -> float:
        """FP32 weights + optimizer-free serving buffers (GB)."""
        return self.params_millions * 4e-3 * 1.25  # 4 B/param + 25% buffers


def _spec(
    name: str,
    params: float,
    t_inf: float,
    b_half: float,
    o0: float,
    o1: float,
    o_exp: float,
    eta: float,
    act: float,
    bw: float,
) -> ModelSpec:
    return ModelSpec(
        name=name,
        params_millions=params,
        t_inf=t_inf,
        b_half=b_half,
        o0=o0,
        o1=o1,
        o_exp=o_exp,
        eta=eta,
        act_gb_per_req=act,
        bw_intensity=bw,
    )


#: The Table-IV workload zoo, keyed by canonical lower-case name.
WORKLOADS: dict[str, ModelSpec] = {
    m.name: m
    for m in (
        _spec("bert-large", 330.0, 5.30, 2.00, 0.8, 0.90, 0.7, 1.00, 0.060, 0.55),
        _spec("densenet-121", 8.0, 1.40, 6.00, 0.7, 0.80, 0.7, 0.96, 0.030, 0.65),
        _spec("densenet-169", 14.1, 1.70, 6.00, 0.7, 0.85, 0.7, 0.96, 0.035, 0.65),
        _spec("densenet-201", 20.0, 2.05, 6.00, 0.7, 0.90, 0.7, 0.96, 0.040, 0.65),
        _spec("inceptionv3", 27.2, 1.91, 0.72, 0.5, 1.05, 0.7, 0.97, 0.035, 0.55),
        _spec("mobilenetv2", 3.5, 0.40, 8.00, 0.5, 0.45, 0.7, 0.88, 0.020, 0.40),
        _spec("resnet-101", 44.5, 2.20, 4.00, 0.6, 0.90, 0.7, 0.99, 0.040, 0.60),
        _spec("resnet-152", 60.2, 3.00, 4.00, 0.6, 1.00, 0.7, 1.00, 0.050, 0.60),
        _spec("resnet-50", 25.6, 1.25, 4.00, 0.6, 0.80, 0.7, 0.99, 0.030, 0.60),
        _spec("vgg-16", 138.4, 2.55, 1.50, 0.7, 1.00, 0.7, 1.00, 0.045, 0.80),
        _spec("vgg-19", 143.7, 2.95, 1.50, 0.7, 1.05, 0.7, 1.00, 0.050, 0.80),
    )
}

#: Table IV column order, used by scenario tables and experiment output.
TABLE_IV_ORDER: tuple[str, ...] = (
    "bert-large",
    "densenet-121",
    "densenet-169",
    "densenet-201",
    "inceptionv3",
    "mobilenetv2",
    "resnet-101",
    "resnet-152",
    "resnet-50",
    "vgg-16",
    "vgg-19",
)


def model_names() -> tuple[str, ...]:
    """All workload names in Table IV order."""
    return TABLE_IV_ORDER


def get_model(name: str) -> ModelSpec:
    """Look a workload up by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        return WORKLOADS[key]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
