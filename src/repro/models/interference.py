"""Cross-workload interference for heterogeneous MPS sharing.

ParvaGPU never co-locates *different* workloads under one MPS daemon — MIG
walls them off — so it needs no interference model.  The MPS-only baselines
do: gpulet and iGniter put two or more different services on one GPU, where
L2 and memory-bandwidth contention slow everyone down (SII-A of the paper,
and the Prophet observation it cites).

We model the slowdown a workload suffers as proportional to the co-runners'
memory-bandwidth intensity::

    slowdown_i = 1 + kappa * sum_{j != i} bw_intensity_j * f_j

where ``f_j`` is co-runner ``j``'s share of the GPU.  This captures the two
facts the baselines' behaviour depends on: interference grows with the
co-runner's bandwidth appetite, and a bigger co-runner partition hurts more.

gpulet *predicts* interference from pairwise profiling and its prediction
carries error (the paper attributes gpulet's S2 SLO violations to exactly
this).  :class:`InterferenceOracle` exposes both the ground truth used by
the simulator and a deterministically-perturbed prediction used by the
gpulet scheduler, so the scheduler can genuinely under-provision.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.models.zoo import ModelSpec

#: Strength of bandwidth-driven MPS interference.  0.45 means a co-runner
#: with bw_intensity 0.8 occupying the whole rest of the GPU inflates a
#: bandwidth-sensitive victim's latency by ~30%, the upper end of the
#: contention ranges reported by Prophet/iGniter — and just beyond the 10%
#: budget gpulet sizes against, so its worst mispredicted pairs overload.
DEFAULT_KAPPA = 0.45


@dataclass(frozen=True)
class Corunner:
    """A co-located workload and its share of the GPU's SMs."""

    spec: ModelSpec
    share: float  #: fraction of the GPU's SMs, in (0, 1]

    def __post_init__(self) -> None:
        if not 0.0 < self.share <= 1.0:
            raise ValueError(f"share must be in (0, 1], got {self.share}")


class InterferenceModel:
    """Ground-truth heterogeneous-MPS slowdown."""

    def __init__(self, kappa: float = DEFAULT_KAPPA):
        if kappa < 0:
            raise ValueError("kappa must be non-negative")
        self.kappa = kappa

    def slowdown(self, victim: ModelSpec, corunners: Sequence[Corunner]) -> float:
        """Multiplicative latency factor suffered by ``victim`` (>= 1)."""
        pressure = sum(
            c.spec.bw_intensity * c.share
            for c in corunners
            if c.spec.name != victim.name
        )
        # The victim's own sensitivity scales with how bandwidth-hungry it is:
        # compute-bound models hide contention better.
        sensitivity = 0.5 + 0.5 * victim.bw_intensity
        return 1.0 + self.kappa * sensitivity * pressure


class InterferenceOracle:
    """Ground truth + an error-prone predictor (gpulet's view of the world).

    The prediction error is a deterministic pseudo-random perturbation in
    ``[-max_error, +max_error]`` derived from the pair of model names, so
    schedulers are reproducible while still being wrong about specific pairs
    — negative values mean gpulet *underestimates* interference and may
    violate SLOs, exactly the S2 failure the paper reports.
    """

    def __init__(self, kappa: float = DEFAULT_KAPPA, max_error: float = 0.35):
        self.truth = InterferenceModel(kappa)
        self.max_error = max_error

    def actual_slowdown(
        self, victim: ModelSpec, corunners: Sequence[Corunner]
    ) -> float:
        return self.truth.slowdown(victim, corunners)

    def _pair_error(self, a: str, b: str) -> float:
        digest = hashlib.sha256(f"{min(a, b)}|{max(a, b)}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return (2.0 * unit - 1.0) * self.max_error

    def predicted_slowdown(
        self, victim: ModelSpec, corunners: Sequence[Corunner]
    ) -> float:
        """gpulet's estimate: truth with the interference *term* perturbed."""
        actual = self.truth.slowdown(victim, corunners)
        if not corunners:
            return actual
        # Perturb the interference component (not the baseline 1.0) by the
        # average pairwise error against the co-runner set.
        errs = [
            self._pair_error(victim.name, c.spec.name)
            for c in corunners
            if c.spec.name != victim.name
        ]
        if not errs:
            return actual
        err = sum(errs) / len(errs)
        return 1.0 + (actual - 1.0) * (1.0 + err)
