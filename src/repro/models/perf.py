"""Analytic performance model: ``(model, instance, batch, procs) -> perf``.

The model is a roofline with compute/overhead overlap, built from the
workload-characteristic observations of the paper's SIII-B (Figures 3/4):

* Per-batch **SM compute time** on a size-``g`` instance::

      C = t_inf * (b + b_half) / g**eta          [ms]

  Linear in batch with a small intercept (large batches amortize fixed
  kernel work), divided by an ``eta``-damped instance size (big instances
  are slightly less efficient per GPC).

* Per-batch **overlappable overhead** (host-device copies, CPU work,
  launch gaps) that does not occupy SMs::

      O = o0 + o1 * b**o_exp                     [ms]

* With ``p`` MPS processes of the *same* workload sharing the instance, the
  SMs serve the processes' compute phases back-to-back while overheads hide
  behind other processes' compute.  Until the SMs saturate
  (``p*C < C + O``), per-process latency stays near ``C + O`` and
  throughput scales with ``p``; past saturation the SM pipe is the
  bottleneck::

      L(p) = max(p*C, C + O) * (1 + kappa*(p-1))  [ms]
      T(p) = 1000 * p * b / L(p)                  [requests/s]

  ``kappa`` is a small MPS scheduling-contention tax.

This reproduces the paper's quoted InceptionV3 anchors: on a size-1
instance at batch 4, throughput 354/444/446 and latency 11/18/27 ms for
1/2/3 processes (slight gain, 1.6x/2.45x latency); on size 4 at batch 8,
throughput 786/1695/1810 with latency ~10/9/13 ms (big gain, flat latency).

The same equations serve the MPS-percentage baselines (gpulet, iGniter) by
treating a fraction ``f`` of a whole GPU as an effective instance size
``g = 7*f`` (continuous, since MPS quotas are not slice-quantized).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.mig import INSTANCE_SIZES
from repro.gpu.memory import instance_memory_gb
from repro.models.zoo import ModelSpec

#: Batch sizes the profiler sweeps (SIII-C: eight common sizes, 1..128).
PROFILE_BATCH_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)

#: Process counts the profiler sweeps (SIII-C caps at three).
PROFILE_PROCESS_COUNTS: tuple[int, ...] = (1, 2, 3)

#: Largest batch considered anywhere.
MAX_BATCH = 128

#: MPS scheduling-contention tax per extra process.
MPS_CONTENTION = 0.02


@dataclass(frozen=True)
class OperatingPoint:
    """Performance of one (instance, batch, procs) operating point."""

    model: str
    instance_size: float  #: GPCs (float to admit MPS fractions of a GPU)
    batch_size: int
    num_processes: int
    latency_ms: float  #: per-batch completion latency seen by a request
    throughput: float  #: aggregate requests/s of the whole segment
    memory_gb: float  #: framebuffer footprint
    sm_activity: float  #: fraction of allocated SM-time busy at this point

    @property
    def throughput_per_gpc(self) -> float:
        """The Demand-Matching objective (Eq. 2 of the paper)."""
        return self.throughput / self.instance_size


class PerfModel:
    """Evaluate the analytic model for one workload.

    ``generation`` optionally selects a
    :class:`~repro.gpu.generations.GPUGeneration` whose memory map replaces
    the default A100-80GB one — compute behaviour is generation-invariant
    in this model within the NVIDIA line (the paper's Discussion:
    identical MIG configurations across Ampere/Hopper/Blackwell), only OOM
    boundaries move.

    ``geometry`` optionally retargets the model at another
    :class:`~repro.gpu.geometry.PartitionGeometry` entirely (e.g. the
    MI300X): instance sizes are then that geometry's slice counts, memory
    capacities come from its memory map, and compute scales through its
    ``gpc_equiv_per_slice`` (an XCD is worth ~1.4 A100 GPCs here), so one
    analytic surface serves every backend.
    """

    def __init__(
        self,
        spec: ModelSpec,
        contention: float = MPS_CONTENTION,
        generation=None,
        geometry=None,
    ):
        self.spec = spec
        self.contention = contention
        self.generation = generation
        self.geometry = geometry

    # ------------------------------------------------------------------ #
    # primitive quantities
    # ------------------------------------------------------------------ #

    def compute_ms(self, gpcs: float, batch: int) -> float:
        """SM compute time of one batch on ``gpcs`` worth of instance."""
        if gpcs <= 0:
            raise ValueError("instance size must be positive")
        if batch < 1:
            raise ValueError("batch size must be >= 1")
        s = self.spec
        return s.t_inf * (batch + s.b_half) / gpcs**s.eta

    def overhead_ms(self, batch: int) -> float:
        """Overlappable non-SM overhead of one batch."""
        s = self.spec
        return s.o0 + s.o1 * batch**s.o_exp

    def memory_gb(self, batch: int, procs: int) -> float:
        """Framebuffer footprint of ``procs`` processes at ``batch``."""
        s = self.spec
        per_proc = s.weights_gb + s.ctx_gb + s.act_gb_per_req * batch
        return per_proc * procs

    def fits(self, size: int, batch: int, procs: int) -> bool:
        """Whether the operating point avoids OOM on a size-``size`` instance."""
        if self.geometry is not None:
            capacity = self.geometry.instance_memory_gb(size)
        elif self.generation is not None:
            capacity = self.generation.instance_memory_gb(size)
        else:
            capacity = instance_memory_gb(size)
        return self.memory_gb(batch, procs) <= capacity

    def effective_gpcs(self, size: float) -> float:
        """``size`` slices of the active geometry in A100-GPC equivalents."""
        if self.geometry is None:
            return float(size)
        return self.geometry.gpc_equivalent(size)

    # ------------------------------------------------------------------ #
    # the model
    # ------------------------------------------------------------------ #

    def latency_ms(self, gpcs: float, batch: int, procs: int) -> float:
        """Per-batch latency with ``procs`` homogeneous MPS processes."""
        if procs < 1:
            raise ValueError("process count must be >= 1")
        c = self.compute_ms(gpcs, batch)
        o = self.overhead_ms(batch)
        base = max(procs * c, c + o)
        return base * (1.0 + self.contention * (procs - 1))

    def throughput(self, gpcs: float, batch: int, procs: int) -> float:
        """Aggregate requests/s of the segment."""
        return 1000.0 * procs * batch / self.latency_ms(gpcs, batch, procs)

    def sm_activity(self, gpcs: float, batch: int, procs: int) -> float:
        """Fraction of the segment's SM-time that is busy.

        The SMs are busy for ``procs * C`` out of every ``L`` milliseconds
        (each process contributes one compute phase per batch period).
        """
        c = self.compute_ms(gpcs, batch)
        lat = self.latency_ms(gpcs, batch, procs)
        return min(1.0, procs * c / lat)

    def evaluate(self, size: float, batch: int, procs: int) -> OperatingPoint:
        """Full :class:`OperatingPoint` for an instance size (or fraction).

        ``instance_size`` is recorded in the active geometry's own slices;
        latency/throughput are computed on the GPC-equivalent compute.
        """
        gpcs = self.effective_gpcs(size)
        return OperatingPoint(
            model=self.spec.name,
            instance_size=size,
            batch_size=batch,
            num_processes=procs,
            latency_ms=self.latency_ms(gpcs, batch, procs),
            throughput=self.throughput(gpcs, batch, procs),
            memory_gb=self.memory_gb(batch, procs),
            sm_activity=self.sm_activity(gpcs, batch, procs),
        )

    # ------------------------------------------------------------------ #
    # convenience sweeps
    # ------------------------------------------------------------------ #

    def sweep(
        self,
        sizes: tuple[int, ...] | None = None,
        batches: tuple[int, ...] = PROFILE_BATCH_SIZES,
        procs: tuple[int, ...] = PROFILE_PROCESS_COUNTS,
        skip_oom: bool = True,
    ) -> list[OperatingPoint]:
        """Evaluate the full profiling grid, dropping OOM points by default."""
        if sizes is None:
            sizes = (
                self.geometry.instance_sizes
                if self.geometry is not None
                else INSTANCE_SIZES
            )
        points: list[OperatingPoint] = []
        for g in sizes:
            for b in batches:
                for p in procs:
                    if skip_oom and not self.fits(g, b, p):
                        continue
                    points.append(self.evaluate(g, b, p))
        return points

    def max_single_gpu_throughput(self, slo_ms: float) -> float:
        """Best single-process whole-GPU throughput under a latency bound.

        Used by the iGniter baseline's feasibility gate: a service whose
        request rate exceeds this cannot be served by one GPU partition.
        """
        best = 0.0
        for b in PROFILE_BATCH_SIZES:
            if not self.fits(7, b, 1):
                continue
            if self.latency_ms(7.0, b, 1) <= slo_ms:
                best = max(best, self.throughput(7.0, b, 1))
        return best
