"""DNN workload zoo and the analytic GPU performance model.

Real ParvaGPU profiles PyTorch models on physical A100 MIG instances.  This
package replaces that hardware layer with a calibrated analytic model:

- :mod:`repro.models.zoo`          -- the 11 Table-IV workloads and their
  per-model cost parameters.
- :mod:`repro.models.perf`         -- ``(model, instance, batch, procs) ->
  (latency, throughput, memory)``; a roofline-with-overlap model calibrated
  against the InceptionV3 anchor measurements quoted in SIII-B.
- :mod:`repro.models.interference` -- cross-workload slowdowns for
  *heterogeneous* MPS sharing (used only by the gpulet/iGniter baselines;
  ParvaGPU's homogeneous segments avoid it by construction).
"""

from repro.models.zoo import ModelSpec, WORKLOADS, get_model, model_names
from repro.models.perf import (
    MAX_BATCH,
    OperatingPoint,
    PerfModel,
    PROFILE_BATCH_SIZES,
    PROFILE_PROCESS_COUNTS,
)
from repro.models.interference import InterferenceModel, InterferenceOracle

__all__ = [
    "ModelSpec",
    "WORKLOADS",
    "get_model",
    "model_names",
    "MAX_BATCH",
    "OperatingPoint",
    "PerfModel",
    "PROFILE_BATCH_SIZES",
    "PROFILE_PROCESS_COUNTS",
    "InterferenceModel",
    "InterferenceOracle",
]
