"""ShardPool survival ladder: crashes, hangs, degradation, cancellation.

Worker processes die on purpose here (``os._exit`` via the fault
injector) and jobs hang on purpose (injected delays past the pool's
deadline); the pool must recover through rebuild → retry → degrade →
inline while returning exactly the results a healthy pool would — and
a job's *own* exception must cancel its outstanding siblings and
surface as the first positional error, never as a pool failure.
"""

import time

import pytest

from repro.parallel import ShardPool
from repro.resilience import FaultPlan, WorkerFaultInjector

#: keep recovery fast in tests — the ladder, not the waits, is under test
FAST = {"backoff_s": 0.0}


def square(x):
    return x * x


def raise_on_negative(x):
    if x < 0:
        raise ValueError(f"bad job {x}")
    time.sleep(0.02)
    return x


def slow_identity(x):
    time.sleep(0.05)
    return x


class AlwaysCrash:
    """Kills the worker on *every* attempt — the ladder's worst case.

    Module-level (unlike the seeded injectors) because instances must
    pickle into worker processes.
    """

    def before(self, batch, attempt, index, in_worker):
        if in_worker:
            import os

            os._exit(43)


class TestHealthyPath:
    def test_results_in_job_order(self):
        with ShardPool(2, **FAST) as pool:
            assert pool.run(square, list(range(20))) == [
                x * x for x in range(20)
            ]
            assert pool.health.batches == 1
            assert pool.health.worker_crashes == 0

    def test_inline_mode_matches_pooled(self):
        jobs = list(range(15))
        with ShardPool(1, **FAST) as inline, ShardPool(2, **FAST) as pooled:
            assert inline.run(square, jobs) == pooled.run(square, jobs)
            assert inline.health.inline_batches == 1
            assert pooled.health.inline_batches == 0

    def test_empty_batch_is_free(self):
        with ShardPool(2, **FAST) as pool:
            assert pool.run(square, []) == []
            assert pool.health.batches == 0


class TestWorkerCrash:
    def test_crash_recovers_with_identical_results(self):
        injector = WorkerFaultInjector(crash_jobs=((0, 1),))
        with ShardPool(2, fault_injector=injector, **FAST) as pool:
            assert pool.run(square, list(range(8))) == [
                x * x for x in range(8)
            ]
            assert pool.health.worker_crashes >= 1
            assert pool.health.pool_rebuilds >= 1
            assert pool.health.retries >= 1

    def test_crash_surfacing_at_next_submit_recovers(self):
        """A death noticed only at the next batch's submit() still heals."""
        injector = WorkerFaultInjector(crash_jobs=((1, 0),))
        with ShardPool(2, fault_injector=injector, **FAST) as pool:
            for batch in range(4):
                jobs = list(range(batch, batch + 6))
                assert pool.run(square, jobs) == [x * x for x in jobs]
            assert pool.health.worker_crashes >= 1
            assert pool.health.pool_rebuilds >= 1

    def test_seeded_plan_recovers_every_batch(self):
        injector = FaultPlan(
            seed=5, worker_crashes=3, max_batch=5, max_index=2
        ).injector()
        with ShardPool(2, fault_injector=injector, **FAST) as pool:
            for batch in range(5):
                jobs = list(range(6))
                assert pool.run(square, jobs) == [x * x for x in jobs]
            assert pool.health.worker_crashes > 0

    def test_persistent_crashes_degrade_to_inline(self):
        """Faults on every attempt force the ladder all the way down."""
        with ShardPool(
            2, fault_injector=AlwaysCrash(), max_attempts=2, **FAST
        ) as pool:
            assert pool.run(square, [1, 2, 3]) == [1, 4, 9]
            assert pool.health.degradations >= 1
            assert pool.health.inline_batches == 1
            assert pool.health.active_workers == 1
            # the degraded width is sticky: the next batch starts inline
            assert pool.run(square, [4]) == [16]
            assert pool.health.inline_batches == 2


class TestHungWorker:
    def test_timeout_kills_and_recovers(self):
        injector = WorkerFaultInjector(delay_jobs=((0, 0),), delay_s=30.0)
        with ShardPool(
            2, fault_injector=injector, job_timeout_s=0.3, **FAST
        ) as pool:
            t0 = time.monotonic()  # repro-lint: disable=D002 (elapsed wall time IS the quantity under test: the hung worker must be killed, not awaited)
            assert pool.run(square, [5, 6]) == [25, 36]
            elapsed = time.monotonic() - t0  # repro-lint: disable=D002 (see above)
            assert elapsed < 10  # killed, not awaited for the 30 s delay
            assert pool.health.timeouts >= 1
            assert pool.health.pool_rebuilds >= 1

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError, match="job_timeout_s"):
            ShardPool(2, job_timeout_s=0.0)


class TestJobException:
    """The satellite regression: a failing job is the *caller's* problem
    (first positional error, siblings cancelled), not a pool failure."""

    def test_first_positional_error_surfaces(self):
        with ShardPool(2, **FAST) as pool:
            with pytest.raises(ValueError, match="bad job -3"):
                pool.run(raise_on_negative, [-3, 1, -7, 2])
            # no pool-level recovery fired for a job-level bug
            assert pool.health.worker_crashes == 0
            assert pool.health.retries == 0

    def test_siblings_are_cancelled(self):
        with ShardPool(2, **FAST) as pool:
            jobs = [-1] + list(range(40))
            with pytest.raises(ValueError, match="bad job -1"):
                pool.run(raise_on_negative, jobs)
            assert pool.health.cancelled_siblings > 0

    def test_pool_still_usable_after_job_error(self):
        with ShardPool(2, **FAST) as pool:
            with pytest.raises(ValueError):
                pool.run(raise_on_negative, [-1, 1, 2])
            assert pool.run(square, [3, 4]) == [9, 16]

    def test_inline_job_error_propagates(self):
        with ShardPool(1, **FAST) as pool:
            with pytest.raises(ValueError, match="bad job -9"):
                pool.run(raise_on_negative, [-9])


class TestInjectorScoping:
    def test_crash_faults_never_fire_inline(self):
        """in_worker=False guards the parent process from kill faults."""
        injector = WorkerFaultInjector(crash_jobs=((0, 0), (1, 0), (2, 0)))
        with ShardPool(1, fault_injector=injector, **FAST) as pool:
            assert pool.run(square, [2, 3]) == [4, 9]
            assert pool.health.worker_crashes == 0

    def test_faults_fire_only_on_first_attempt(self):
        injector = WorkerFaultInjector(crash_jobs=((0, 0),))
        with ShardPool(2, fault_injector=injector, max_attempts=3, **FAST) as pool:
            assert pool.run(square, [1, 2, 3, 4]) == [1, 4, 9, 16]
            # exactly one crash: the retry (attempt 1) ran clean
            assert pool.health.worker_crashes == 1

    def test_plan_is_deterministic(self):
        plan = FaultPlan(seed=11, worker_crashes=2, job_delays=1, delay_s=0.1)
        assert plan.injector() == plan.injector()
        assert plan.injector() != FaultPlan(
            seed=12, worker_crashes=2, job_delays=1, delay_s=0.1
        ).injector()
