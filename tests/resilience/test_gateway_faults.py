"""The gateway's degradation ladder under injected transport faults.

Rung by rung: a malformed line is skipped and counted; a transient
source stall is retried with the already-delivered prefix deduplicated;
an exhausted retry budget ends the session in *safe mode* — counted,
stamped with the terminal error, final checkpoint flushed — and in
every recovered case the session's report is bit-identical to a clean
run over the same events, because resilience that changes results is
just corruption with better manners.
"""

import asyncio

import pytest

from repro.core.service import Service
from repro.ops import FleetController, read_checkpoint
from repro.ops.controller import assert_reports_identical
from repro.ops.events import RateEpoch, merge_timeline
from repro.resilience import stalling_source_factory, truncate_journal
from repro.serve import (
    Journal,
    ServeGateway,
    VirtualClock,
    encode_event,
    jsonl_source,
    read_journal,
    replay_journal,
    resilient_source,
    timeline_source,
)

HORIZON_S = 100.0
MEASURE_S = 0.1


@pytest.fixture
def services():
    return [
        Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
        Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
    ]


def timeline():
    return merge_timeline(
        [
            RateEpoch(time_s=10.0 * k, service_id="a", rate=2000.0 + 500 * k)
            for k in range(1, 5)
        ],
        [
            RateEpoch(time_s=10.0 * k + 5, service_id="b", rate=4000.0 - 300 * k)
            for k in range(1, 5)
        ],
    )


def make_gateway(profiles, services, **kwargs):
    return ServeGateway(
        FleetController(profiles), services, HORIZON_S, VirtualClock(),
        measure_s=MEASURE_S, **kwargs,
    )


def run_session(gateway, source):
    asyncio.run(gateway.run(source))
    return gateway.report


@pytest.fixture
def reference(profiles, services):
    return run_session(
        make_gateway(profiles, services), timeline_source(timeline())
    )


class TestMalformedLines:
    def test_skipped_counted_and_identical(
        self, profiles, services, reference
    ):
        lines = [encode_event(e) for e in timeline()]
        lines.insert(2, "}{ definitely not an event")
        lines.append('{"kind": "Nope", "time_s": 1.0}')
        gateway = make_gateway(profiles, services)
        report = run_session(
            gateway,
            jsonl_source(lines, on_malformed=gateway.count_malformed),
        )
        assert gateway.health.malformed_lines == 2
        assert not gateway.health.safe_mode
        assert_reports_identical(report, reference)

    def test_without_handler_the_line_is_fatal(self):
        async def drain():
            return [e async for e in jsonl_source(["not json"])]

        with pytest.raises(ValueError):
            asyncio.run(drain())


class TestSourceStalls:
    def test_transient_stalls_recovered_identically(
        self, profiles, services, reference
    ):
        gateway = make_gateway(profiles, services)
        source = resilient_source(
            stalling_source_factory(timeline(), fail_after=3, failures=2),
            backoff_s=0.0,
            on_retry=gateway.count_retry,
        )
        report = run_session(gateway, source)
        assert gateway.health.source_retries == 2
        assert gateway.health.source_failures == 0
        assert not gateway.health.safe_mode
        assert_reports_identical(report, reference)

    def test_exhausted_budget_enters_safe_mode(
        self, profiles, services, tmp_path
    ):
        ck = tmp_path / "final.json"
        gateway = make_gateway(profiles, services, checkpoint_path=ck)
        source = resilient_source(
            stalling_source_factory(timeline(), fail_after=3, failures=99),
            max_retries=2,
            backoff_s=0.0,
            on_retry=gateway.count_retry,
        )
        report = run_session(gateway, source)  # degrades, does not raise
        assert gateway.health.safe_mode
        assert gateway.health.source_failures == 1
        assert gateway.health.source_retries == 2
        doc = gateway.health_doc()
        assert "ConnectionError" in doc["source_error"]
        # the session still closed cleanly over what it did receive...
        assert report.intervals
        # ...and the terminal flush left a restorable checkpoint behind
        assert gateway.health.checkpoint_writes >= 1
        assert read_checkpoint(ck)


class TestJournalReplay:
    def test_journaled_session_replays_identically(
        self, profiles, services, reference, tmp_path
    ):
        gateway = make_gateway(
            profiles, services, journal=Journal(tmp_path)
        )
        live = run_session(gateway, timeline_source(timeline()))
        assert_reports_identical(live, reference)
        assert read_journal(tmp_path).events == list(timeline())
        replayed, recovery = replay_journal(
            tmp_path, services, HORIZON_S,
            measure_s=MEASURE_S, profiles=profiles,
        )
        assert recovery.events == list(timeline())
        assert not recovery.truncated_tail
        assert_reports_identical(replayed, reference)

    def test_torn_journal_replays_the_surviving_prefix(
        self, profiles, services, tmp_path
    ):
        gateway = make_gateway(
            profiles, services, journal=Journal(tmp_path)
        )
        run_session(gateway, timeline_source(timeline()))
        truncate_journal(tmp_path, 7)  # tear the final append

        replayed, recovery = replay_journal(
            tmp_path, services, HORIZON_S,
            measure_s=MEASURE_S, profiles=profiles,
        )
        assert recovery.truncated_tail
        assert recovery.events == list(timeline())[:-1]
        prefix_reference = run_session(
            make_gateway(profiles, services),
            timeline_source(timeline()[:-1]),
        )
        assert_reports_identical(replayed, prefix_reference)
