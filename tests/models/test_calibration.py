"""Calibration tests: the model must match the paper's quoted measurements.

SIII-B quotes InceptionV3 on an A100: instance 1 / batch 4 gives
throughput 354/444/446 req/s and latency 11/18/27 ms for 1/2/3 MPS
processes; instance 4 / batch 8 gives 786/1695/1810 req/s at 10/9/13 ms.
We require every anchor within 20% (the paper's own numbers carry
measurement noise — latency *decreases* from 1 to 2 processes in one
case) and the qualitative ratios the paper emphasizes exactly.
"""

import pytest

from repro.models.perf import PerfModel
from repro.models.zoo import get_model

ANCHORS = [
    # (gpcs, batch, procs, throughput, latency_ms)
    (1, 4, 1, 354, 11),
    (1, 4, 2, 444, 18),
    (1, 4, 3, 446, 27),
    (4, 8, 1, 786, 10),
    (4, 8, 2, 1695, 9),
    (4, 8, 3, 1810, 13),
]

TOLERANCE = 0.20


@pytest.fixture(scope="module")
def inception():
    return PerfModel(get_model("inceptionv3"))


@pytest.mark.parametrize("g,b,p,tp,lat", ANCHORS)
def test_throughput_anchor(inception, g, b, p, tp, lat):
    measured = inception.throughput(g, b, p)
    assert measured == pytest.approx(tp, rel=TOLERANCE)


@pytest.mark.parametrize("g,b,p,tp,lat", ANCHORS)
def test_latency_anchor(inception, g, b, p, tp, lat):
    measured = inception.latency_ms(g, b, p)
    assert measured == pytest.approx(lat, rel=TOLERANCE + 0.05)


def test_small_instance_latency_ratios(inception):
    """SIII-B: latency rises 1.6x then 2.45x on the saturated instance."""
    l1 = inception.latency_ms(1, 4, 1)
    l2 = inception.latency_ms(1, 4, 2)
    l3 = inception.latency_ms(1, 4, 3)
    assert l2 / l1 == pytest.approx(1.6, rel=0.15)
    assert l3 / l1 == pytest.approx(2.45, rel=0.15)


def test_small_instance_throughput_plateaus(inception):
    tp1 = inception.throughput(1, 4, 1)
    tp2 = inception.throughput(1, 4, 2)
    tp3 = inception.throughput(1, 4, 3)
    assert tp2 > tp1  # some improvement
    assert abs(tp3 - tp2) / tp2 < 0.10  # then a plateau

def test_large_instance_scales_instead(inception):
    tp1 = inception.throughput(4, 8, 1)
    tp3 = inception.throughput(4, 8, 3)
    l1 = inception.latency_ms(4, 8, 1)
    l3 = inception.latency_ms(4, 8, 3)
    assert tp3 / tp1 > 2.0  # "significant increase in throughput"
    assert l3 / l1 < 1.6  # "increases in latency are minimal"


def test_profiler_noise_within_tolerance(clean_profiles, profiles):
    """1% profiling jitter must not move anchors outside tolerance."""
    noisy = profiles["inceptionv3"].lookup(1, 4, 2)
    clean = clean_profiles["inceptionv3"].lookup(1, 4, 2)
    assert noisy.throughput == pytest.approx(clean.throughput, rel=0.03)
