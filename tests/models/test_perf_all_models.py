"""Cross-model performance-model invariants, parametrized over the zoo.

These are the structural properties every workload's surface must satisfy
for the scheduling algorithms to be meaningful — violations would silently
corrupt triplet decisions (e.g. a non-monotone latency surface could make
the SLO filter admit an unstable point).
"""

import pytest

from repro.gpu.mig import INSTANCE_SIZES
from repro.models.perf import PROFILE_BATCH_SIZES, PerfModel
from repro.models.zoo import TABLE_IV_ORDER, get_model


@pytest.fixture(params=TABLE_IV_ORDER, scope="module")
def perf(request):
    return PerfModel(get_model(request.param))


class TestSurfaceShape:
    def test_latency_monotone_in_batch(self, perf):
        for g in INSTANCE_SIZES:
            lats = [perf.latency_ms(g, b, 1) for b in PROFILE_BATCH_SIZES]
            assert lats == sorted(lats), perf.spec.name

    def test_latency_monotone_in_procs(self, perf):
        for g in (1, 3, 7):
            for b in (1, 16, 128):
                lats = [perf.latency_ms(g, b, p) for p in (1, 2, 3)]
                assert lats == sorted(lats), perf.spec.name

    def test_latency_antitone_in_instance(self, perf):
        for b in (1, 16, 128):
            lats = [perf.latency_ms(g, b, 1) for g in INSTANCE_SIZES]
            assert lats == sorted(lats, reverse=True), perf.spec.name

    def test_throughput_nondecreasing_in_procs(self, perf):
        """Extra MPS processes never *reduce* throughput by more than the
        contention tax (a few percent)."""
        for g in INSTANCE_SIZES:
            for b in (4, 32):
                tps = [perf.throughput(g, b, p) for p in (1, 2, 3)]
                assert tps[1] >= tps[0] * 0.95, perf.spec.name
                assert tps[2] >= tps[1] * 0.93, perf.spec.name

    def test_throughput_increasing_in_instance(self, perf):
        for b in (8, 64):
            tps = [perf.throughput(g, b, 2) for g in INSTANCE_SIZES]
            assert tps == sorted(tps), perf.spec.name


class TestMemorySurface:
    def test_memory_independent_of_instance(self, perf):
        assert perf.memory_gb(16, 2) == perf.memory_gb(16, 2)

    def test_weights_dominate_at_batch_one(self, perf):
        assert perf.memory_gb(1, 1) >= perf.spec.weights_gb

    def test_some_point_fits_some_instance(self, perf):
        assert any(
            perf.fits(g, b, p)
            for g in INSTANCE_SIZES
            for b in PROFILE_BATCH_SIZES
            for p in (1, 2, 3)
        ), perf.spec.name

    def test_oom_monotone(self, perf):
        """If (b, p) fits an instance, every smaller (b', p') fits too."""
        for g in INSTANCE_SIZES:
            for b in (8, 64):
                for p in (2, 3):
                    if perf.fits(g, b, p):
                        assert perf.fits(g, b // 2, p)
                        assert perf.fits(g, b, p - 1)


class TestActivitySurface:
    def test_activity_valid_everywhere(self, perf):
        for g in INSTANCE_SIZES:
            for b in (1, 16, 128):
                for p in (1, 2, 3):
                    a = perf.sm_activity(g, b, p)
                    assert 0.0 < a <= 1.0, perf.spec.name

    def test_more_procs_more_activity(self, perf):
        for g in (1, 4):
            acts = [perf.sm_activity(g, 16, p) for p in (1, 2, 3)]
            assert acts[2] >= acts[0], perf.spec.name
