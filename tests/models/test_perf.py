"""Unit tests for the analytic performance model's structural properties."""

import pytest

from repro.gpu.mig import INSTANCE_SIZES
from repro.models.perf import (
    MAX_BATCH,
    PROFILE_BATCH_SIZES,
    PROFILE_PROCESS_COUNTS,
    PerfModel,
)
from repro.models.zoo import get_model


@pytest.fixture(scope="module")
def perf():
    return PerfModel(get_model("resnet-50"))


class TestGrid:
    def test_profile_grid_shape(self):
        assert PROFILE_BATCH_SIZES == (1, 2, 4, 8, 16, 32, 64, 128)
        assert PROFILE_PROCESS_COUNTS == (1, 2, 3)
        assert MAX_BATCH == 128


class TestComputeAndOverhead:
    def test_compute_scales_down_with_instance(self, perf):
        assert perf.compute_ms(4, 16) < perf.compute_ms(1, 16)

    def test_compute_grows_with_batch(self, perf):
        assert perf.compute_ms(1, 32) > perf.compute_ms(1, 16)

    def test_overhead_grows_with_batch(self, perf):
        assert perf.overhead_ms(64) > perf.overhead_ms(1)

    def test_invalid_inputs(self, perf):
        with pytest.raises(ValueError):
            perf.compute_ms(0, 1)
        with pytest.raises(ValueError):
            perf.compute_ms(1, 0)
        with pytest.raises(ValueError):
            perf.latency_ms(1, 1, 0)


class TestWorkloadCharacteristics:
    """The SIII-B observations that drive the whole design."""

    def test_latency_decreases_with_instance_size(self, perf):
        lats = [perf.latency_ms(g, 16, 1) for g in INSTANCE_SIZES]
        assert lats == sorted(lats, reverse=True)

    def test_latency_increases_with_batch(self, perf):
        for g in (1, 4):
            lats = [perf.latency_ms(g, b, 1) for b in PROFILE_BATCH_SIZES]
            assert lats == sorted(lats)

    def test_latency_nondecreasing_with_procs(self, perf):
        for g in (1, 4):
            for b in (4, 32):
                lats = [perf.latency_ms(g, b, p) for p in (1, 2, 3)]
                assert lats == sorted(lats)

    def test_throughput_saturates_on_small_instance(self, perf):
        """Small instance + big batch: more processes ~ flat throughput but
        much higher latency (the size-1/batch-4 InceptionV3 observation)."""
        tp1 = perf.throughput(1, 32, 1)
        tp3 = perf.throughput(1, 32, 3)
        lat1 = perf.latency_ms(1, 32, 1)
        lat3 = perf.latency_ms(1, 32, 3)
        assert tp3 < tp1 * 1.6  # diminishing returns
        assert lat3 > 2.0 * lat1  # disproportionate latency

    def test_throughput_scales_on_big_instance(self, perf):
        """Big instance + modest batch: processes overlap the overhead."""
        tp1 = perf.throughput(4, 8, 1)
        tp2 = perf.throughput(4, 8, 2)
        lat1 = perf.latency_ms(4, 8, 1)
        lat2 = perf.latency_ms(4, 8, 2)
        assert tp2 > 1.6 * tp1
        assert lat2 < 1.3 * lat1

    def test_sm_activity_bounds(self, perf):
        for g in INSTANCE_SIZES:
            for b in (1, 16, 128):
                for p in (1, 2, 3):
                    assert 0.0 < perf.sm_activity(g, b, p) <= 1.0

    def test_saturated_activity_near_one(self, perf):
        # Three processes on a small instance keep the SMs busy.
        assert perf.sm_activity(1, 32, 3) > 0.9


class TestMemory:
    def test_memory_grows_with_batch_and_procs(self, perf):
        assert perf.memory_gb(32, 1) > perf.memory_gb(1, 1)
        assert perf.memory_gb(8, 3) > perf.memory_gb(8, 1)

    def test_oom_on_small_instance(self):
        bert = PerfModel(get_model("bert-large"))
        # 3 processes of BERT at batch 128 cannot fit 10 GB.
        assert not bert.fits(1, 128, 3)
        assert bert.fits(7, 128, 3)

    def test_sweep_skips_oom(self):
        bert = PerfModel(get_model("bert-large"))
        points = bert.sweep()
        assert all(
            p.memory_gb <= {1: 10, 2: 20, 3: 40, 4: 40, 7: 80}[int(p.instance_size)]
            for p in points
        )
        full = len(INSTANCE_SIZES) * len(PROFILE_BATCH_SIZES) * 3
        assert 0 < len(points) < full


class TestOperatingPoint:
    def test_evaluate_consistency(self, perf):
        pt = perf.evaluate(2, 16, 2)
        assert pt.throughput == pytest.approx(
            1000.0 * 2 * 16 / pt.latency_ms
        )
        assert pt.throughput_per_gpc == pytest.approx(pt.throughput / 2)

    def test_max_single_gpu_throughput_monotone_in_slo(self, perf):
        loose = perf.max_single_gpu_throughput(500.0)
        tight = perf.max_single_gpu_throughput(20.0)
        assert loose >= tight >= 0.0

    def test_max_single_gpu_zero_when_impossible(self):
        bert = PerfModel(get_model("bert-large"))
        assert bert.max_single_gpu_throughput(0.5) == 0.0
