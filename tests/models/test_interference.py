"""Unit tests for the heterogeneous-MPS interference model."""

import pytest

from repro.models.interference import (
    Corunner,
    InterferenceModel,
    InterferenceOracle,
)
from repro.models.zoo import get_model

VGG = get_model("vgg-16")
MOBILE = get_model("mobilenetv2")
RESNET = get_model("resnet-50")


class TestInterferenceModel:
    def test_no_corunners_no_slowdown(self):
        assert InterferenceModel().slowdown(VGG, []) == 1.0

    def test_self_corunning_ignored(self):
        # Homogeneous sharing is handled by the perf model, not here.
        m = InterferenceModel()
        assert m.slowdown(VGG, [Corunner(VGG, 0.5)]) == 1.0

    def test_heavier_corunner_hurts_more(self):
        m = InterferenceModel()
        small = m.slowdown(RESNET, [Corunner(VGG, 0.2)])
        big = m.slowdown(RESNET, [Corunner(VGG, 0.8)])
        assert big > small > 1.0

    def test_bandwidth_hungry_corunner_hurts_more(self):
        m = InterferenceModel()
        assert m.slowdown(RESNET, [Corunner(VGG, 0.5)]) > m.slowdown(
            RESNET, [Corunner(MOBILE, 0.5)]
        )

    def test_sensitive_victim_suffers_more(self):
        m = InterferenceModel()
        assert m.slowdown(VGG, [Corunner(RESNET, 0.5)]) > m.slowdown(
            MOBILE, [Corunner(RESNET, 0.5)]
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            InterferenceModel(kappa=-1.0)
        with pytest.raises(ValueError):
            Corunner(VGG, 0.0)
        with pytest.raises(ValueError):
            Corunner(VGG, 1.5)


class TestOracle:
    def test_prediction_deterministic(self):
        o1, o2 = InterferenceOracle(), InterferenceOracle()
        cor = [Corunner(VGG, 0.5)]
        assert o1.predicted_slowdown(RESNET, cor) == o2.predicted_slowdown(
            RESNET, cor
        )

    def test_prediction_symmetric_error_pairs(self):
        """Error derives from the unordered pair, so swapping roles uses
        the same perturbation seed."""
        o = InterferenceOracle()
        assert o._pair_error("a", "b") == o._pair_error("b", "a")

    def test_prediction_error_bounded(self):
        o = InterferenceOracle(max_error=0.35)
        models = [VGG, MOBILE, RESNET, get_model("bert-large")]
        for victim in models:
            for partner in models:
                if victim.name == partner.name:
                    continue
                cor = [Corunner(partner, 0.6)]
                actual = o.actual_slowdown(victim, cor)
                predicted = o.predicted_slowdown(victim, cor)
                err = abs(predicted - actual) / (actual - 1.0)
                assert err <= 0.35 + 1e-9

    def test_some_pair_is_underestimated(self):
        """gpulet's S2 violations need at least one optimistic pair."""
        o = InterferenceOracle()
        names = [
            "vgg-16", "vgg-19", "resnet-50", "densenet-121", "inceptionv3",
            "mobilenetv2", "bert-large",
        ]
        under = 0
        for a in names:
            for b in names:
                if a >= b:
                    continue
                cor = [Corunner(get_model(b), 0.5)]
                victim = get_model(a)
                if o.predicted_slowdown(victim, cor) < o.actual_slowdown(
                    victim, cor
                ):
                    under += 1
        assert under > 0

    def test_prediction_without_corunners(self):
        o = InterferenceOracle()
        assert o.predicted_slowdown(VGG, []) == 1.0
