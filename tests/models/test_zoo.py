"""Unit tests for the workload zoo (Table IV row 1)."""

import pytest

from repro.models.zoo import (
    ModelSpec,
    TABLE_IV_ORDER,
    WORKLOADS,
    get_model,
    model_names,
)


class TestTableIV:
    def test_eleven_workloads(self):
        assert len(WORKLOADS) == 11
        assert len(TABLE_IV_ORDER) == 11

    def test_parameter_counts_match_paper(self):
        expected = {
            "bert-large": 330.0,
            "densenet-121": 8.0,
            "densenet-169": 14.1,
            "densenet-201": 20.0,
            "inceptionv3": 27.2,
            "mobilenetv2": 3.5,
            "resnet-101": 44.5,
            "resnet-152": 60.2,
            "resnet-50": 25.6,
            "vgg-16": 138.4,
            "vgg-19": 143.7,
        }
        for name, params in expected.items():
            assert get_model(name).params_millions == params

    def test_order_matches_table(self):
        assert model_names()[0] == "bert-large"
        assert model_names()[-1] == "vgg-19"

    def test_relative_speed_sane(self):
        # MobileNetV2 fastest, BERT-large slowest per GPC.
        t = {m: get_model(m).t_inf for m in model_names()}
        assert t["mobilenetv2"] == min(t.values())
        assert t["bert-large"] == max(t.values())

    def test_weights_scale_with_params(self):
        assert get_model("vgg-19").weights_gb > get_model("mobilenetv2").weights_gb
        assert get_model("bert-large").weights_gb == pytest.approx(
            330.0 * 4e-3 * 1.25
        )


class TestLookup:
    def test_case_insensitive(self):
        assert get_model("ResNet-50") is get_model("resnet-50")

    def test_strips_whitespace(self):
        assert get_model(" vgg-16 ") is get_model("vgg-16")

    def test_unknown_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="known models"):
            get_model("alexnet")


class TestValidation:
    def test_bad_t_inf(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="x", params_millions=1, t_inf=0, b_half=1, o0=1, o1=1,
                o_exp=0.7, eta=0.95, act_gb_per_req=0.01, bw_intensity=0.5,
            )

    def test_bad_eta(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="x", params_millions=1, t_inf=1, b_half=1, o0=1, o1=1,
                o_exp=0.7, eta=1.5, act_gb_per_req=0.01, bw_intensity=0.5,
            )

    def test_bad_bw(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="x", params_millions=1, t_inf=1, b_half=1, o0=1, o1=1,
                o_exp=0.7, eta=0.95, act_gb_per_req=0.01, bw_intensity=1.5,
            )
