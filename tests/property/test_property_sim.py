"""Property-based tests for the discrete-event simulator's conservation laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import PlacedSegment, Placement
from repro.core.service import Service
from repro.sim import simulate_placement

sim_params = st.tuples(
    st.floats(min_value=50.0, max_value=1500.0),  # capacity
    st.floats(min_value=0.2, max_value=1.4),  # load factor
    st.sampled_from([1, 2, 4, 8, 16]),  # batch
    st.sampled_from([1, 2, 3]),  # procs
    st.integers(min_value=0, max_value=5),  # seed
)


def build(capacity, served, batch, procs):
    placement = Placement(framework="prop")
    placement.add(
        0,
        PlacedSegment(
            service_id="svc",
            model="resnet-50",
            kind="mig",
            gpcs=2.0,
            batch_size=batch,
            num_processes=procs,
            capacity=capacity,
            latency_ms=25.0,
            sm_activity=0.9,
            start=0,
            served_rate=served,
        ),
    )
    service = Service(
        "svc", "resnet-50", slo_latency_ms=400.0, request_rate=max(served, 1.0)
    )
    return placement, service


@given(sim_params)
@settings(max_examples=40, deadline=None)
def test_conservation_and_bounds(params):
    capacity, load, batch, procs, seed = params
    served = capacity * load
    placement, service = build(capacity, served, batch, procs)
    report = simulate_placement(
        placement, [service], duration_s=1.0, warmup_s=0.2, seed=seed,
        arrivals="poisson",
    )
    # compliance is a probability
    assert 0.0 <= report.overall_compliance <= 1.0
    # goodput cannot exceed offered load by more than Poisson count
    # fluctuation plus batching edge effects
    offered = served * report.duration_s
    assert report.completed["svc"] <= offered + 5 * offered**0.5 + batch
    # activity is a valid DCGM reading
    for activity in report.segment_activity.values():
        assert 0.0 <= activity <= 1.0
    # latency statistics are consistent
    stats = report.services["svc"]
    if stats.requests:
        assert stats.latency_max_ms >= stats.latency_sum_ms / stats.requests / 2
