"""Property: the indexed fast path is byte-identical to the naive scan.

The slot index and the triplet-decision memoization exist purely to cut
asymptotic cost — Algorithm 1/2 semantics must not move by a byte.  For
randomized service mixes on every registered geometry (and the mixed
heterogeneous scheduler), with allocation optimization on and off, the
fast-path placement must fingerprint identically to the naive reference.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import SegmentAllocator
from repro.core.configurator import SegmentConfigurator
from repro.core.hetero import make_mixed_scheduler
from repro.core.parvagpu import ParvaGPU
from repro.core.service import InfeasibleServiceError, Service
from repro.gpu.geometry import get_geometry
from repro.models.zoo import TABLE_IV_ORDER
from repro.profiler import profile_workloads

MIG = get_geometry("mig")
MI300X = get_geometry("mi300x")
PROFILES = {
    "mig": profile_workloads(),
    "mi300x": profile_workloads(geometry=MI300X),
}
GEOMETRIES = {"mig": MIG, "mi300x": MI300X}

service_lists = st.lists(
    st.tuples(
        st.sampled_from(TABLE_IV_ORDER),
        st.floats(min_value=60.0, max_value=2000.0),
        st.floats(min_value=50.0, max_value=8000.0),
    ),
    min_size=1,
    max_size=8,
)


def _configure(params, geometry_name):
    geometry = GEOMETRIES[geometry_name]
    configurator = SegmentConfigurator(
        PROFILES[geometry_name], geometry=geometry
    )
    services = []
    for i, (model, slo, rate) in enumerate(params):
        svc = Service(
            id=f"svc{i}", model=model, slo_latency_ms=slo, request_rate=rate
        )
        try:
            configurator.configure([svc])
        except InfeasibleServiceError:
            continue
        services.append(svc)
    return services


@given(service_lists, st.sampled_from(["mig", "mi300x"]), st.booleans())
@settings(max_examples=80, deadline=None)
def test_indexed_allocation_is_byte_identical(params, geometry_name, optimize):
    services = _configure(params, geometry_name)
    if not services:
        return
    geometry = GEOMETRIES[geometry_name]
    naive = SegmentAllocator(
        optimize=optimize, geometry=geometry, indexed=False
    ).allocate(services)
    fast = SegmentAllocator(
        optimize=optimize, geometry=geometry, indexed=True
    ).allocate(services)
    assert naive.fingerprint() == fast.fingerprint()


@given(service_lists, st.booleans())
@settings(max_examples=20, deadline=None)
def test_full_pipeline_fast_path_identity(params, optimize):
    """ParvaGPU end-to-end: memoized configurator + indexed allocator."""
    fresh = lambda: [  # noqa: E731 - each run needs unconfigured services
        Service(id=f"svc{i}", model=m, slo_latency_ms=slo, request_rate=rate)
        for i, (m, slo, rate) in enumerate(params)
    ]
    try:
        naive = ParvaGPU(
            PROFILES["mig"], optimize=optimize, fast_path=False
        ).schedule(fresh())
        fast = ParvaGPU(
            PROFILES["mig"], optimize=optimize, fast_path=True
        ).schedule(fresh())
    except InfeasibleServiceError:
        return
    assert naive.fingerprint() == fast.fingerprint()


def test_incremental_paths_fast_path_identity():
    """SIII-F SLO updates and failover: indexed vs naive, byte-identical."""
    from repro.core.deployment import DeploymentManager
    from repro.core.failover import FailoverController
    from repro.scenarios import scenario_services

    def run(fast_path):
        services = scenario_services("S2")
        manager = DeploymentManager(PROFILES["mig"])
        manager.deploy(
            ParvaGPU(PROFILES["mig"], fast_path=fast_path).schedule(services)
        )
        updated, _ = manager.update_slo(
            services, services[0], new_rate=services[0].request_rate * 2.5,
            fast_path=fast_path,
        )
        recovered = FailoverController(
            PROFILES["mig"], manager, fast_path=fast_path
        ).fail_gpu(manager.current.gpus[0].gpu_id, services)
        return updated.fingerprint(), recovered.placement.fingerprint()

    assert run(True) == run(False)


@given(service_lists)
@settings(max_examples=15, deadline=None)
def test_mixed_scheduler_fast_path_identity(params):
    """The heterogeneous (mig + mi300x) scheduler, fast vs naive."""
    fresh = lambda: [  # noqa: E731
        Service(id=f"svc{i}", model=m, slo_latency_ms=slo, request_rate=rate)
        for i, (m, slo, rate) in enumerate(params)
    ]
    try:
        naive = make_mixed_scheduler(fast_path=False).schedule(fresh())
        fast = make_mixed_scheduler(fast_path=True).schedule(fresh())
    except InfeasibleServiceError:
        return
    assert naive.fingerprint() == fast.fingerprint()
