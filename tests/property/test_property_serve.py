"""Property: the virtual-clock gateway is bit-identical to offline.

Randomized S12-style timelines — tenant churn, SLO renegotiations and
rate epochs at arbitrary instants (same-instant collisions included) —
are streamed through the async :class:`~repro.serve.gateway.ServeGateway`
under a :class:`~repro.serve.clock.VirtualClock` with a deadline budget
configured, and the closed report must match a plain serial
``FleetController.run`` on the identical timeline at *every* interval:
placement fingerprints and (serving is measured) simulation-stats
fingerprints both.  This is the live-serving identity contract fuzzed:
the gateway's intake/batching/deadline machinery must be invisible to a
deterministic replay.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.service import Service
from repro.ops import FleetController
from repro.ops.events import (
    RateEpoch,
    ServiceArrival,
    ServiceDeparture,
    SloChange,
)
from repro.serve import replay_gateway

HORIZON_S = 200.0
BASE_IDS = ("a", "b", "c")
MODELS = ("resnet-50", "mobilenetv2", "vgg-16")

times = st.floats(min_value=0.0, max_value=HORIZON_S - 1.0,
                  allow_nan=False, allow_infinity=False)
# a small grid too, to force same-instant batches
times = st.one_of(times, st.sampled_from([25.0, 50.0, 100.0]))

rate_epochs = st.builds(
    RateEpoch,
    time_s=times,
    service_id=st.sampled_from(BASE_IDS),
    rate=st.floats(min_value=100.0, max_value=9000.0),
)
slo_changes = st.builds(
    SloChange,
    time_s=times,
    service_id=st.sampled_from(BASE_IDS),
    slo_latency_ms=st.floats(min_value=80.0, max_value=400.0),
)
# unknown departures are skipped-not-fatal by contract, so departing a
# random id (base, arrived-earlier, or never-seen) is always legal
departures = st.builds(
    ServiceDeparture,
    time_s=times,
    service_id=st.sampled_from(BASE_IDS + ("n0", "n1", "n7")),
)
arrival_indices = st.integers(min_value=0, max_value=3)
arrivals = st.builds(
    lambda time_s, i, model, rate, slo: ServiceArrival(
        time_s=time_s, service_id=f"n{i}", model=model,
        request_rate=rate, slo_latency_ms=slo,
    ),
    times,
    arrival_indices,
    st.sampled_from(MODELS),
    st.floats(min_value=100.0, max_value=2000.0),
    st.floats(min_value=120.0, max_value=400.0),
)

timelines = st.lists(
    st.one_of(rate_epochs, slo_changes, departures, arrivals),
    min_size=0,
    max_size=8,
)


def base_services():
    return [
        Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
        Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
        Service("c", "densenet-121", slo_latency_ms=200, request_rate=1500),
    ]


@given(timelines, st.integers(min_value=0, max_value=3))
@settings(max_examples=12, deadline=None)
def test_gateway_replay_identical_to_offline(profiles, timeline, sim_seed):
    # Arrivals can collide with an id that already arrived; the
    # controller treats a duplicate arrival as a fatal input error, so
    # drop repeats the way a real registry would.
    seen, clean = set(), []
    for e in timeline:
        if isinstance(e, ServiceArrival):
            if e.service_id in seen:
                continue
            seen.add(e.service_id)
        clean.append(e)

    gateway_report = replay_gateway(
        base_services(), clean, HORIZON_S,
        measure_s=0.05, sim_seed=sim_seed,
        deadline_budget_s=0.01,  # must be ignored under the virtual clock
        profiles=profiles,
    )
    offline = FleetController(profiles).run(
        base_services(), clean, HORIZON_S,
        measure_s=0.05, sim_seed=sim_seed,
    )
    assert gateway_report.to_doc() == offline.to_doc()
