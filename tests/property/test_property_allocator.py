"""Property-based tests for Algorithm 2's invariants.

For any feasible random service mix, the allocator must produce a
placement that (1) is MIG-legal on every GPU, (2) places every configured
segment, (3) keeps per-service capacity at or above demand, and (4) the
optimized variant never uses more GPUs than plain relocation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import SegmentAllocator
from repro.core.configurator import SegmentConfigurator
from repro.core.service import InfeasibleServiceError, Service
from repro.models.zoo import TABLE_IV_ORDER
from repro.profiler import profile_workloads

PROFILES = profile_workloads()

service_lists = st.lists(
    st.tuples(
        st.sampled_from(TABLE_IV_ORDER),
        st.floats(min_value=60.0, max_value=2000.0),
        st.floats(min_value=50.0, max_value=8000.0),
    ),
    min_size=1,
    max_size=6,
)


def _configure(params):
    services = []
    configurator = SegmentConfigurator(PROFILES)
    for i, (model, slo, rate) in enumerate(params):
        svc = Service(
            id=f"svc{i}", model=model, slo_latency_ms=slo, request_rate=rate
        )
        try:
            configurator.configure([svc])
        except InfeasibleServiceError:
            continue
        services.append(svc)
    return services


@given(service_lists)
@settings(max_examples=60, deadline=None)
def test_algorithm2_invariants(params):
    services = _configure(params)
    if not services:
        return

    unopt = SegmentAllocator(optimize=False).allocate(services)
    unopt.validate()  # (1) legality
    expected = sum(len(s.segments()) for s in services)
    assert len(list(unopt.iter_segments())) == expected  # (2) completeness

    opt = SegmentAllocator(optimize=True).allocate(services)
    opt.validate()  # (1) legality after optimization
    for svc in services:  # (3) capacity preserved by splitting
        assert opt.total_capacity(svc.id) >= svc.request_rate * (1 - 1e-9)
    assert opt.num_gpus <= unopt.num_gpus  # (4) optimization never hurts


@given(service_lists)
@settings(max_examples=30, deadline=None)
def test_gpu_count_lower_bound(params):
    """No placement may beat the GPC-count lower bound ceil(gpcs/7)."""
    services = _configure(params)
    if not services:
        return
    placement = SegmentAllocator(optimize=True).allocate(services)
    total_gpcs = sum(s.gpcs for _, s in placement.iter_segments())
    assert placement.num_gpus >= -(-int(total_gpcs) // 7)
