"""Property: the sharded parallel simulation is bit-identical to serial.

The shard executor (:mod:`repro.sim.shard`) exists purely to spread the
per-interval serving measurement across worker processes — merge order
is fixed to placement order regardless of worker completion order, so
*every* statistic (not just the exact-integer fingerprint fields: the
order-sensitive float sums too) must come out bit-identical to the
serial fast path for any shard count, on any geometry, saturated or not.
The placement itself must come back untouched byte-for-byte.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hetero import make_mixed_scheduler
from repro.core.parvagpu import ParvaGPU
from repro.core.placement import PlacedSegment, Placement
from repro.core.service import Service
from repro.gpu.geometry import get_geometry
from repro.profiler import profile_workloads
from repro.scenarios.fleet import fleet_services
from repro.sim import simulate_placement
from repro.sim.shard import ShardContext

SHARD_COUNTS = sorted({1, 2, 7, os.cpu_count() or 1})

segment_params = st.tuples(
    st.floats(min_value=30.0, max_value=1200.0),  # capacity
    st.floats(min_value=0.0, max_value=2.2),  # load factor (>1: saturated)
    st.sampled_from([1, 2, 4, 8, 16, 32]),  # batch
    st.sampled_from([1, 2, 3]),  # procs
    st.floats(min_value=15.0, max_value=60.0),  # planned latency
    st.sampled_from(["mig", "mi300x"]),  # geometry
)

run_params = st.tuples(
    st.sampled_from(["uniform", "poisson"]),
    st.integers(min_value=0, max_value=7),  # seed
    st.floats(min_value=0.0, max_value=0.6),  # warmup
    st.floats(min_value=25.0, max_value=500.0),  # slo
)


def build(segments):
    placement = Placement(framework="prop")
    services = {}
    for i, (cap, load, batch, procs, lat, geometry) in enumerate(segments):
        sid = f"svc{i % 2}"  # two services sharing segments
        placement.add(
            i,
            PlacedSegment(
                service_id=sid,
                model="resnet-50",
                kind="mig" if geometry == "mig" else "xcd",
                gpcs=2.0,
                batch_size=batch,
                num_processes=procs,
                capacity=cap,
                latency_ms=lat,
                sm_activity=0.9,
                start=0,
                served_rate=cap * load,
                geometry=geometry,
            ),
        )
        services.setdefault(sid, 0.0)
        services[sid] += cap * load
    return placement, [
        Service(sid, "resnet-50", slo_latency_ms=400.0,
                request_rate=max(rate, 1.0))
        for sid, rate in services.items()
    ]


def assert_bit_identical(sharded, serial):
    """Stronger than the fingerprint contract: every float matches too."""
    assert sharded.fingerprint() == serial.fingerprint()
    assert sharded.close_to(serial)
    assert set(sharded.services) == set(serial.services)
    for sid, a in sharded.services.items():
        b = serial.services[sid]
        assert (a.batches, a.violations, a.requests) == (
            b.batches, b.violations, b.requests
        )
        assert a.latency_sum_ms == b.latency_sum_ms  # exact, not rtol
        assert a.latency_max_ms == b.latency_max_ms
    assert sharded.completed == serial.completed
    assert sharded.segment_activity == serial.segment_activity
    assert sharded.events_processed == serial.events_processed


@given(st.lists(segment_params, min_size=1, max_size=4), run_params)
@settings(max_examples=40, deadline=None)
def test_sharded_matches_serial_fast_path(segments, run):
    arrivals, seed, warmup, slo = run
    placement, services = build(segments)
    services = [
        Service(s.id, s.model, slo_latency_ms=slo, request_rate=s.request_rate)
        for s in services
    ]
    kwargs = dict(duration_s=1.0, warmup_s=warmup, seed=seed,
                  arrivals=arrivals)
    before = placement.fingerprint()
    serial = simulate_placement(placement, services, **kwargs)
    for workers in (1, 2):
        sharded = simulate_placement(
            placement, services, workers=workers, **kwargs
        )
        assert_bit_identical(sharded, serial)
    assert placement.fingerprint() == before  # simulation never mutates


def _scheduled_fleet(geometry, rate_scale):
    services = fleet_services(24, rate_scale=rate_scale)
    if geometry == "mixed":
        scheduler = make_mixed_scheduler(fast_path=True)
    else:
        geo = get_geometry(geometry)
        profiles = (
            profile_workloads()
            if geometry == "mig"
            else profile_workloads(geometry=geo)
        )
        scheduler = ParvaGPU(profiles, geometry=geo, fast_path=True)
    return services, scheduler.schedule(services)


@pytest.mark.parametrize("geometry", ["mig", "mi300x", "mixed"])
@pytest.mark.parametrize("rate_scale", [1.0, 3.0])  # planned vs saturated
def test_every_shard_count_on_scheduled_fleets(geometry, rate_scale):
    """Real scheduled placements, every shard count incl. cpu_count."""
    services, placement = _scheduled_fleet(geometry, rate_scale)
    before = placement.fingerprint()
    serial = simulate_placement(
        placement, services, duration_s=1.0, warmup_s=0.2, seed=3
    )
    for workers in SHARD_COUNTS:
        sharded = simulate_placement(
            placement, services, duration_s=1.0, warmup_s=0.2, seed=3,
            workers=workers,
        )
        assert_bit_identical(sharded, serial)
    assert placement.fingerprint() == before


def test_context_reuse_keeps_identity():
    """A reused ShardContext (the controller's usage: pool + cross-call
    memo) must return bit-identical reports on repeated and on changed
    calls — memo hits included."""
    services, placement = _scheduled_fleet("mig", 1.0)
    serial = simulate_placement(
        placement, services, duration_s=1.0, warmup_s=0.2, seed=3
    )
    with ShardContext(workers=2) as ctx:
        first = simulate_placement(
            placement, services, duration_s=1.0, warmup_s=0.2, seed=3,
            shard_context=ctx,
        )
        assert ctx.memo_misses > 0
        again = simulate_placement(
            placement, services, duration_s=1.0, warmup_s=0.2, seed=3,
            shard_context=ctx,
        )
        assert ctx.memo_hits > 0
    assert_bit_identical(first, serial)
    assert_bit_identical(again, serial)


def test_workers_require_fast_path():
    services, placement = _scheduled_fleet("mig", 1.0)
    with pytest.raises(ValueError, match="fast path"):
        simulate_placement(placement, services, fast_path=False, workers=2)
    with pytest.raises(ValueError, match=">= 0"):
        simulate_placement(placement, services, workers=-1)
