"""Property-based tests for Algorithm 1's invariants.

For any (model, SLO, rate) that admits a feasible plan:

1. every chosen triplet beats the effective SLO;
2. planned capacity covers the request rate;
3. the optimal segment maximizes throughput-per-GPC over the triplet array
   (the Eq. 2 argument);
4. the last segment is the smallest size that can cover the leftover.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configurator import SegmentConfigurator
from repro.core.service import InfeasibleServiceError, Service
from repro.models.zoo import TABLE_IV_ORDER
from repro.profiler import profile_workloads

PROFILES = profile_workloads()

service_params = st.tuples(
    st.sampled_from(TABLE_IV_ORDER),
    st.floats(min_value=20.0, max_value=8000.0),
    st.floats(min_value=1.0, max_value=30000.0),
)


@given(service_params)
@settings(max_examples=120, deadline=None)
def test_algorithm1_invariants(params):
    model, slo, rate = params
    svc = Service(id="p", model=model, slo_latency_ms=slo, request_rate=rate)
    configurator = SegmentConfigurator(PROFILES)
    try:
        configurator.configure([svc])
    except InfeasibleServiceError:
        # legitimately impossible SLO; nothing further to check
        return

    # (1) SLO respected by every triplet
    for entry in svc.opt_tri_array.values():
        assert entry.latency_ms < svc.effective_slo_ms

    # (2) demand covered
    assert svc.planned_throughput() >= rate * (1 - 1e-9)

    # (3) optimal segment maximizes tp/GPC
    best = max(e.throughput_per_gpc for e in svc.opt_tri_array.values())
    assert svc.opt_seg.throughput_per_gpc == pytest.approx(best)

    # (4) the last segment's size is minimal among adequate sizes
    if svc.last_seg is not None and svc.num_opt_seg == 0:
        for size, entry in svc.opt_tri_array.items():
            if size < svc.last_seg.instance_size:
                assert entry.throughput < rate

    # segment count sanity: never more than rate/opt_tp + 1 segments
    assert len(svc.segments()) <= rate / svc.opt_seg.throughput + 1 + 1e-9
