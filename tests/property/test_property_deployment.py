"""Property-based tests for the SIII-F incremental update path.

Invariant: any sequence of SLO/rate updates leaves the deployment map
MIG-legal, demand-covering for every service, and never touches services
that were not updated in that step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeploymentManager, ParvaGPU, Service
from repro.profiler import profile_workloads

PROFILES = profile_workloads()

MODELS = ("resnet-50", "inceptionv3", "vgg-16", "mobilenetv2")

updates = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(MODELS) - 1),  # which service
        st.floats(min_value=100.0, max_value=1500.0),  # new SLO
        st.floats(min_value=100.0, max_value=6000.0),  # new rate
    ),
    min_size=1,
    max_size=4,
)


@given(updates)
@settings(max_examples=25, deadline=None)
def test_update_sequence_invariants(seq):
    services = [
        Service(f"svc{i}", m, slo_latency_ms=400.0, request_rate=800.0)
        for i, m in enumerate(MODELS)
    ]
    manager = DeploymentManager(PROFILES)
    manager.deploy(ParvaGPU(PROFILES).schedule(services))

    for idx, slo, rate in seq:
        changed = services[idx]
        cap_before = {
            svc.id: manager.current.total_capacity(svc.id)
            for svc in services
            if svc.id != changed.id
        }
        try:
            placement, plan = manager.update_slo(
                services, changed, new_slo_ms=slo, new_rate=rate
            )
        except Exception as exc:
            # only legitimate infeasibility may escape
            from repro.core.service import InfeasibleServiceError

            assert isinstance(exc, InfeasibleServiceError)
            return

        placement.validate()  # MIG legality preserved
        # every service still covered, and untouched services never *lose*
        # capacity (Allocation Optimization may split-and-move a bystander
        # when draining a fragmented GPU, but the split covers the freed
        # throughput by construction)
        for svc in services:
            assert placement.total_capacity(svc.id) >= svc.request_rate * (
                1 - 1e-9
            )
        for sid, cap in cap_before.items():
            assert placement.total_capacity(sid) >= cap * (1 - 1e-6) or (
                placement.total_capacity(sid)
                >= next(s for s in services if s.id == sid).request_rate
            )
        # the cluster mirrors the map
        assert manager.cluster.used_gpu_count() == placement.num_gpus
