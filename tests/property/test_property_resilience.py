"""Property: crash anywhere, resume anywhere — always bit-identical.

Hypothesis drives the crash geometry: the kill step, the worker count
that resumes the run, the checkpoint cadence, and a seeded worker-crash
plan.  Whatever combination it draws, the recovered run's full
``OpsReport.to_doc()`` must equal the uninterrupted reference's
(modulo the ``workers`` label when resuming onto a different shard
count — the one field that *names* the topology rather than the work).
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ops import FleetController
from repro.ops.controller import assert_reports_identical
from repro.resilience import FaultPlan
from repro.scenarios.ops import bench_ops_run

SEED = 13
SIM_SEED = 2
MEASURE_S = 0.2

#: one small fleet, scheduled once — each hypothesis example replays it
RUN = bench_ops_run(30)


def replay(*, workers=0, fault_injector=None, **kwargs):
    ctrl = FleetController(
        fast_path=True, seed=SEED, workers=workers,
        fault_injector=fault_injector,
    )
    return ctrl, ctrl.run(
        RUN.services, RUN.timeline, RUN.horizon_s,
        measure_s=MEASURE_S, sim_seed=SIM_SEED, **kwargs,
    )


_, REFERENCE = replay()
N_STEPS = len(REFERENCE.intervals)


def doc_without_topology(report):
    doc = dict(report.to_doc())
    doc.pop("workers")
    return doc


@given(
    kill_at=st.integers(min_value=1, max_value=N_STEPS - 1),
    cadence=st.integers(min_value=1, max_value=4),
    resume_workers=st.sampled_from([0, 1, 2]),
)
@settings(max_examples=12, deadline=None)
def test_kill_anywhere_resume_on_any_topology(
    kill_at, cadence, resume_workers
):
    with tempfile.TemporaryDirectory() as td:
        ck = os.path.join(td, "ck.json")
        replay(checkpoint_every=cadence, checkpoint_path=ck,
               max_steps=kill_at)
        _, resumed = replay(workers=resume_workers, resume=ck)
    assert_reports_identical(resumed, REFERENCE)
    assert doc_without_topology(resumed) == doc_without_topology(REFERENCE)


@given(
    kill_at=st.integers(min_value=1, max_value=N_STEPS - 1),
    plan_seed=st.integers(min_value=0, max_value=31),
    crashes=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=8, deadline=None)
def test_worker_crashes_during_resumed_run(kill_at, plan_seed, crashes):
    """Compound faults: kill the controller, then crash shard workers
    while the *resumed* run is still catching up."""
    injector = FaultPlan(
        seed=plan_seed, worker_crashes=crashes, max_batch=6, max_index=2
    ).injector()
    with tempfile.TemporaryDirectory() as td:
        ck = os.path.join(td, "ck.json")
        replay(checkpoint_every=1, checkpoint_path=ck, max_steps=kill_at)
        _, resumed = replay(workers=2, fault_injector=injector, resume=ck)
    assert_reports_identical(resumed, REFERENCE)
    assert doc_without_topology(resumed) == doc_without_topology(REFERENCE)


def test_chained_resume_matches_single_resume():
    """Checkpoint → kill → resume → kill again → resume: the chain of
    two partial runs ends exactly where one uninterrupted resume does."""
    third = max(1, N_STEPS // 3)
    with tempfile.TemporaryDirectory() as td:
        ck = os.path.join(td, "ck.json")
        replay(checkpoint_every=1, checkpoint_path=ck, max_steps=third)
        replay(checkpoint_every=1, checkpoint_path=ck, resume=ck,
               max_steps=2 * third)
        _, resumed = replay(resume=ck)
    assert_reports_identical(resumed, REFERENCE)
    assert resumed.to_doc() == REFERENCE.to_doc()
