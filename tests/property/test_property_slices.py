"""Property-based tests for slice bitmask arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.slices import (
    FULL_MASK,
    NUM_SLICES,
    free_slices,
    iter_runs,
    largest_free_run,
    mask_of,
    popcount,
    slice_indices,
)

masks = st.integers(min_value=0, max_value=FULL_MASK)


@given(masks)
def test_indices_roundtrip(mask):
    assert mask_of(slice_indices(mask)) == mask


@given(masks)
def test_popcount_matches_indices(mask):
    assert popcount(mask) == len(slice_indices(mask))


@given(masks)
def test_free_plus_occupied_partition(mask):
    occupied = set(slice_indices(mask))
    free = set(free_slices(mask))
    assert occupied | free == set(range(NUM_SLICES))
    assert not occupied & free


@given(masks)
def test_runs_cover_mask_exactly(mask):
    covered = 0
    prev_end = -2
    for start, length in iter_runs(mask):
        assert length >= 1
        assert start > prev_end + 1  # maximal runs never touch
        prev_end = start + length - 1
        covered |= ((1 << length) - 1) << start
    assert covered == mask


@given(masks)
def test_largest_free_run_bounds(mask):
    run = largest_free_run(mask)
    assert 0 <= run <= NUM_SLICES - popcount(mask)
