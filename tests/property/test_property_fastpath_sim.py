"""Property test: fast-path vs event-driven simulation fingerprints.

For any segment shape — uniform or Poisson arrivals, saturated or
unsaturated load, warmup boundaries anywhere, MIG or MI300X or mixed
geometries — the batch-granularity kernel must reproduce the reference
engine's statistics exactly: identical integer counts and worst
latencies (:meth:`SimulationReport.fingerprint`) and float sums within
ulp-reordering tolerance (:meth:`SimulationReport.close_to`).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import PlacedSegment, Placement
from repro.core.service import Service
from repro.sim import simulate_placement

segment_params = st.tuples(
    st.floats(min_value=30.0, max_value=1200.0),  # capacity
    st.floats(min_value=0.0, max_value=2.2),  # load factor (0: idle segment)
    st.sampled_from([1, 2, 4, 8, 16, 32]),  # batch
    st.sampled_from([1, 2, 3]),  # procs
    st.floats(min_value=15.0, max_value=60.0),  # planned latency
    st.sampled_from(["mig", "mi300x"]),  # geometry
)

run_params = st.tuples(
    st.sampled_from(["uniform", "poisson"]),
    st.integers(min_value=0, max_value=7),  # seed
    st.floats(min_value=0.0, max_value=0.6),  # warmup
    st.floats(min_value=25.0, max_value=500.0),  # slo
)


def build(segments):
    placement = Placement(framework="prop")
    services = {}
    for i, (cap, load, batch, procs, lat, geometry) in enumerate(segments):
        sid = f"svc{i % 2}"  # two services sharing segments
        placement.add(
            i,
            PlacedSegment(
                service_id=sid,
                model="resnet-50",
                kind="mig" if geometry == "mig" else "xcd",
                gpcs=2.0,
                batch_size=batch,
                num_processes=procs,
                capacity=cap,
                latency_ms=lat,
                sm_activity=0.9,
                start=0,
                served_rate=cap * load,
                geometry=geometry,
            ),
        )
        services.setdefault(sid, 0.0)
        services[sid] += cap * load
    return placement, [
        Service(sid, "resnet-50", slo_latency_ms=400.0,
                request_rate=max(rate, 1.0))
        for sid, rate in services.items()
    ]


@given(st.lists(segment_params, min_size=1, max_size=3), run_params)
@settings(max_examples=60, deadline=None)
def test_fastpath_matches_event_engine(segments, run):
    arrivals, seed, warmup, slo = run
    placement, services = build(segments)
    services = [
        Service(s.id, s.model, slo_latency_ms=slo, request_rate=s.request_rate)
        for s in services
    ]
    kwargs = dict(
        duration_s=1.0,
        warmup_s=warmup,
        seed=seed,
        arrivals=arrivals,
    )
    fast = simulate_placement(placement, services, fast_path=True, **kwargs)
    ref = simulate_placement(placement, services, fast_path=False, **kwargs)
    assert fast.fingerprint() == ref.fingerprint()
    assert fast.close_to(ref)
    # the fast path takes strictly fewer iteration steps than the
    # reference processes events whenever traffic actually flows
    if ref.events_processed and any(
        st_.requests for st_ in ref.services.values()
    ):
        assert fast.events_processed <= ref.events_processed
