"""Property-based tests: MIG layouts never violate hardware constraints."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.gpu import GPU, GPUError
from repro.gpu.mig import (
    INSTANCE_SIZES,
    MigLayout,
    legal_starts,
    occupied_mask,
)
from repro.gpu.slices import popcount

placements = st.lists(
    st.tuples(
        st.sampled_from(INSTANCE_SIZES),
        st.integers(min_value=0, max_value=6),
    ),
    max_size=10,
)


@given(placements)
def test_gpu_accepts_only_legal_non_overlapping(ops):
    """Greedily apply random (size, start) ops; the GPU must stay legal."""
    gpu = GPU(0)
    mask = 0
    for size, start in ops:
        legal = start in legal_starts(size)
        free = legal and not mask & occupied_mask(size, start)
        if legal and free:
            gpu.create_instance(size, start)
            mask |= occupied_mask(size, start)
        else:
            try:
                gpu.create_instance(size, start)
                raise AssertionError(
                    f"illegal placement {size}@{start} accepted"
                )
            except GPUError:
                pass
    assert gpu.occupied_mask == mask
    assert gpu.used_gpcs <= 7
    assert len(gpu.instances) <= 7


@given(placements)
def test_destroy_is_inverse_of_create(ops):
    gpu = GPU(0)
    created = []
    for size, start in ops:
        try:
            created.append(gpu.create_instance(size, start))
        except GPUError:
            pass
    for inst in created:
        gpu.destroy_instance(inst)
    assert gpu.is_empty
    assert gpu.occupied_mask == 0


@given(placements)
@settings(max_examples=50)
def test_layout_used_gpcs_never_exceeds_unblocked(ops):
    layout = MigLayout()
    for size, start in ops:
        if layout.can_add(size, start):
            from repro.gpu.mig import PlacedInstance

            layout.add(PlacedInstance(size, start))
    assert layout.used_gpcs <= popcount(layout.mask) <= 7
