"""Shared fixtures: profiled workloads and service factories."""

from __future__ import annotations

import pytest

from repro.core.service import Service
from repro.profiler import Profiler, profile_workloads


@pytest.fixture(scope="session")
def profiles():
    """The full Table-IV zoo, profiled once per test session."""
    return profile_workloads()


@pytest.fixture(scope="session")
def clean_profiles():
    """Noise-free profiles (exact analytic surface) for calibration tests."""
    profiler = Profiler(noise=0.0)
    return {
        name: profiler.profile_by_name(name)
        for name in (
            "inceptionv3",
            "resnet-50",
            "bert-large",
            "mobilenetv2",
            "vgg-16",
        )
    }


@pytest.fixture
def make_service():
    """Factory for quick Service objects."""

    def _make(
        sid: str = "svc",
        model: str = "resnet-50",
        slo: float = 300.0,
        rate: float = 500.0,
    ) -> Service:
        return Service(
            id=sid, model=model, slo_latency_ms=slo, request_rate=rate
        )

    return _make
