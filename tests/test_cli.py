"""Tests for the ``parvagpu`` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.scenario == "S2"
        assert args.framework == "parvagpu"

    def test_simulate_arrival_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--arrivals", "bursty"])


class TestCommands:
    def test_schedule_prints_map(self, capsys):
        assert main(["schedule", "--scenario", "S1"]) == 0
        out = capsys.readouterr().out
        assert "GPUs" in out and "GPU 0:" in out

    def test_schedule_infeasible_returns_error(self, capsys):
        assert main(["schedule", "--scenario", "S5", "--framework", "igniter"]) == 1
        assert "infeasible" in capsys.readouterr().err

    def test_profile_lists_points(self, capsys):
        assert main(["profile", "mobilenetv2"]) == 0
        out = capsys.readouterr().out
        assert "operating points" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "ParvaGPU" in capsys.readouterr().out

    def test_simulate_s1(self, capsys):
        assert (
            main(["simulate", "--scenario", "S1", "--duration", "1.0"]) == 0
        )
        out = capsys.readouterr().out
        assert "SLO compliance" in out

    def test_scenarios_lists_registry(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("S1", "S6", "S9", "S12", "S13", "S14", "S15"):
            assert f"\n{name} " in out or out.startswith(f"{name} ")
        assert "mig,mi300x,mixed" in out

    def test_scenarios_describes_ops_fleets(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "Tenant-churn fleet: 100 base services" in out
        assert "10k-service chaos week: 10000 services" in out

    def test_ops_runs_truncated_s12(self, capsys):
        assert (
            main(["ops", "--scenario", "s12", "--horizon", "3000",
                  "--measure", "0.1"]) == 0
        )
        out = capsys.readouterr().out
        assert "S12: 100 services" in out
        assert "identity: state round-trip" in out
        assert "compliance: mean" in out

    def test_ops_unknown_scenario(self, capsys):
        assert main(["ops", "--scenario", "s99"]) == 2
        assert "unknown ops scenario" in capsys.readouterr().err

    def test_ops_bad_horizon_is_clean_error(self, capsys):
        assert main(["ops", "--scenario", "s12", "--horizon", "0"]) == 2
        assert "horizon must be positive" in capsys.readouterr().err

    def test_ops_engine_conflicts_with_verify(self, capsys):
        assert (
            main(["ops", "--scenario", "s12", "--engine", "naive",
                  "--verify"]) == 2
        )
        assert "--engine cannot be combined" in capsys.readouterr().err

    def test_ops_verify_replays_naive(self, capsys):
        assert (
            main(["ops", "--scenario", "s14", "--horizon", "7500",
                  "--measure", "0.1", "--verify"]) == 0
        )
        out = capsys.readouterr().out
        assert "fast-vs-naive replay" in out

    def test_ops_verify_s12_reports_fields(self, capsys):
        assert (
            main(["ops", "--scenario", "s12", "--horizon", "3000",
                  "--measure", "0.1", "--verify"]) == 0
        )
        out = capsys.readouterr().out
        assert "S12: 100 services" in out
        assert "fast-vs-naive replay" in out
        assert "compliance: mean" in out
        assert "fleet: peak" in out

    def test_ops_workers_threads_through(self, capsys):
        assert (
            main(["ops", "--scenario", "s12", "--horizon", "3000",
                  "--measure", "0.1", "--workers", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "sharded control plane x2" in out
        assert "identity: state round-trip" in out

    def test_ops_workers_with_verify(self, capsys):
        """--verify --workers N: the sharded fast replay must match the
        serial naive reference interval-for-interval."""
        assert (
            main(["ops", "--scenario", "s12", "--horizon", "3000",
                  "--measure", "0.1", "--verify", "--workers", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "sharded control plane x2" in out
        assert "fast-vs-naive replay" in out

    def test_ops_workers_requires_fast_engine(self, capsys):
        assert (
            main(["ops", "--scenario", "s12", "--engine", "naive",
                  "--workers", "2"]) == 2
        )
        assert "--workers requires the fast engine" in capsys.readouterr().err

    def test_simulate_workers_threads_through(self, capsys):
        assert (
            main(["simulate", "--scenario", "S1", "--duration", "1.0",
                  "--workers", "2"]) == 0
        )
        assert "SLO compliance" in capsys.readouterr().out

    def test_simulate_workers_requires_fast_engine(self, capsys):
        assert (
            main(["simulate", "--scenario", "S1", "--engine", "event",
                  "--workers", "2"]) == 2
        )
        assert "--workers requires the fast engine" in capsys.readouterr().err

    def test_experiment_module_main(self, capsys):
        from repro.experiments.__main__ import main as exp_main

        assert exp_main(["fig1"]) == 0
        assert "19 configurations" in capsys.readouterr().out
        assert exp_main(["nope"]) == 2


class TestServeGateway:
    def test_serve_virtual_replay_with_identity_check(self, capsys):
        assert (
            main(["serve", "--scenario", "s12", "--clock", "virtual",
                  "--horizon", "3000", "--measure", "0.1",
                  "--check-offline"]) == 0
        )
        out = capsys.readouterr().out
        assert "virtual replay" in out
        assert "session:" in out
        assert "matches the offline FleetController" in out

    def test_serve_live_session_records_and_verifies(self, capsys, tmp_path):
        rec = tmp_path / "session.jsonl"
        assert (
            main(["serve", "--scenario", "s12", "--horizon", "600",
                  "--time-scale", "3000", "--measure", "0.05",
                  "--no-status", "--record", str(rec),
                  "--check-offline"]) == 0
        )
        out = capsys.readouterr().out
        assert "live x3000" in out
        assert "recorded session:" in out
        assert "matches the offline FleetController" in out
        from repro.serve import decode_event

        events = [decode_event(line)
                  for line in rec.read_text().splitlines()]
        assert all(e.time_s < 600.0 for e in events)

    def test_serve_live_serves_status_endpoint(self, capsys):
        assert (
            main(["serve", "--scenario", "s12", "--horizon", "300",
                  "--time-scale", "3000", "--measure", "0.05"]) == 0
        )
        out = capsys.readouterr().out
        assert "status: http://127.0.0.1:" in out

    def test_serve_unknown_scenario(self, capsys):
        assert main(["serve", "--scenario", "s99"]) == 2
        assert "unknown ops scenario" in capsys.readouterr().err

    def test_serve_bad_time_scale(self, capsys):
        assert (
            main(["serve", "--scenario", "s12", "--time-scale", "0"]) == 2
        )
        assert "time scale" in capsys.readouterr().err

    def test_serve_default_scenario_is_s16(self):
        parser = build_parser()
        args = parser.parse_args(["serve"])
        assert args.scenario == "S16"
        assert args.clock == "real"
        assert args.deadline == 0.25

    def test_ops_live_runs_gateway_session(self, capsys):
        assert (
            main(["ops", "--scenario", "s12", "--live",
                  "--horizon", "300", "--time-scale", "3000",
                  "--measure", "0.05"]) == 0
        )
        out = capsys.readouterr().out
        assert "live x3000" in out
        assert "session:" in out

    def test_ops_live_rejects_verify(self, capsys):
        assert main(["ops", "--scenario", "s12", "--live", "--verify"]) == 2
        assert "--live" in capsys.readouterr().err

    def test_ops_verify_every_samples_reference(self, capsys):
        assert (
            main(["ops", "--scenario", "s12", "--horizon", "3000",
                  "--measure", "0.1", "--verify",
                  "--verify-every", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "fast-vs-naive replay" in out

    def test_ops_verify_every_requires_verify(self, capsys):
        assert (
            main(["ops", "--scenario", "s12", "--verify-every", "3"]) == 2
        )
        assert "--verify-every" in capsys.readouterr().err
