"""Unit tests for the segment server: batching, concurrency, flush safety."""

import pytest

from repro.core.placement import PlacedSegment
from repro.gpu.telemetry import SMActivityTracker
from repro.sim.engine import EventQueue
from repro.sim.metrics import BatchRecord
from repro.sim.server import SegmentServer


def make_server(batch=4, procs=2, slo=200.0, capacity=400.0, gpcs=2.0):
    events = EventQueue()
    tracker = SMActivityTracker()
    records: list[BatchRecord] = []
    seg = PlacedSegment(
        service_id="svc",
        model="resnet-50",
        kind="mig",
        gpcs=gpcs,
        batch_size=batch,
        num_processes=procs,
        capacity=capacity,
        latency_ms=20.0,
        sm_activity=0.9,
        start=0,
        served_rate=capacity * 0.8,
    )
    server = SegmentServer(
        key="gpu0/svc/0",
        segment=seg,
        slo_ms=slo,
        events=events,
        tracker=tracker,
        on_batch=records.append,
        warmup_s=0.0,
    )
    return server, events, records


class TestBatching:
    def test_full_batch_dispatches_immediately(self):
        server, events, records = make_server(batch=4)
        for i in range(4):
            events.schedule(i * 1e-4, server.on_arrival)
        events.run()
        assert len(records) == 1
        assert records[0].batch_size == 4

    def test_partial_batch_flushes_by_deadline(self):
        server, events, records = make_server(batch=32, slo=100.0)
        events.schedule(0.0, server.on_arrival)
        events.run()
        assert len(records) == 1
        assert records[0].batch_size == 1
        # flushed early enough to make the SLO
        assert not records[0].violated

    def test_oversized_queue_splits_into_batches(self):
        server, events, records = make_server(batch=4, procs=3)
        for i in range(12):
            events.schedule(i * 1e-5, server.on_arrival)
        events.run()
        assert sum(r.batch_size for r in records) == 12
        assert all(r.batch_size <= 4 for r in records)


class TestConcurrency:
    def test_never_exceeds_process_count(self):
        server, events, records = make_server(batch=1, procs=2)
        for i in range(50):
            events.schedule(i * 1e-6, server.on_arrival)
        # after the burst lands, at most `procs` executors may be busy
        events.run(until=1e-3)
        assert server.free_procs >= 0
        assert server.segment.num_processes - server.free_procs <= 2
        events.run()
        assert sum(r.batch_size for r in records) == 50

    def test_all_requests_eventually_served(self):
        server, events, records = make_server(batch=8, procs=1)
        for i in range(30):
            events.schedule(i * 0.001, server.on_arrival)
        events.run()
        assert sum(r.batch_size for r in records) == 30


class TestOverloadSafety:
    def test_no_livelock_when_saturated(self):
        """The regression the first implementation hit: all processes busy
        plus an overdue queue head must not spin the event loop."""
        server, events, records = make_server(batch=2, procs=1, slo=30.0)
        for i in range(200):
            events.schedule(i * 1e-5, server.on_arrival)
        processed = events.run(until=5.0)
        assert processed < 10_000  # would be millions in a livelock
        assert sum(r.batch_size for r in records) == 200

    def test_late_batches_marked_violated(self):
        server, events, records = make_server(batch=2, procs=1, slo=25.0)
        for i in range(40):
            events.schedule(i * 1e-5, server.on_arrival)
        events.run()
        assert any(r.violated for r in records)
        worst = max(r.max_request_latency_ms for r in records)
        assert worst > 25.0


class TestSlowdown:
    def test_interference_slowdown_applied(self):
        events = EventQueue()
        tracker = SMActivityTracker()
        records: list[BatchRecord] = []
        seg = PlacedSegment(
            service_id="svc", model="resnet-50", kind="mps", gpcs=3.5,
            batch_size=4, num_processes=1, capacity=100.0,
            latency_ms=80.0,  # scheduler expected heavy interference
            sm_activity=0.9, served_rate=50.0,
        )
        server = SegmentServer(
            key="k", segment=seg, slo_ms=400.0, events=events,
            tracker=tracker, on_batch=records.append,
        )
        assert server.slowdown > 1.0
