"""Integration tests for the simulation runner."""

import pytest

from repro.core.parvagpu import ParvaGPU
from repro.core.placement import PlacedSegment, Placement
from repro.core.service import Service
from repro.sim import simulate_placement


def toy_placement(capacity=500.0, served=400.0, batch=8, procs=2, lat=20.0):
    p = Placement(framework="toy")
    p.add(
        0,
        PlacedSegment(
            service_id="svc",
            model="resnet-50",
            kind="mig",
            gpcs=2.0,
            batch_size=batch,
            num_processes=procs,
            capacity=capacity,
            latency_ms=lat,
            sm_activity=0.9,
            start=0,
            served_rate=served,
        ),
    )
    return p


def toy_service(slo=300.0, rate=400.0):
    return Service("svc", "resnet-50", slo_latency_ms=slo, request_rate=rate)


class TestRunner:
    def test_underloaded_segment_meets_slo(self):
        report = simulate_placement(
            toy_placement(), [toy_service()], duration_s=1.5, warmup_s=0.25
        )
        assert report.overall_compliance == 1.0
        assert report.violation_rate == 0.0

    def test_goodput_matches_offered_load(self):
        report = simulate_placement(
            toy_placement(served=400.0), [toy_service()], duration_s=2.0
        )
        assert report.achieved_rate("svc") == pytest.approx(400.0, rel=0.1)

    def test_overloaded_segment_violates(self):
        # Offered 3x capacity: queue grows, batches go late.
        report = simulate_placement(
            toy_placement(capacity=500.0, served=1500.0),
            [toy_service(rate=1500.0)],
            duration_s=2.0,
        )
        assert report.overall_compliance < 0.9

    def test_activity_scales_with_load(self):
        lo = simulate_placement(
            toy_placement(served=100.0), [toy_service(rate=100.0)], duration_s=2.0
        )
        hi = simulate_placement(
            toy_placement(served=450.0), [toy_service(rate=450.0)], duration_s=2.0
        )
        (k_lo,) = lo.segment_activity
        assert hi.segment_activity[k_lo] > lo.segment_activity[k_lo]
        assert 0.0 < hi.segment_activity[k_lo] <= 1.0

    def test_poisson_vs_uniform(self):
        uni = simulate_placement(
            toy_placement(), [toy_service()], duration_s=2.0, arrivals="uniform"
        )
        poi = simulate_placement(
            toy_placement(), [toy_service()], duration_s=2.0, arrivals="poisson"
        )
        assert uni.overall_compliance >= poi.overall_compliance

    def test_unknown_arrivals_rejected(self):
        with pytest.raises(ValueError):
            simulate_placement(
                toy_placement(), [toy_service()], arrivals="bursty"
            )

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError):
            simulate_placement(
                toy_placement(), [toy_service()], duration_s=0.2, warmup_s=0.5
            )

    def test_unknown_service_rejected(self):
        placement = toy_placement()
        other = Service("other", "vgg-16", slo_latency_ms=100, request_rate=10)
        with pytest.raises(ValueError):
            simulate_placement(placement, [other])

    def test_deterministic_given_seed(self):
        a = simulate_placement(
            toy_placement(), [toy_service()], duration_s=1.0, seed=3,
            arrivals="poisson",
        )
        b = simulate_placement(
            toy_placement(), [toy_service()], duration_s=1.0, seed=3,
            arrivals="poisson",
        )
        assert a.overall_compliance == b.overall_compliance
        assert a.segment_activity == b.segment_activity


class TestEndToEnd:
    def test_parvagpu_schedule_serves_cleanly(self, profiles):
        services = [
            Service("img", "inceptionv3", slo_latency_ms=300, request_rate=900),
            Service("cls", "resnet-50", slo_latency_ms=250, request_rate=1200),
        ]
        placement = ParvaGPU(profiles).schedule(services)
        report = simulate_placement(placement, services, duration_s=2.0)
        assert report.overall_compliance == pytest.approx(1.0, abs=0.02)
        for sid in ("img", "cls"):
            svc = next(s for s in services if s.id == sid)
            assert report.achieved_rate(sid) == pytest.approx(
                svc.request_rate, rel=0.15
            )
