"""Fast-path simulation kernel vs the event-driven reference engine."""

import numpy as np
import pytest

from repro.core.placement import PlacedSegment, Placement
from repro.core.service import Service
from repro.sim import simulate_placement, simulate_placement_fast
from repro.sim.fastpath import (
    _SegmentKernel,
    _simulate_segment,
    _simulate_segment_vectorized,
)


def one_segment(
    capacity=500.0,
    served=400.0,
    batch=8,
    procs=2,
    lat=25.0,
    kind="mig",
    geometry="mig",
    gpcs=2.0,
):
    p = Placement(framework="toy")
    p.add(
        0,
        PlacedSegment(
            service_id="svc",
            model="resnet-50",
            kind=kind,
            gpcs=gpcs,
            batch_size=batch,
            num_processes=procs,
            capacity=capacity,
            latency_ms=lat,
            sm_activity=0.9,
            start=0,
            served_rate=served,
            geometry=geometry,
        ),
    )
    return p


def service(slo=300.0, rate=400.0):
    return Service("svc", "resnet-50", slo_latency_ms=slo, request_rate=rate)


def both(placement, services, **kw):
    fast = simulate_placement(placement, services, fast_path=True, **kw)
    ref = simulate_placement(placement, services, fast_path=False, **kw)
    return fast, ref


def assert_identical(fast, ref):
    assert fast.fingerprint() == ref.fingerprint()
    assert fast.close_to(ref)


class TestIdentity:
    """The fast path replicates the reference decision-for-decision."""

    @pytest.mark.parametrize("arrivals", ["uniform", "poisson"])
    @pytest.mark.parametrize("load", [0.3, 0.95, 2.0])
    def test_regimes(self, arrivals, load):
        p = one_segment(served=500.0 * load)
        fast, ref = both(p, [service(rate=500.0 * load)], arrivals=arrivals)
        assert_identical(fast, ref)

    def test_warmup_boundary(self):
        # A warmup cutting through mid-stream batches: stats must gate on
        # dispatch time identically in both engines.
        p = one_segment(served=430.0, batch=16)
        fast, ref = both(p, [service(rate=430.0)], duration_s=1.0, warmup_s=0.33)
        assert_identical(fast, ref)

    def test_zero_flush_budget(self):
        # SLO below exec + safety: flush_wait collapses to 0 and every
        # arrival dispatches immediately.
        p = one_segment(served=300.0, batch=8, lat=25.0)
        fast, ref = both(p, [service(slo=10.0, rate=300.0)])
        assert_identical(fast, ref)
        assert ref.overall_compliance < 1.0

    def test_sub_batch_traffic(self):
        # Fewer requests than one batch: a single flush-forced tail.
        p = one_segment(served=3.0, batch=64)
        fast, ref = both(p, [service(rate=3.0)])
        assert_identical(fast, ref)
        assert fast.services["svc"].requests > 0

    def test_zero_rate_segment(self):
        p = one_segment(served=0.0)
        fast, ref = both(p, [service(rate=1.0)])
        assert_identical(fast, ref)
        assert fast.segment_activity == ref.segment_activity == {
            "gpu0/svc/0": 0.0
        }

    def test_mi300x_geometry(self):
        p = one_segment(served=600.0, kind="xcd", geometry="mi300x", gpcs=1.0)
        fast, ref = both(p, [service(rate=600.0)])
        assert_identical(fast, ref)

    def test_multi_service_mixed_fleet(self):
        p = Placement(framework="toy")
        p.add(
            0,
            PlacedSegment(
                service_id="a", model="resnet-50", kind="mig", gpcs=2.0,
                batch_size=8, num_processes=2, capacity=500.0,
                latency_ms=25.0, sm_activity=0.9, start=0, served_rate=420.0,
            ),
        )
        p.add(
            1,
            PlacedSegment(
                service_id="b", model="vgg-16", kind="xcd", gpcs=2.0,
                batch_size=4, num_processes=1, capacity=300.0,
                latency_ms=40.0, sm_activity=0.9, start=0, served_rate=280.0,
                geometry="mi300x",
            ),
        )
        svcs = [
            Service("a", "resnet-50", slo_latency_ms=200, request_rate=420),
            Service("b", "vgg-16", slo_latency_ms=350, request_rate=280),
        ]
        fast, ref = both(p, svcs, arrivals="poisson", seed=7)
        assert_identical(fast, ref)

    def test_default_engine_is_fast(self):
        p = one_segment()
        default = simulate_placement(p, [service()])
        fast = simulate_placement_fast(p, [service()])
        assert default.fingerprint() == fast.fingerprint()


class TestValidation:
    def test_bad_duration(self):
        with pytest.raises(ValueError):
            simulate_placement_fast(
                one_segment(), [service()], duration_s=0.2, warmup_s=0.5
            )

    def test_unknown_service(self):
        other = Service("x", "vgg-16", slo_latency_ms=100, request_rate=10)
        with pytest.raises(ValueError):
            simulate_placement_fast(one_segment(), [other])

    def test_unknown_arrivals(self):
        with pytest.raises(ValueError):
            simulate_placement_fast(
                one_segment(), [service()], arrivals="bursty"
            )


class TestVectorizedPath:
    """The numpy closed form agrees with the scalar kernel where it applies."""

    def kernel(self, batch=8, procs=1, served=400.0):
        seg = one_segment(
            served=served, batch=batch, procs=procs
        ).gpus[0].segments[0]
        return _SegmentKernel.from_segment(seg, 300.0)

    def test_vectorizes_uniform_unsaturated(self):
        from repro.sim.arrivals import uniform_arrivals

        kernel = self.kernel(batch=8, procs=1, served=200.0)
        times = uniform_arrivals(200.0, 2.0)
        vec = _simulate_segment_vectorized(kernel, times, 0.5, 3.0)
        assert vec is not None  # the regime applies
        scalar = _simulate_segment(kernel, times, 0.5, 3.0)
        assert (vec.batches, vec.violations, vec.requests) == (
            scalar.batches, scalar.violations, scalar.requests
        )
        assert vec.latency_max_ms == scalar.latency_max_ms
        assert vec.latency_sum_ms == pytest.approx(
            scalar.latency_sum_ms, rel=1e-12
        )
        assert vec.busy_sm_s == pytest.approx(scalar.busy_sm_s, rel=1e-12)

    def test_declines_saturated(self):
        from repro.sim.arrivals import uniform_arrivals

        kernel = self.kernel(batch=8, procs=1, served=1500.0)
        times = uniform_arrivals(1500.0, 1.0)
        assert _simulate_segment_vectorized(kernel, times, 0.25, 2.0) is None

    def test_empty_arrivals(self):
        kernel = self.kernel()
        res = _simulate_segment_vectorized(
            kernel, np.empty(0, dtype=np.float64), 0.5, 3.0
        )
        assert res is not None and res.batches == 0


class TestReportFingerprint:
    def test_detects_integer_divergence(self):
        p = one_segment()
        a = simulate_placement(p, [service()])
        b = simulate_placement(p, [service()])
        assert a.fingerprint() == b.fingerprint()
        b.services["svc"].violations += 1
        assert a.fingerprint() != b.fingerprint()

    def test_close_to_tolerates_ulps_only(self):
        p = one_segment()
        a = simulate_placement(p, [service()])
        b = simulate_placement(p, [service()])
        b.services["svc"].latency_sum_ms *= 1.0 + 1e-13
        assert a.close_to(b)
        b.services["svc"].latency_sum_ms *= 1.0 + 1e-6
        assert not a.close_to(b)
