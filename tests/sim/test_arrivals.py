"""Unit tests for arrival generation."""

import numpy as np
import pytest

from repro.sim.arrivals import poisson_arrivals, uniform_arrivals


class TestPoisson:
    def test_rate_matches(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(1000.0, 10.0, rng)
        assert len(times) == pytest.approx(10000, rel=0.05)

    def test_sorted_and_bounded(self):
        rng = np.random.default_rng(1)
        times = poisson_arrivals(500.0, 2.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0
        assert times[-1] < 2.0

    def test_zero_rate(self):
        rng = np.random.default_rng(0)
        assert len(poisson_arrivals(0.0, 10.0, rng)) == 0

    def test_negative_rate_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(-1.0, 1.0, rng)

    def test_reproducible(self):
        a = poisson_arrivals(100.0, 1.0, np.random.default_rng(7))
        b = poisson_arrivals(100.0, 1.0, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_exponential_gaps(self):
        rng = np.random.default_rng(3)
        times = poisson_arrivals(2000.0, 10.0, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(1 / 2000.0, rel=0.05)
        assert gaps.std() == pytest.approx(1 / 2000.0, rel=0.1)  # CV ~ 1


class TestUniform:
    def test_exact_count(self):
        assert len(uniform_arrivals(100.0, 2.0)) == 200

    def test_even_spacing(self):
        times = uniform_arrivals(10.0, 1.0)
        assert np.allclose(np.diff(times), 0.1)

    def test_bounded(self):
        times = uniform_arrivals(100.0, 1.0)
        assert times[0] >= 0
        assert times[-1] < 1.0

    def test_degenerate(self):
        assert len(uniform_arrivals(0.0, 1.0)) == 0
        assert len(uniform_arrivals(10.0, 0.0)) == 0

    def test_fractional_expectation_rounds_half_up(self):
        # rate * duration = 21.2 -> 21, but 21.5 and 21.8 -> 22; plain
        # int() truncation under-generated every fractional expectation.
        assert len(uniform_arrivals(10.6, 2.0)) == 21
        assert len(uniform_arrivals(10.75, 2.0)) == 22
        assert len(uniform_arrivals(10.9, 2.0)) == 22

    def test_tiny_rate_still_generates_traffic(self):
        # A segment with 0 < rate*duration < 1 used to receive zero
        # requests; half a request or more now rounds up to one.
        assert len(uniform_arrivals(0.3, 2.0)) == 1
        assert len(uniform_arrivals(0.2, 2.0)) == 0

    def test_effective_rate_error_bounded(self):
        # Rounding half-up keeps the realized count within half a
        # request of the expectation (truncation allowed a full one).
        for rate in (3.3, 10.6, 47.9, 333.7):
            n = len(uniform_arrivals(rate, 2.0))
            assert abs(n - rate * 2.0) <= 0.5
