"""Unit tests for arrival generation."""

import numpy as np
import pytest

from repro.sim.arrivals import poisson_arrivals, uniform_arrivals


class TestPoisson:
    def test_rate_matches(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(1000.0, 10.0, rng)
        assert len(times) == pytest.approx(10000, rel=0.05)

    def test_sorted_and_bounded(self):
        rng = np.random.default_rng(1)
        times = poisson_arrivals(500.0, 2.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0
        assert times[-1] < 2.0

    def test_zero_rate(self):
        rng = np.random.default_rng(0)
        assert len(poisson_arrivals(0.0, 10.0, rng)) == 0

    def test_negative_rate_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(-1.0, 1.0, rng)

    def test_reproducible(self):
        a = poisson_arrivals(100.0, 1.0, np.random.default_rng(7))
        b = poisson_arrivals(100.0, 1.0, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_exponential_gaps(self):
        rng = np.random.default_rng(3)
        times = poisson_arrivals(2000.0, 10.0, rng)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(1 / 2000.0, rel=0.05)
        assert gaps.std() == pytest.approx(1 / 2000.0, rel=0.1)  # CV ~ 1


class TestUniform:
    def test_exact_count(self):
        assert len(uniform_arrivals(100.0, 2.0)) == 200

    def test_even_spacing(self):
        times = uniform_arrivals(10.0, 1.0)
        assert np.allclose(np.diff(times), 0.1)

    def test_bounded(self):
        times = uniform_arrivals(100.0, 1.0)
        assert times[0] >= 0
        assert times[-1] < 1.0

    def test_degenerate(self):
        assert len(uniform_arrivals(0.0, 1.0)) == 0
        assert len(uniform_arrivals(10.0, 0.0)) == 0
