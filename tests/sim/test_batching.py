"""Unit tests for the batch assembly policy."""

import pytest

from repro.sim.batching import BatchPolicy


def policy(batch=8, slo=100.0, exec_ms=40.0, safety=2.0):
    return BatchPolicy(
        batch_size=batch, slo_ms=slo, exec_estimate_ms=exec_ms, safety_ms=safety
    )


class TestValidation:
    def test_bad_batch(self):
        with pytest.raises(ValueError):
            policy(batch=0)

    def test_bad_slo(self):
        with pytest.raises(ValueError):
            policy(slo=0.0)


class TestFlushWait:
    def test_budget_arithmetic(self):
        assert policy().flush_wait_ms == pytest.approx(100 - 40 - 2)

    def test_never_negative(self):
        assert policy(slo=30.0, exec_ms=40.0).flush_wait_ms == 0.0

    def test_deadline_in_seconds(self):
        p = policy()
        assert p.flush_deadline(2.0) == pytest.approx(2.0 + 0.058)


class TestShouldDispatch:
    def test_full_batch_dispatches(self):
        assert policy().should_dispatch(queue_len=8, oldest_wait_ms=0.0)

    def test_overfull_dispatches(self):
        assert policy().should_dispatch(queue_len=20, oldest_wait_ms=0.0)

    def test_partial_waits(self):
        assert not policy().should_dispatch(queue_len=3, oldest_wait_ms=10.0)

    def test_partial_flushes_at_deadline(self):
        assert policy().should_dispatch(queue_len=3, oldest_wait_ms=58.0)

    def test_empty_never_dispatches(self):
        assert not policy().should_dispatch(queue_len=0, oldest_wait_ms=999.0)

    def test_zero_budget_dispatches_immediately(self):
        p = policy(slo=30.0, exec_ms=40.0)  # flush wait clamps to 0
        assert p.should_dispatch(queue_len=1, oldest_wait_ms=0.0)
