"""Unit tests for the discrete-event core."""

import pytest

from repro.sim.engine import EventQueue


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        for t in (3.0, 1.0, 2.0):
            q.schedule(t, lambda now, p: fired.append(p), t)
        q.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda now, p: fired.append(p), "first")
        q.schedule(1.0, lambda now, p: fired.append(p), "second")
        q.run()
        assert fired == ["first", "second"]

    def test_clock_advances(self):
        q = EventQueue()
        q.schedule(5.0, lambda now, p: None)
        q.run()
        assert q.now == 5.0

    def test_run_until_stops(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda now, p: fired.append(1))
        q.schedule(10.0, lambda now, p: fired.append(10))
        n = q.run(until=5.0)
        assert n == 1
        assert fired == [1]
        assert q.pending == 1
        assert q.now == 5.0  # clock advanced to the horizon

    def test_cascading_events(self):
        q = EventQueue()
        fired = []

        def chain(now, depth):
            fired.append(depth)
            if depth < 3:
                q.schedule(now + 1.0, chain, depth + 1)

        q.schedule(0.0, chain, 0)
        q.run()
        assert fired == [0, 1, 2, 3]
        assert q.processed == 4

    def test_scheduling_in_the_past_rejected(self):
        q = EventQueue()
        q.schedule(2.0, lambda now, p: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule(1.0, lambda now, p: None)
