"""Unit tests for time-varying request-rate traces."""

import pytest

from repro.sim.traces import (
    Epoch,
    RateTrace,
    diurnal_trace,
    epoch_boundaries,
    surge_trace,
)


class TestEpochAndTrace:
    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            Epoch(-1.0, 10.0)
        with pytest.raises(ValueError):
            Epoch(0.0, -1.0)

    def test_trace_needs_epochs(self):
        with pytest.raises(ValueError):
            RateTrace("svc", ())

    def test_trace_must_start_at_zero(self):
        with pytest.raises(ValueError):
            RateTrace("svc", (Epoch(5.0, 10.0),))

    def test_trace_monotone_starts(self):
        with pytest.raises(ValueError):
            RateTrace("svc", (Epoch(0.0, 1.0), Epoch(10.0, 2.0), Epoch(5.0, 3.0)))
        with pytest.raises(ValueError):
            RateTrace("svc", (Epoch(0.0, 1.0), Epoch(0.0, 2.0)))

    def test_rate_at_steps(self):
        trace = RateTrace(
            "svc", (Epoch(0.0, 100.0), Epoch(10.0, 200.0), Epoch(20.0, 50.0))
        )
        assert trace.rate_at(0.0) == 100.0
        assert trace.rate_at(9.99) == 100.0
        assert trace.rate_at(10.0) == 200.0
        assert trace.rate_at(25.0) == 50.0

    def test_rate_at_negative_time(self):
        trace = RateTrace("svc", (Epoch(0.0, 1.0),))
        with pytest.raises(ValueError):
            trace.rate_at(-1.0)

    def test_rate_at_boundary_is_inclusive(self):
        # Pins the epoch-start semantics the bisect lookup must keep:
        # an epoch's start belongs to that epoch, the instant before it
        # to the previous one, and times past the last start stay there.
        trace = RateTrace(
            "svc", (Epoch(0.0, 10.0), Epoch(5.0, 20.0), Epoch(7.5, 30.0))
        )
        assert trace.rate_at(5.0) == 20.0  # start inclusive
        assert trace.rate_at(4.999999) == 10.0
        assert trace.rate_at(7.5) == 30.0
        assert trace.rate_at(1e9) == 30.0  # beyond the last epoch

    def test_rate_at_matches_linear_scan(self):
        # The bisect lookup agrees with the reference linear scan on a
        # dense probe grid.
        trace = diurnal_trace("svc", base_rate=500.0, epochs=48)

        def linear(t):
            current = trace.epochs[0].rate
            for epoch in trace.epochs:
                if epoch.start_s <= t:
                    current = epoch.rate
                else:
                    break
            return current

        for k in range(200):
            t = k * 86_400.0 / 199
            assert trace.rate_at(t) == linear(t)

    def test_peak_and_mean(self):
        trace = RateTrace("svc", (Epoch(0.0, 100.0), Epoch(10.0, 300.0)))
        assert trace.peak_rate() == 300.0
        assert trace.mean_rate(20.0) == pytest.approx(200.0)
        with pytest.raises(ValueError):
            trace.mean_rate(0.0)


class TestGenerators:
    def test_diurnal_shape(self):
        trace = diurnal_trace("svc", base_rate=1000, amplitude=0.5, epochs=24)
        assert len(trace.epochs) == 24
        rates = [e.rate for e in trace.epochs]
        assert max(rates) <= 1500 + 1e-9
        assert min(rates) >= 500 - 1e-9

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            diurnal_trace("svc", 100, amplitude=1.5)
        with pytest.raises(ValueError):
            diurnal_trace("svc", 100, epochs=0)

    def test_surge_shape(self):
        trace = surge_trace("svc", 100.0, 3.0, 10.0, 20.0)
        assert trace.rate_at(5.0) == 100.0
        assert trace.rate_at(15.0) == 300.0
        assert trace.rate_at(25.0) == 100.0

    def test_surge_validation(self):
        with pytest.raises(ValueError):
            surge_trace("svc", 100.0, 2.0, 20.0, 10.0)

    def test_epoch_boundaries_union(self):
        a = RateTrace("a", (Epoch(0.0, 1.0), Epoch(10.0, 2.0)))
        b = RateTrace("b", (Epoch(0.0, 1.0), Epoch(5.0, 2.0), Epoch(10.0, 1.0)))
        assert epoch_boundaries([a, b]) == (0.0, 5.0, 10.0)
