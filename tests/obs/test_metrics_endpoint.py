"""``GET /metrics``: Prometheus exposition over the status port."""

import asyncio

import pytest

from repro.core.service import Service
from repro.obs import PROMETHEUS_CONTENT_TYPE
from repro.ops import FleetController
from repro.ops.events import RateEpoch
from repro.serve import ServeGateway, StatusServer, VirtualClock, timeline_source


@pytest.fixture
def services():
    return [
        Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
        Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
    ]


async def fetch(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    headers = {}
    for line in head.decode().split("\r\n")[1:]:
        key, _, value = line.partition(": ")
        headers[key.lower()] = value
    return status, headers, body


def run_gateway(profiles, services):
    gateway = ServeGateway(
        # workers=1: inline shard path, so shard_* health attaches too
        FleetController(profiles, workers=1), services, 100.0,
        VirtualClock(), measure_s=0.1,
    )
    events = [RateEpoch(time_s=30.0, service_id="a", rate=6000.0)]
    asyncio.run(gateway.run(timeline_source(events)))
    return gateway


class TestMetricsEndpoint:
    def test_scrape_is_prometheus_text(self, profiles, services):
        gateway = run_gateway(profiles, services)

        async def scenario():
            server = StatusServer(gateway)
            await server.start()
            try:
                return await fetch(server.port, "/metrics")
            finally:
                await server.stop()

        status, headers, body = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        # controller counters, attached gateway/shard health, and the
        # intake histogram must all be on the one scrape surface
        assert "# TYPE ops_intervals_total counter\n" in text
        assert "# TYPE gateway_steps counter\n" in text
        assert "# TYPE shard_batches counter\n" in text
        assert 'ops_events_applied_total{kind="RateEpoch"} 1\n' in text

    def test_scrape_matches_health_doc(self, profiles, services):
        gateway = run_gateway(profiles, services)

        async def scenario():
            server = StatusServer(gateway)
            await server.start()
            try:
                return await fetch(server.port, "/metrics")
            finally:
                await server.stop()

        _, _, body = asyncio.run(scenario())
        lines = body.decode("utf-8").splitlines()
        steps = next(
            line for line in lines if line.startswith("gateway_steps ")
        )
        assert steps == f"gateway_steps {gateway.health.steps}"

    def test_post_to_metrics_is_405(self, profiles, services):
        gateway = run_gateway(profiles, services)

        async def scenario():
            server = StatusServer(gateway)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b"POST /metrics HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 0\r\n\r\n"
                )
                await writer.drain()
                data = await reader.read()
                writer.close()
                return int(data.split()[1])
            finally:
                await server.stop()

        assert asyncio.run(scenario()) == 405
