"""The flight recorder: ring bound, dump triggers, crash breadcrumbs.

Dumps must fire automatically on the three degradation signals the
control plane defines — checkpoint failure, gateway safe-mode entry,
and shard-pool degradation — and the recorder itself must never turn a
degradation into a crash.
"""

import asyncio
import json

import pytest

from repro.core.service import Service
from repro.obs import FlightRecorder, ObsHub, Span
from repro.ops import CheckpointError, FleetController
from repro.parallel import ShardPool
from repro.serve import ServeGateway, VirtualClock


class TestRing:
    def test_ring_is_bounded(self):
        fl = FlightRecorder(capacity=3)
        for i in range(10):
            fl.note("decision", step=i)
        assert len(fl) == 3
        assert [e["step"] for e in fl.entries()] == [7, 8, 9]

    def test_spans_enter_via_sink(self):
        fl = FlightRecorder()
        fl.add_span(Span(0, "interval", "interval", 1.0, 1.0, -1))
        (entry,) = fl.entries()
        assert entry["kind"] == "span"
        assert entry["name"] == "interval"

    def test_dump_document_shape(self, tmp_path):
        fl = FlightRecorder()
        fl.note("decision", t_s=4.0, path="full")
        out = tmp_path / "flight.json"
        doc = fl.dump("safe-mode", out)
        assert doc["format"] == "parvagpu-flight"
        assert doc["reason"] == "safe-mode"
        assert doc["entries"] == [
            {"kind": "decision", "t_s": 4.0, "path": "full"}
        ]
        assert fl.last_dump_path == str(out)
        assert json.loads(out.read_text()) == doc

    def test_dump_write_failure_is_swallowed(self, tmp_path):
        fl = FlightRecorder()
        fl.note("decision")
        doc = fl.dump("x", tmp_path / "missing" / "flight.json")
        assert doc is not None  # the in-memory dump still happened
        assert fl.last_dump_path is None

    def test_disabled_recorder_is_inert(self):
        fl = FlightRecorder(enabled=False)
        fl.note("decision")
        assert len(fl) == 0
        assert fl.dump("x") is None

    def test_hub_dump_counts_by_reason(self):
        hub = ObsHub()
        hub.note("decision")
        hub.dump_flight("safe-mode")
        hub.dump_flight("safe-mode")
        c = hub.counter(
            "obs_flight_dumps_total", labelnames=("reason",)
        )
        assert c.value(reason="safe-mode") == 2.0


@pytest.fixture
def services():
    return [
        Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
        Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
    ]


async def _dying_source():
    raise ConnectionError("stream gone")
    yield  # pragma: no cover — makes this an async generator


class TestSafeModeDump:
    def test_gateway_safe_mode_dumps_flight(self, services):
        gateway = ServeGateway(
            FleetController(), services, 100.0, VirtualClock()
        )
        asyncio.run(gateway.run(_dying_source()))
        assert gateway.health.safe_mode
        assert gateway.obs.flight.dumps == 1
        dump = gateway.obs.flight.last_dump
        assert dump["reason"] == "safe-mode"
        kinds = {e["kind"] for e in dump["entries"]}
        assert "safe-mode" in kinds


class TestCheckpointErrorDump:
    def test_unwritable_checkpoint_dumps_flight(self, services, tmp_path):
        ctrl = FleetController()
        bad = tmp_path / "no-such-dir" / "ops.ckpt"
        with pytest.raises((CheckpointError, OSError)):
            ctrl.run(
                services, [], 50.0,
                checkpoint_path=bad, checkpoint_every=1,
            )
        assert ctrl.obs.flight.dumps >= 1
        assert ctrl.obs.flight.last_dump["reason"] == "checkpoint-error"

    def test_crash_checkpoint_references_last_dump(self, services):
        ctrl = FleetController()
        ctrl.begin(services, 50.0)
        ctrl.step(10.0, [])
        doc = ctrl.checkpoint()
        # no dump happened: the breadcrumb is present but empty
        assert doc["flight_dump"] is None
        ctrl.finish()


class _AlwaysCrash:
    def before(self, batch, attempt, index, in_worker):
        if in_worker:
            import os

            os._exit(43)


# must be module-level to pickle into workers
def _square(x):
    return x * x


class TestDegradationDump:
    def test_shard_degradation_dumps_flight(self):
        hub = ObsHub()
        with ShardPool(
            2, fault_injector=_AlwaysCrash(), max_attempts=1,
            backoff_s=0.0, obs=hub,
        ) as pool:
            assert pool.run(_square, [1, 2, 3]) == [1, 4, 9]
        assert pool.health.degradations >= 1
        assert hub.flight.dumps >= 1
        assert hub.flight.last_dump["reason"] == "shard-degradation"
        kinds = {e["kind"] for e in hub.flight.last_dump["entries"]}
        assert "shard-degradation" in kinds
        assert "worker-crash" in kinds
