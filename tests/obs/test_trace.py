"""Trace spans: tree structure, exports, and replay byte-identity."""

import json

from repro.obs import ObsHub, Tracer
from repro.ops import FleetController
from repro.scenarios.ops import OPS_SEED, ops_run


class TestTracer:
    def test_nesting_records_parents(self):
        tr = Tracer()
        with tr.span("interval", t_s=10.0) as root:
            with tr.span("apply") as child:
                pass
        assert root.seq == 0 and root.parent == -1
        assert child.seq == 1 and child.parent == 0

    def test_t_s_inherits_from_enclosing_span(self):
        tr = Tracer()
        with tr.span("interval", t_s=42.0):
            with tr.span("apply") as child:
                pass
        assert child.t0_s == 42.0
        with tr.span("root") as top:
            pass
        assert top.t0_s == 0.0

    def test_wall_sidecar_pinned_to_zero_without_wall_track(self):
        tr = Tracer()
        with tr.span("x", t_s=1.0) as sp:
            pass
        assert sp.wall_s == 0.0

    def test_wall_sidecar_measured_with_wall_track(self):
        ticks = iter([1.0, 3.5])
        tr = Tracer(wall=lambda: next(ticks))
        with tr.span("x") as sp:
            pass
        assert sp.wall_s == 2.5

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        with tr.span("x") as sp:
            sp.args["ignored"] = True
        assert tr.spans == []

    def test_sink_receives_closed_spans(self):
        seen = []
        tr = Tracer(sink=seen.append)
        with tr.span("a", t_s=1.0):
            with tr.span("b"):
                pass
        # sink fires on exit: innermost closes first
        assert [sp.name for sp in seen] == ["b", "a"]

    def test_jsonl_lines_are_valid_json(self):
        tr = Tracer()
        with tr.span("interval", t_s=5.0, step=3):
            pass
        (line,) = tr.to_jsonl()
        doc = json.loads(line)
        assert doc["name"] == "interval"
        assert doc["t0_s"] == 5.0
        assert doc["args"] == {"step": 3}

    def test_chrome_doc_shape(self):
        tr = Tracer()
        with tr.span("interval", t_s=2.0) as sp:
            sp.t1_s = 2.5
        doc = tr.chrome_doc()
        assert doc["displayTimeUnit"] == "ms"
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X"
        assert ev["ts"] == 2_000_000
        assert ev["dur"] == 500_000
        assert ev["args"]["parent"] == -1


def _traced_run(tmp_path, name):
    run = ops_run("S13", seed=OPS_SEED)
    ctrl = FleetController(fast_path=True, seed=OPS_SEED)
    ctrl.run(
        run.services, run.timeline, run.horizon_s,
        measure_s=0.0, sim_seed=OPS_SEED,
    )
    out = tmp_path / name
    ctrl.obs.tracer.write_chrome(out)
    return ctrl, out


class TestReplayIdentity:
    def test_span_tree_byte_identical_across_replays(self, tmp_path):
        ctrl1, p1 = _traced_run(tmp_path, "t1.json")
        ctrl2, p2 = _traced_run(tmp_path, "t2.json")
        assert p1.read_bytes() == p2.read_bytes()
        assert ctrl1.obs.tracer.to_jsonl() == ctrl2.obs.tracer.to_jsonl()

    def test_chrome_export_is_loadable_and_complete(self, tmp_path):
        ctrl, path = _traced_run(tmp_path, "t.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == len(ctrl.obs.tracer.spans)
        names = {ev["name"] for ev in events}
        assert {"interval", "apply", "fingerprint", "report"} <= names
        # every parent reference resolves inside the event list
        seqs = {ev["args"]["seq"] for ev in events}
        for ev in events:
            parent = ev["args"]["parent"]
            assert parent == -1 or parent in seqs

    def test_offline_wall_sidecars_are_zero(self, tmp_path):
        ctrl, _ = _traced_run(tmp_path, "t.json")
        assert all(sp.wall_s == 0.0 for sp in ctrl.obs.tracer.spans)


class TestHubWiring:
    def test_hub_wall_rebinds_tracer(self):
        hub = ObsHub()
        assert hub.wall() == 0.0
        hub.set_wall(lambda: 7.0)
        assert hub.wall() == 7.0
        assert hub.tracer._wall() == 7.0

    def test_live_hub_has_a_wall_track(self):
        hub = ObsHub.live()
        assert hub.wall() > 0.0
