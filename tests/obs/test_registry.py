"""The obs metrics registry and its Prometheus text exposition."""

import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    MetricsRegistry,
    fields_doc,
    render_prometheus,
)


class TestFamilies:
    def test_counter_increments_and_values(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_events_total", "events", ("kind",))
        c.inc(kind="arrival")
        c.inc(3, kind="arrival")
        c.inc(kind="failure")
        assert c.value(kind="arrival") == 4.0
        assert c.value(kind="failure") == 1.0
        assert c.value(kind="missing") == 0.0

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_names_are_validated_in_order(self):
        c = MetricsRegistry().counter("x_total", labelnames=("a", "b"))
        with pytest.raises(ValueError):
            c.inc(a="1")  # missing b
        with pytest.raises(ValueError):
            c.inc(b="2", a="1")  # wrong declared order

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3.0

    def test_histogram_buckets_are_cumulative_with_inf(self):
        h = MetricsRegistry().histogram(
            "wall_s", buckets=(0.1, 1.0, 10.0)
        )
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        cumulative, total, count = h.snapshot()
        assert cumulative == [
            (0.1, 1), (1.0, 3), (10.0, 4), (math.inf, 5),
        ]
        assert total == pytest.approx(56.05)
        assert count == 5.0

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("x", buckets=(1.0, 0.5))

    def test_default_buckets_are_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS

    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_kind_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValueError):
            reg.gauge("a_total")
        with pytest.raises(ValueError):
            reg.counter("a_total", labelnames=("x",))


class _Stats:
    OBS_FIELDS = {"hits": "counter", "depth": "gauge"}

    def __init__(self):
        self.hits = 0
        self.depth = 0


class TestAttach:
    def test_attached_fields_appear_as_families(self):
        reg = MetricsRegistry()
        stats = _Stats()
        reg.attach("pool", stats)
        stats.hits += 7
        stats.depth = 2
        by_name = {m.name: m for m in reg.collect()}
        assert by_name["pool_hits"].samples() == [((), 7.0)]
        assert by_name["pool_hits"].kind == "counter"
        assert by_name["pool_depth"].samples() == [((), 2.0)]
        assert by_name["pool_depth"].kind == "gauge"

    def test_reattach_replaces_previous_object(self):
        reg = MetricsRegistry()
        old, new = _Stats(), _Stats()
        old.hits = 99
        new.hits = 1
        reg.attach("pool", old)
        reg.attach("pool", new)
        by_name = {m.name: m for m in reg.collect()}
        assert by_name["pool_hits"].samples() == [((), 1.0)]

    def test_fields_doc_mirrors_the_spec(self):
        stats = _Stats()
        stats.hits = 3
        assert fields_doc(stats) == {"hits": 3, "depth": 0}


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("a_total")
        c.inc(5)
        g = reg.gauge("b")
        g.set(9)
        h = reg.histogram("c")
        h.observe(1.0)
        assert c.value() == 0.0
        assert g.value() == 0.0
        assert h.snapshot()[2] == 0.0
        reg.attach("pool", _Stats())
        names = [m.name for m in reg.collect()]
        assert "pool_hits" not in names


class TestPrometheus:
    def test_content_type_constant(self):
        assert PROMETHEUS_CONTENT_TYPE == (
            "text/plain; version=0.0.4; charset=utf-8"
        )

    def test_exposition_structure(self):
        reg = MetricsRegistry()
        reg.counter("ops_steps_total", "steps taken").inc(3)
        text = render_prometheus(reg)
        assert "# HELP ops_steps_total steps taken\n" in text
        assert "# TYPE ops_steps_total counter\n" in text
        assert "ops_steps_total 3\n" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("p",)).inc(
            p='a"b\\c\nd'
        )
        text = render_prometheus(reg)
        assert 'x_total{p="a\\"b\\\\c\\nd"} 1' in text

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "line\nbreak \\ slash")
        text = render_prometheus(reg)
        assert "# HELP x_total line\\nbreak \\\\ slash" in text

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("w_s", "wall", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        lines = render_prometheus(reg).splitlines()
        assert 'w_s_bucket{le="0.1"} 1' in lines
        assert 'w_s_bucket{le="1"} 2' in lines
        assert 'w_s_bucket{le="+Inf"} 3' in lines
        assert "w_s_sum 5.55" in lines
        assert "w_s_count 3" in lines

    def test_scrape_is_byte_deterministic(self):
        def build():
            reg = MetricsRegistry()
            # insertion order scrambled on purpose
            reg.gauge("z_depth").set(4)
            c = reg.counter("a_total", labelnames=("k",))
            c.inc(k="b")
            c.inc(k="a")
            reg.attach("pool", _Stats())
            return render_prometheus(reg)

        assert build() == build()

    def test_families_render_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z_total").inc()
        reg.counter("a_total").inc()
        text = render_prometheus(reg)
        assert text.index("a_total") < text.index("z_total")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_infinite_and_integral_values(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(float("inf"))
        text = render_prometheus(reg)
        assert "g +Inf" in text
