"""Unit tests for Eq. 3 internal slack and Eq. 4 external fragmentation."""

import pytest

from repro.core.placement import PlacedSegment, Placement
from repro.metrics import (
    external_fragmentation,
    internal_slack,
    log_ms,
    raw_fragmentation,
    segment_activity,
)


def seg(sid="a", gpcs=7.0, start=0, capacity=100.0, served=100.0, activity=1.0):
    return PlacedSegment(
        service_id=sid,
        model="resnet-50",
        kind="mig",
        gpcs=gpcs,
        batch_size=8,
        num_processes=1,
        capacity=capacity,
        latency_ms=10.0,
        sm_activity=activity,
        start=start,
        served_rate=served,
    )


class TestSegmentActivity:
    def test_scales_with_load(self):
        assert segment_activity(0.8, 0.5) == pytest.approx(0.4)

    def test_clamps_overload(self):
        assert segment_activity(0.8, 2.0) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            segment_activity(1.5, 0.5)
        with pytest.raises(ValueError):
            segment_activity(0.5, -0.1)


class TestInternalSlack:
    def test_perfect_utilization(self):
        p = Placement(framework="t")
        p.add(0, seg(activity=1.0, served=100.0))
        assert internal_slack(p) == pytest.approx(0.0)

    def test_half_busy(self):
        p = Placement(framework="t")
        p.add(0, seg(activity=1.0, served=50.0))
        assert internal_slack(p) == pytest.approx(0.5)

    def test_sm_weighted(self):
        p = Placement(framework="t")
        p.add(0, seg(sid="big", gpcs=4.0, start=0, activity=1.0, served=100.0))
        p.add(0, seg(sid="small", gpcs=1.0, start=4, activity=1.0, served=0.0))
        # 4 GPCs fully busy, 1 GPC idle -> slack 1/5.
        assert internal_slack(p) == pytest.approx(0.2)

    def test_empty_placement(self):
        assert internal_slack(Placement(framework="t")) == 0.0

    def test_measured_activity_override(self):
        p = Placement(framework="t")
        p.add(0, seg(activity=1.0, served=100.0))
        assert internal_slack(p, {"gpu0/a/0": 0.25}) == pytest.approx(0.75)

    def test_measured_activity_missing_key(self):
        p = Placement(framework="t")
        p.add(0, seg())
        with pytest.raises(KeyError):
            internal_slack(p, {})


class TestExternalFragmentation:
    def test_full_gpus_no_fragmentation(self):
        p = Placement(framework="t")
        p.add(0, seg(gpcs=7.0))
        p.add(1, seg(sid="b", gpcs=7.0))
        assert external_fragmentation(p) == 0.0

    def test_frontier_excluded(self):
        """A partially-filled *last* GPU is free capacity, not fragmentation."""
        p = Placement(framework="t")
        p.add(0, seg(gpcs=7.0))
        p.add(1, seg(sid="b", gpcs=2.0))
        assert external_fragmentation(p) == 0.0
        assert raw_fragmentation(p) == pytest.approx(5 * 14 / 196)

    def test_interior_holes_counted(self):
        p = Placement(framework="t")
        p.add(0, seg(gpcs=4.0))  # 3 GPCs wasted here
        p.add(1, seg(sid="b", gpcs=7.0))
        p.add(2, seg(sid="c", gpcs=2.0))  # frontier
        assert external_fragmentation(p) == pytest.approx(3 * 14 / (3 * 98))

    def test_empty_placement(self):
        assert external_fragmentation(Placement(framework="t")) == 0.0
        assert raw_fragmentation(Placement(framework="t")) == 0.0

    def test_single_gpu_never_fragmented(self):
        p = Placement(framework="t")
        p.add(0, seg(gpcs=1.0))
        assert external_fragmentation(p) == 0.0


class TestLogMs:
    def test_log10(self):
        assert log_ms(1000.0) == pytest.approx(3.0)
        assert log_ms(0.1) == pytest.approx(-1.0)

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            log_ms(0.0)
