"""The closed-loop fleet controller: event application, identity, spares."""

import pytest

from repro.core.service import Service
from repro.ops import FleetController, merge_timeline, run_identity_checked
from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    RateEpoch,
    ServiceArrival,
    ServiceDeparture,
    SloChange,
    SpotPreemptionWave,
)
from repro.sim.traces import surge_trace
from repro.ops.chaos import rate_epochs


@pytest.fixture
def services():
    return [
        Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
        Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
        Service("c", "densenet-121", slo_latency_ms=200, request_rate=1500),
    ]


def controller(profiles, **kw):
    return FleetController(profiles, **kw)


class TestBootstrapAndRates:
    def test_empty_timeline_deploys_once(self, profiles, services):
        report = controller(profiles).run(services, (), horizon_s=100.0)
        assert len(report.intervals) == 1
        rec = report.intervals[0]
        assert rec.path == "full"
        assert rec.duration_s == 100.0
        assert rec.num_gpus > 0

    def test_surge_grows_and_shrinks_fleet(self, profiles, services):
        timeline = rate_epochs(
            [surge_trace("a", 2000, surge_factor=4.0,
                         surge_start_s=100.0, surge_end_s=200.0)]
        )
        report = controller(profiles).run(services, timeline, horizon_s=300.0)
        gpus = {r.time_s: r.num_gpus for r in report.intervals}
        assert gpus[100.0] > gpus[0.0]
        assert gpus[200.0] < gpus[100.0]
        assert all(r.path in ("full", "incremental") for r in report.intervals)
        assert report.intervals[1].path == "incremental"

    def test_unchanged_rate_is_cheap(self, profiles, services):
        timeline = [RateEpoch(time_s=50.0, service_id="a", rate=2000.0)]
        report = controller(profiles).run(services, timeline, horizon_s=100.0)
        assert report.intervals[1].reconfig_ops == 0

    def test_bootstrap_records_work_but_no_downtime(self, profiles, services):
        """Initial deployment precedes serving: setup work is priced, but
        no tenant was interrupted — downtime starts at zero."""
        report = controller(profiles).run(services, (), horizon_s=50.0)
        rec = report.intervals[0]
        assert rec.reconfig_work_s > 0
        assert rec.downtime_total_s == 0.0
        assert rec.zero_downtime
        assert report.total_downtime_s == 0.0

    def test_gpu_hours_integrate_intervals(self, profiles, services):
        report = controller(profiles).run(services, (), horizon_s=7200.0)
        rec = report.intervals[0]
        assert report.gpu_hours == pytest.approx(rec.num_gpus * 2.0)


class TestChurn:
    def test_arrival_gets_capacity(self, profiles, services):
        timeline = [
            ServiceArrival(time_s=60.0, service_id="newbie", model="vgg-16",
                           request_rate=400.0, slo_latency_ms=300.0)
        ]
        ctrl = controller(profiles)
        report = ctrl.run(services, timeline, horizon_s=120.0)
        placement = ctrl.manager.current
        assert placement.total_capacity("newbie") >= 400.0 * (1 - 1e-9)
        assert report.intervals[-1].services == 4

    def test_departure_releases_segments(self, profiles, services):
        timeline = [ServiceDeparture(time_s=60.0, service_id="b")]
        ctrl = controller(profiles)
        report = ctrl.run(services, timeline, horizon_s=120.0)
        assert not ctrl.manager.current.segments_of("b")
        assert report.intervals[-1].services == 2

    def test_departure_can_release_gpus(self, profiles):
        fat = [
            Service("big", "vgg-19", slo_latency_ms=400, request_rate=4000),
            Service("small", "mobilenetv2", slo_latency_ms=150, request_rate=500),
        ]
        timeline = [ServiceDeparture(time_s=10.0, service_id="big")]
        report = controller(profiles).run(fat, timeline, horizon_s=20.0)
        assert (
            report.intervals[-1].num_gpus < report.intervals[0].num_gpus
        )

    def test_unknown_ids_are_skipped_not_fatal(self, profiles, services):
        timeline = [
            ServiceDeparture(time_s=10.0, service_id="ghost"),
            RateEpoch(time_s=10.0, service_id="phantom", rate=10.0),
            SloChange(time_s=10.0, service_id="spook", slo_latency_ms=99.0),
            GpuRecovery(time_s=10.0, ref="never-failed"),
        ]
        report = controller(profiles).run(services, timeline, horizon_s=20.0)
        assert report.intervals[1].skipped == 4

    def test_churn_burst_triggers_full_replan(self, profiles, services):
        timeline = [
            ServiceArrival(time_s=30.0, service_id=f"new-{i}",
                           model="mobilenetv2", request_rate=300.0,
                           slo_latency_ms=200.0)
            for i in range(4)
        ]
        ctrl = controller(profiles, full_replan_fraction=0.5)
        report = ctrl.run(services, timeline, horizon_s=60.0)
        # 4 arrivals > 0.5 * 3 services: the delta demands a re-schedule
        assert report.intervals[1].path == "full"
        assert report.intervals[1].services == 7

    def test_slo_renegotiation_replans_one_service(self, profiles, services):
        timeline = [SloChange(time_s=40.0, service_id="b", slo_latency_ms=400.0)]
        ctrl = controller(profiles)
        report = ctrl.run(services, timeline, horizon_s=80.0)
        step = report.intervals[1]
        assert step.path == "incremental"
        # a/c keep serving through b's renegotiation
        assert step.max_downtime_s >= 0.0
        assert ctrl.manager.current.total_capacity("b") >= 4000 * (1 - 1e-9)


class TestFailuresAndSpares:
    def test_failure_restores_capacity(self, profiles, services):
        timeline = [GpuFailure(time_s=30.0, event_id="f0", draw=0.0)]
        ctrl = controller(profiles)
        ctrl.run(services, timeline, horizon_s=60.0)
        placement = ctrl.manager.current
        for svc in services:
            assert placement.total_capacity(svc.id) >= svc.request_rate * (
                1 - 1e-9
            )

    def test_recovery_registers_spare(self, profiles, services):
        timeline = [
            GpuFailure(time_s=30.0, event_id="f0", draw=0.0),
            GpuRecovery(time_s=60.0, ref="f0"),
        ]
        ctrl = controller(profiles)
        report = ctrl.run(services, timeline, horizon_s=90.0)
        assert report.intervals[-1].spare_gpus == 1
        assert report.restored_count == 1
        (failure,) = report.failures
        assert failure.time_to_restore_s == 30.0

    def test_wave_preempts_fraction_and_schedules_restores(
        self, profiles, services
    ):
        timeline = [
            SpotPreemptionWave(time_s=30.0, event_id="w0", fraction=0.5,
                               draw=0.3, restore_delay_s=40.0)
        ]
        ctrl = controller(profiles, seed=1)
        report = ctrl.run(services, timeline, horizon_s=120.0)
        preempted = [f for f in report.failures if f.kind == "preemption"]
        assert preempted
        assert all(f.restored_at_s == 70.0 for f in preempted)
        # the controller-scheduled restores created their own interval
        assert any(r.time_s == 70.0 for r in report.intervals)

    def test_failing_a_spare_is_recorded_and_restorable(self, profiles, services):
        """An explicit-id failure hitting a *spare* GPU tears down
        nothing, but is still a recorded loss whose recovery is
        stamped."""
        ctrl = controller(profiles)
        timeline = [
            GpuFailure(time_s=10.0, event_id="f0", draw=0.0),
            GpuRecovery(time_s=20.0, ref="f0"),       # gpu 0 is now a spare
            GpuFailure(time_s=30.0, event_id="f1", gpu_id=0),  # lose the spare
            GpuRecovery(time_s=40.0, ref="f1"),
        ]
        report = ctrl.run(services, timeline, horizon_s=50.0)
        assert report.intervals[-1].skipped == 0
        assert len(report.failures) == 2
        spare_loss = report.failures[1]
        assert spare_loss.gpu_id == 0 and spare_loss.lost_capacity == 0.0
        assert spare_loss.restored_at_s == 40.0
        assert report.restored_count == 2
        assert ctrl.manager.spare_gpus == {0: "mig"}

    def test_failure_on_empty_fleet_is_skipped(self, profiles):
        lone = [Service("a", "resnet-50", slo_latency_ms=250, request_rate=500)]
        timeline = [
            ServiceDeparture(time_s=10.0, service_id="a"),
            GpuFailure(time_s=20.0, event_id="f0", draw=0.5),
        ]
        report = controller(profiles).run(lone, timeline, horizon_s=30.0)
        assert report.intervals[-1].skipped == 1
        assert not report.failures


class TestIdentityAndDeterminism:
    def test_controller_is_reentrant(self, profiles, services):
        """Regression: a second run() on one controller used to continue
        from the first run's final deployment instead of bootstrapping —
        silently non-deterministic results."""
        timeline = [GpuFailure(time_s=20.0, event_id="f0", draw=0.5)]
        ctrl = controller(profiles)
        first = ctrl.run(services, timeline, horizon_s=50.0)
        second = ctrl.run(services, timeline, horizon_s=50.0)
        assert second.intervals[0].path == "full"
        assert [r.fingerprint for r in first.intervals] == [
            r.fingerprint for r in second.intervals
        ]

    def test_two_runs_identical(self, profiles, services):
        timeline = merge_timeline(
            [GpuFailure(time_s=25.0, event_id="f0", draw=0.7)],
            [RateEpoch(time_s=50.0, service_id="a", rate=5000.0)],
            [GpuRecovery(time_s=75.0, ref="f0")],
        )
        runs = [
            controller(profiles).run(
                services, timeline, horizon_s=100.0, measure_s=0.2
            )
            for _ in range(2)
        ]
        a, b = runs
        assert [r.fingerprint for r in a.intervals] == [
            r.fingerprint for r in b.intervals
        ]
        assert [r.sim_fingerprint for r in a.intervals] == [
            r.sim_fingerprint for r in b.intervals
        ]

    def test_fast_vs_naive_replay_identical(self, profiles, services):
        timeline = merge_timeline(
            [GpuFailure(time_s=25.0, event_id="f0", draw=0.2)],
            [RateEpoch(time_s=50.0, service_id="b", rate=9000.0)],
            [ServiceArrival(time_s=60.0, service_id="n", model="resnet-101",
                            request_rate=200.0, slo_latency_ms=300.0)],
            [GpuRecovery(time_s=75.0, ref="f0")],
        )
        fast, naive = run_identity_checked(
            services, timeline, horizon_s=100.0, measure_s=0.2,
            profiles=profiles,
        )
        assert fast.fast_path and not naive.fast_path
        assert [r.fingerprint for r in fast.intervals] == [
            r.fingerprint for r in naive.intervals
        ]

    def test_caller_services_not_mutated(self, profiles, services):
        timeline = [RateEpoch(time_s=10.0, service_id="a", rate=9999.0)]
        before = [(s.id, s.request_rate, s.slo_latency_ms) for s in services]
        controller(profiles).run(services, timeline, horizon_s=20.0)
        assert before == [
            (s.id, s.request_rate, s.slo_latency_ms) for s in services
        ]
        for s in services:
            assert s.opt_tri_array == {}

    def test_measured_compliance_recorded(self, profiles, services):
        report = controller(profiles).run(
            services, (), horizon_s=50.0, measure_s=0.3
        )
        rec = report.intervals[0]
        assert rec.compliance is not None and 0.0 <= rec.compliance <= 1.0
        assert rec.sim_fingerprint
        assert rec.worst_service in {"a", "b", "c"}
        attainment = report.slo_attainment(target=0.0)
        assert set(attainment) == {"a", "b", "c"}
        assert all(v == 1.0 for v in attainment.values())


class TestRetiredIdReservation:
    def test_failed_gpu_id_never_reused_while_down(self, profiles, services):
        """Regression: failing the highest-id GPU then growing the fleet
        used to hand the dead device's id to a fresh GPU, so a later
        restore collided with live capacity."""
        ctrl = controller(profiles)
        timeline = [
            GpuFailure(time_s=10.0, event_id="f0", draw=0.999),  # highest id
            RateEpoch(time_s=20.0, service_id="b", rate=20000.0),  # grow
            GpuRecovery(time_s=30.0, ref="f0"),
            RateEpoch(time_s=40.0, service_id="b", rate=4000.0),
        ]
        report = ctrl.run(services, timeline, horizon_s=60.0)
        assert report.restored_count == 1
        assert report.intervals[-1].skipped == 0

    def test_restored_capacity_visible_to_next_replan(self, profiles, services):
        """After a restore, growth drafts the spare before opening a new
        GPU id — the restored device rejoins the serving fleet."""
        ctrl = controller(profiles)
        timeline = [
            GpuFailure(time_s=10.0, event_id="f0", draw=0.0),
            GpuRecovery(time_s=20.0, ref="f0"),
            RateEpoch(time_s=30.0, service_id="b", rate=30000.0),
        ]
        ctrl.run(services, timeline, horizon_s=60.0)
        assert not ctrl.manager.spare_gpus  # the spare was drafted
        restored_id = 0  # draw=0.0 fails the lowest occupied id
        assert any(
            g.gpu_id == restored_id and not g.is_empty
            for g in ctrl.manager.current.gpus
        )


class TestStepApiOrdering:
    """The re-entrant step API refuses to move time backwards."""

    def test_backwards_instant_raises(self, profiles, services):
        from repro.ops import OutOfOrderEventError

        ctrl = controller(profiles)
        ctrl.begin(services, horizon_s=100.0)
        ctrl.step(0.0)
        ctrl.step(50.0)
        with pytest.raises(OutOfOrderEventError, match="non-decreasing"):
            ctrl.step(25.0)
        ctrl.finish()

    def test_same_instant_is_allowed(self, profiles, services):
        """Non-decreasing, not strictly increasing: a live gateway may
        clamp a late event onto the last applied instant."""
        ctrl = controller(profiles)
        ctrl.begin(services, horizon_s=100.0)
        ctrl.step(0.0)
        ctrl.step(50.0)
        ctrl.step(50.0, [RateEpoch(time_s=10.0, service_id="a", rate=1.0)])
        report = ctrl.finish()
        assert [r.time_s for r in report.intervals] == [0.0, 50.0, 50.0]

    def test_event_stamped_after_instant_raises(self, profiles, services):
        from repro.ops import OutOfOrderEventError

        ctrl = controller(profiles)
        ctrl.begin(services, horizon_s=100.0)
        ctrl.step(0.0)
        future = RateEpoch(time_s=80.0, service_id="a", rate=1.0)
        with pytest.raises(OutOfOrderEventError, match="cannot apply"):
            ctrl.step(50.0, [future])
        ctrl.finish()

    def test_step_beyond_horizon_raises(self, profiles, services):
        ctrl = controller(profiles)
        ctrl.begin(services, horizon_s=100.0)
        with pytest.raises(ValueError, match="beyond the horizon"):
            ctrl.step(100.0)
        ctrl.finish()

    def test_begin_step_finish_matches_run(self, profiles, services):
        """Driving the step API by hand is the run loop, bit for bit."""
        timeline = merge_timeline(
            [GpuFailure(time_s=20.0, event_id="f0", draw=0.3)],
            [RateEpoch(time_s=60.0, service_id="b", rate=8000.0)],
        )
        offline = controller(profiles).run(
            services, timeline, horizon_s=100.0, measure_s=0.2
        )
        ctrl = controller(profiles)
        ctrl.begin(services, horizon_s=100.0, measure_s=0.2)
        ctrl.step(0.0)
        ctrl.step(20.0, [timeline[0]])
        ctrl.step(60.0, [timeline[1]])
        manual = ctrl.finish()
        assert manual.to_doc() == offline.to_doc()


class TestVerifyEverySampling:
    """--verify-every N: sampled dual-replay smoke mode."""

    def timeline(self):
        return merge_timeline(
            [GpuFailure(time_s=20.0, event_id="f0", draw=0.4)],
            [RateEpoch(time_s=40.0, service_id="a", rate=6000.0)],
            [RateEpoch(time_s=60.0, service_id="b", rate=2000.0)],
            [GpuRecovery(time_s=80.0, ref="f0")],
        )

    def test_default_is_the_full_contract(self, profiles, services):
        """N=1 is byte-identical to what run_identity_checked always
        did: the naive reference measures every interval."""
        kwargs = dict(
            services=services, timeline=self.timeline(), horizon_s=100.0,
            measure_s=0.2, profiles=profiles,
        )
        fast_a, naive_a = run_identity_checked(**kwargs)
        fast_b, naive_b = run_identity_checked(verify_every=1, **kwargs)
        assert fast_a.to_doc() == fast_b.to_doc()
        assert naive_a.to_doc() == naive_b.to_doc()
        assert all(r.sim_fingerprint for r in naive_a.intervals)

    def test_sampling_skips_reference_measurement(self, profiles, services):
        fast, naive = run_identity_checked(
            services, self.timeline(), horizon_s=100.0, measure_s=0.2,
            verify_every=3, profiles=profiles,
        )
        # the fast replay still measures everywhere...
        assert all(r.sim_fingerprint for r in fast.intervals)
        # ...the reference only at sampled steps (1 of 3 here), and the
        # sampled ones still matched or the call would have raised
        measured = [bool(r.sim_fingerprint) for r in naive.intervals]
        assert measured == [True, False, False, True, False]
        # placement identity was checked at *every* interval regardless
        assert [r.fingerprint for r in fast.intervals] == [
            r.fingerprint for r in naive.intervals
        ]

    def test_verify_every_validation(self, profiles, services):
        with pytest.raises(ValueError, match="verify_every"):
            run_identity_checked(
                services, (), horizon_s=10.0, verify_every=0,
                profiles=profiles,
            )
