"""OpsReport aggregation math (no scheduler involved)."""

import pytest

from repro.ops.report import FailureRecord, IntervalRecord, OpsReport


def interval(t, dur, gpus, compliance=None, per=None, **kw):
    defaults = dict(
        path="incremental", events={}, skipped=0, services=2,
        spare_gpus=0, reconfig_ops=0, reconfig_work_s=0.0,
        max_downtime_s=0.0, downtime_total_s=0.0, zero_downtime=True,
    )
    defaults.update(kw)
    return IntervalRecord(
        time_s=t, duration_s=dur, num_gpus=gpus, compliance=compliance,
        per_service_compliance=per or {}, **defaults,
    )


class TestAggregates:
    def test_gpu_hours(self):
        report = OpsReport(horizon_s=7200.0)
        report.intervals = [interval(0.0, 3600.0, 10), interval(3600.0, 3600.0, 20)]
        assert report.gpu_hours == pytest.approx(30.0)
        assert report.peak_gpus == 20

    def test_mean_compliance_duration_weighted(self):
        report = OpsReport(horizon_s=100.0)
        report.intervals = [
            interval(0.0, 90.0, 5, compliance=1.0),
            interval(90.0, 10.0, 5, compliance=0.0),
            interval(100.0, 50.0, 5),  # unmeasured: excluded
        ]
        assert report.mean_compliance == pytest.approx(0.9)
        assert report.min_compliance == 0.0
        assert report.compliance_series() == [(0.0, 1.0), (90.0, 0.0)]

    def test_no_measurement_means_none(self):
        report = OpsReport(horizon_s=10.0)
        report.intervals = [interval(0.0, 10.0, 1)]
        assert report.mean_compliance is None
        assert report.min_compliance is None

    def test_downtime_only_counts_unshadowed(self):
        report = OpsReport(horizon_s=10.0)
        report.intervals = [
            interval(0.0, 5.0, 1, downtime_total_s=4.0, zero_downtime=True),
            interval(5.0, 5.0, 1, downtime_total_s=3.0, zero_downtime=False),
        ]
        assert report.total_downtime_s == 3.0


class TestAttainment:
    def test_per_tenant_lifetime(self):
        report = OpsReport(horizon_s=30.0)
        report.intervals = [
            interval(0.0, 10.0, 1, compliance=1.0,
                     per={"a": 1.0, "b": 0.5}),
            interval(10.0, 10.0, 1, compliance=1.0,
                     per={"a": 0.98, "b": 1.0, "late": 1.0}),
        ]
        att = report.slo_attainment(target=0.99)
        assert att == {"a": 0.5, "b": 0.5, "late": 1.0}

    def test_doc_summarizes_worst_tenants(self):
        report = OpsReport(horizon_s=10.0)
        report.intervals = [
            interval(0.0, 10.0, 2, compliance=0.9,
                     per={"good": 1.0, "bad": 0.2}),
        ]
        doc = report.to_doc(attainment_target=0.99)
        assert doc["tenants_measured"] == 2
        assert doc["tenants_attaining"] == 1
        assert doc["worst_tenants"][0]["service"] == "bad"


class TestFailures:
    def test_time_to_restore(self):
        report = OpsReport(horizon_s=100.0)
        report.failures = [
            FailureRecord(time_s=10.0, gpu_id=3, kind="failure",
                          event_id="f0", affected_services=("a",),
                          lost_capacity=100.0, replan_work_s=2.0,
                          max_downtime_s=1.0, restored_at_s=40.0),
            FailureRecord(time_s=20.0, gpu_id=4, kind="preemption",
                          event_id="w0/4", affected_services=("b",),
                          lost_capacity=50.0, replan_work_s=1.0,
                          max_downtime_s=0.5),
        ]
        assert report.restored_count == 1
        assert report.mean_time_to_restore_s == 30.0
        docs = [f.to_doc() for f in report.failures]
        assert docs[0]["time_to_restore_s"] == 30.0
        assert docs[1]["time_to_restore_s"] is None
