"""Controller checkpoint/restore: bit-identical resume, hostile files.

The contract under test: a run killed at *any* interval boundary and
resumed from its checkpoint produces the same per-interval fingerprints
and the same final ``OpsReport.to_doc()`` as the run that was never
interrupted — and a damaged or mismatched checkpoint is refused loudly
(:class:`~repro.ops.checkpoint.CheckpointError`), never half-restored.
"""

import json

import pytest

from repro.ops import (
    CheckpointError,
    FleetController,
    read_checkpoint,
    write_checkpoint,
)
from repro.ops.controller import assert_reports_identical
from repro.resilience import flip_bit, truncate_tail
from repro.scenarios.ops import bench_ops_run

SEED = 7
SIM_SEED = 3
MEASURE_S = 0.2


@pytest.fixture(scope="module")
def workload():
    return bench_ops_run(60)


def controller():
    return FleetController(seed=SEED)


def full_run(run, **kwargs):
    return controller().run(
        run.services, run.timeline, run.horizon_s,
        measure_s=MEASURE_S, sim_seed=SIM_SEED, **kwargs,
    )


@pytest.fixture(scope="module")
def reference(workload):
    return full_run(workload)


class TestFileFormat:
    def test_write_read_round_trip(self, tmp_path, workload):
        ctrl = controller()
        full_run(workload)  # warm nothing; just build a state to save
        ctrl.begin(workload.services, workload.horizon_s,
                   measure_s=MEASURE_S, sim_seed=SIM_SEED)
        ctrl.step(0.0, [])
        state = ctrl.checkpoint()
        path = tmp_path / "ck.json"
        write_checkpoint(path, state)
        assert read_checkpoint(path) == state
        ctrl.finish()

    def test_bit_flip_is_caught(self, tmp_path, workload):
        ctrl = controller()
        ctrl.begin(workload.services, workload.horizon_s,
                   measure_s=MEASURE_S, sim_seed=SIM_SEED)
        ctrl.step(0.0, [])
        path = tmp_path / "ck.json"
        write_checkpoint(path, ctrl.checkpoint())
        ctrl.finish()
        # any single-bit flip must be caught by the checksum (or fail
        # JSON parsing outright) — try several seeded offsets
        pristine = path.read_bytes()
        for seed in range(8):
            path.write_bytes(pristine)
            flip_bit(path, seed=seed)
            with pytest.raises(CheckpointError):
                read_checkpoint(path)

    def test_truncation_is_caught(self, tmp_path, workload):
        ctrl = controller()
        ctrl.begin(workload.services, workload.horizon_s,
                   measure_s=MEASURE_S, sim_seed=SIM_SEED)
        ctrl.step(0.0, [])
        path = tmp_path / "ck.json"
        write_checkpoint(path, ctrl.checkpoint())
        ctrl.finish()
        truncate_tail(path, 16)
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_unknown_version_is_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({
            "format": "parvagpu-checkpoint", "version": 999,
            "sha256": "0" * 64, "state": {},
        }))
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path)

    def test_foreign_file_is_refused(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(CheckpointError):
            read_checkpoint(path)


class TestKillResume:
    @pytest.mark.parametrize("kill_at", [1, 2, 17])
    def test_resume_is_bit_identical(
        self, tmp_path, workload, reference, kill_at
    ):
        path = tmp_path / "ck.json"
        full_run(
            workload, checkpoint_every=1, checkpoint_path=path,
            max_steps=kill_at,
        )
        resumed = full_run(workload, resume=path)
        assert_reports_identical(resumed, reference)
        assert resumed.to_doc() == reference.to_doc()

    def test_resume_across_worker_counts(self, tmp_path, workload, reference):
        # the checkpoint is worker-count-invariant: a serial run's
        # checkpoint resumes on the sharded control plane bit-identically
        path = tmp_path / "ck.json"
        full_run(
            workload, checkpoint_every=1, checkpoint_path=path, max_steps=3,
        )
        sharded = FleetController(seed=SEED, workers=2)
        resumed = sharded.run(
            workload.services, workload.timeline, workload.horizon_s,
            measure_s=MEASURE_S, sim_seed=SIM_SEED, resume=path,
        )
        assert_reports_identical(resumed, reference)
        ref_doc = dict(reference.to_doc())
        res_doc = dict(resumed.to_doc())
        assert res_doc.pop("workers") == 2
        ref_doc.pop("workers")
        assert res_doc == ref_doc


class TestResumeValidation:
    @pytest.fixture()
    def checkpoint_path(self, tmp_path, workload):
        path = tmp_path / "ck.json"
        full_run(
            workload, checkpoint_every=1, checkpoint_path=path, max_steps=2,
        )
        return path

    def test_config_mismatch_is_refused(self, checkpoint_path, workload):
        other = FleetController(seed=SEED + 1)
        with pytest.raises(CheckpointError, match="seed"):
            other.run(
                workload.services, workload.timeline, workload.horizon_s,
                measure_s=MEASURE_S, sim_seed=SIM_SEED,
                resume=checkpoint_path,
            )

    def test_run_args_mismatch_is_refused(self, checkpoint_path, workload):
        with pytest.raises(CheckpointError, match="measure_s"):
            controller().run(
                workload.services, workload.timeline, workload.horizon_s,
                measure_s=MEASURE_S + 0.05, sim_seed=SIM_SEED,
                resume=checkpoint_path,
            )

    def test_timeline_mismatch_is_refused(self, checkpoint_path, workload):
        shorter = [e for e in workload.timeline][:-2]
        with pytest.raises(CheckpointError, match="timeline"):
            controller().run(
                workload.services, shorter, workload.horizon_s,
                measure_s=MEASURE_S, sim_seed=SIM_SEED,
                resume=checkpoint_path,
            )
