"""Chaos generators: determinism and structural guarantees."""

import pytest

from repro.ops.chaos import (
    flash_crowds,
    mtbf_failures,
    rate_epochs,
    slo_renegotiations,
    spot_preemption_waves,
    tenant_churn,
)
from repro.ops.events import GpuFailure, GpuRecovery, ServiceArrival
from repro.sim.traces import diurnal_trace


class TestDeterminism:
    """Every generator is a pure function of its arguments."""

    def test_mtbf_reproducible(self):
        a = mtbf_failures(horizon_s=10_000, mtbf_s=1000, seed=42, repair_s=500)
        b = mtbf_failures(horizon_s=10_000, mtbf_s=1000, seed=42, repair_s=500)
        assert a == b

    def test_mtbf_seed_changes_stream(self):
        a = mtbf_failures(horizon_s=10_000, mtbf_s=1000, seed=1)
        b = mtbf_failures(horizon_s=10_000, mtbf_s=1000, seed=2)
        assert a != b

    def test_churn_reproducible(self):
        kw = dict(horizon_s=5000, arrivals=5, departures=3, seed=9,
                  base_ids=("x", "y"))
        assert tenant_churn(**kw) == tenant_churn(**kw)

    def test_waves_reproducible(self):
        kw = dict(horizon_s=20_000, every_s=3000, fraction=0.1, seed=5,
                  restore_delay_s=600)
        assert spot_preemption_waves(**kw) == spot_preemption_waves(**kw)


class TestMtbf:
    def test_repairs_reference_their_failure(self):
        events = mtbf_failures(horizon_s=20_000, mtbf_s=2000, seed=0,
                               repair_s=900)
        failures = {e.event_id for e in events if isinstance(e, GpuFailure)}
        recoveries = [e for e in events if isinstance(e, GpuRecovery)]
        assert recoveries  # the horizon comfortably fits repairs
        for r in recoveries:
            assert r.ref in failures

    def test_no_repair_past_horizon(self):
        events = mtbf_failures(horizon_s=1000, mtbf_s=300, seed=0, repair_s=5000)
        assert not any(isinstance(e, GpuRecovery) for e in events)

    def test_all_within_horizon(self):
        events = mtbf_failures(horizon_s=5000, mtbf_s=100, seed=0, repair_s=50)
        assert all(e.time_s < 5000 for e in events)


class TestChurn:
    def test_departures_only_hit_known_pool(self):
        events = tenant_churn(horizon_s=10_000, arrivals=4, departures=6,
                              seed=3, base_ids=("base-0",))
        known = {"base-0"}
        for e in events:
            if isinstance(e, ServiceArrival):
                known.add(e.service_id)
            else:
                assert e.service_id in known
                known.discard(e.service_id)

    def test_departures_without_pool_are_dropped(self):
        events = tenant_churn(horizon_s=100, arrivals=0, departures=5, seed=1)
        assert events == ()

    def test_arrivals_resample_table_iv(self):
        from repro.models.zoo import get_model

        events = tenant_churn(horizon_s=100, arrivals=8, departures=0, seed=2)
        assert len(events) == 8
        for e in events:
            get_model(e.model)  # raises on unknown models
            assert e.request_rate > 0 and e.slo_latency_ms > 0


class TestRates:
    def test_rate_epochs_bridge_traces(self):
        trace = diurnal_trace("svc", base_rate=100.0, epochs=6, period_s=600)
        events = rate_epochs([trace])
        assert len(events) == 6
        assert {e.service_id for e in events} == {"svc"}
        assert [e.rate for e in events] == [ep.rate for ep in trace.epochs]

    def test_rate_epochs_horizon_cut(self):
        trace = diurnal_trace("svc", base_rate=100.0, epochs=6, period_s=600)
        events = rate_epochs([trace], horizon_s=300.0)
        assert all(e.time_s < 300.0 for e in events)
        assert len(events) == 3

    def test_flash_crowds_spike_and_revert(self):
        trace = diurnal_trace("svc", base_rate=100.0, epochs=4, period_s=10_000)
        events = flash_crowds([trace], horizon_s=10_000, num_crowds=3, seed=8)
        assert len(events) == 6  # spike + revert per crowd
        for spike, revert in zip(events[0::2], events[1::2]):
            assert spike.time_s < revert.time_s
            assert spike.rate > trace.rate_at(spike.time_s) * 1.5
            assert revert.rate == trace.rate_at(revert.time_s)


class TestSloRenegotiations:
    def test_relax_then_revert(self):
        pairs = slo_renegotiations([("a", 200.0)], horizon_s=10_000,
                                   count=2, seed=4)
        assert len(pairs) == 4
        for relax, revert in zip(pairs[0::2], pairs[1::2]):
            assert relax.time_s < revert.time_s
            assert relax.slo_latency_ms >= 200.0
            assert revert.slo_latency_ms == 200.0

    def test_tightening_rejected(self):
        with pytest.raises(ValueError):
            slo_renegotiations([("a", 200.0)], horizon_s=100, count=1,
                               seed=0, relax_range=(0.5, 0.9))
